"""Figure 7: PSEC overhead for the OpenMP use case, naive vs CARMOT.

The paper's claim: CARMOT's PSEC-specific optimizations cut the profiling
overhead by ~two orders of magnitude versus a naive (but correct) profiler.
"""

import statistics

import pytest

from repro.harness import figure7, render_overheads
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def rows():
    return figure7()


def test_figure7_rows_print(benchmark, rows, bench_json):
    result = benchmark.pedantic(
        lambda: figure7(ALL_WORKLOADS[:2]), rounds=1, iterations=1
    )
    assert len(result) == 2
    print()
    print(render_overheads("Figure 7: OpenMP use-case overhead", rows))
    bench_json("fig7_openmp_overhead", rows)


def test_all_benchmarks_measured(rows):
    assert len(rows) == 15


def test_carmot_beats_naive_everywhere(rows):
    for row in rows:
        if row.naive_overhead is None:
            continue  # the paper's "*": naive did not complete
        assert row.carmot_overhead < row.naive_overhead


def test_two_orders_of_magnitude_reduction(rows):
    """Geometric-mean gap must be >= ~1.5 orders, with peaks near 2."""
    gaps = [r.gap for r in rows if r.gap is not None]
    assert statistics.geometric_mean(gaps) > 30
    assert max(gaps) > 90


def test_naive_overhead_is_large(rows):
    """Naive PSEC is impractical: two to three orders over the baseline."""
    for row in rows:
        if row.naive_overhead is not None:
            assert row.naive_overhead > 50


def test_carmot_overhead_is_practical(rows):
    """CARMOT makes PSEC practical: small-constant-factor overhead."""
    for row in rows:
        assert row.carmot_overhead < 10
