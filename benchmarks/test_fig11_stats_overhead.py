"""Figure 11: overhead of building the STATS Input/Output/State classes.

The gap to the naive profiler is about one order of magnitude here — not
two — because STATS needs no Use-callstacks (Table 1), so the naive
profiler is spared the stack walks that dominate its OpenMP-use-case cost
(§5.3)."""

import statistics

import pytest

from repro.harness import figure7, figure11, render_overheads
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def rows():
    return figure11()


def test_figure11_rows_print(benchmark, rows, bench_json):
    result = benchmark.pedantic(
        lambda: figure11(ALL_WORKLOADS[:2]), rounds=1, iterations=1
    )
    assert len(result) == 2
    print()
    print(render_overheads("Figure 11: STATS overhead", rows))
    bench_json("fig11_stats_overhead", rows)


def test_one_order_of_magnitude_gap(rows):
    gaps = [r.gap for r in rows if r.gap is not None]
    geo = statistics.geometric_mean(gaps)
    assert 5 < geo < 60  # one order, not two


def test_gap_smaller_than_openmp_use_case(rows):
    """§5.3: the naive profiler skips use-callstacks for STATS, so its
    relative disadvantage shrinks versus Figure 7."""
    openmp = {r.benchmark: r for r in figure7()}
    stats_gaps = [r.gap for r in rows if r.gap is not None]
    openmp_gaps = [r.gap for r in openmp.values() if r.gap is not None]
    assert (statistics.geometric_mean(stats_gaps)
            < 0.6 * statistics.geometric_mean(openmp_gaps))


def test_naive_stats_cheaper_than_naive_openmp(rows):
    openmp = {r.benchmark: r for r in figure7()}
    for row in rows:
        other = openmp[row.benchmark]
        if row.naive_overhead is None or other.naive_overhead is None:
            continue
        assert row.naive_overhead < other.naive_overhead


def test_carmot_overhead_practical(rows):
    for row in rows:
        assert row.carmot_overhead < 8
