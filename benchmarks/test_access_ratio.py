"""§2.3: PSEC must track function variables on top of memory locations.

The paper measured ~8x more accesses to track on average.  The exact
multiplier depends on how scalar-heavy the code is; the claim under test is
that variable accesses multiply the tracking load severalfold compared to a
memory-only tool (Valgrind/ASan-style)."""

import statistics

import pytest

from repro.harness import access_ratio
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def ratios():
    return access_ratio()


def test_access_ratio_print(benchmark, ratios, bench_json):
    result = benchmark.pedantic(
        lambda: access_ratio(ALL_WORKLOADS[:3]), rounds=1, iterations=1
    )
    assert len(result) == 3
    print()
    for name, ratio in ratios:
        print(f"  {name:14s} {ratio:5.1f}x")
    mean = statistics.mean(r for _, r in ratios)
    print(f"  {'average':14s} {mean:5.1f}x")
    bench_json("access_ratio",
               [{"benchmark": name, "ratio": ratio}
                for name, ratio in ratios],
               average=mean)


def test_every_benchmark_tracks_more_than_memory_tools(ratios):
    for name, ratio in ratios:
        assert ratio > 1.5, name


def test_average_is_severalfold(ratios):
    mean = statistics.mean(r for _, r in ratios)
    assert mean > 3.0
