"""Figure 8: per-optimization breakdown of the naive→CARMOT delta.

The paper reports that Pin-instrumentation reduction and the call-graph
(-O3) optimization have the highest impact, and groups optimizations 1-4
("removing redundant instrumentation") together."""

import pytest

from repro.harness import (
    BREAKDOWN_GROUPS,
    breakdown_pipeline,
    figure8,
    render_breakdown,
)
from repro.passes import parse_pipeline
from repro.workloads import ALL_WORKLOADS, workload

# The breakdown needs 6 compilations+runs per benchmark; a representative
# subset keeps the bench quick while covering all three suites.
SUBSET = [workload(n) for n in
          ("blackscholes", "swaptions", "cg", "is", "mg", "nab", "xz")]


@pytest.fixture(scope="module")
def rows():
    return figure8(SUBSET)


def test_figure8_rows_print(benchmark, rows, bench_json):
    result = benchmark.pedantic(
        lambda: figure8(SUBSET[:1]), rounds=1, iterations=1
    )
    assert len(result) == 1
    print()
    print(render_breakdown(rows))
    bench_json("fig8_breakdown", rows,
               subset=[w.name for w in SUBSET])


def test_shares_normalize_to_100(rows):
    for row in rows:
        assert sum(row.shares.values()) == pytest.approx(100.0, abs=0.5)


def test_four_groups_reported(rows):
    for row in rows:
        assert set(row.shares) == set(BREAKDOWN_GROUPS)


def test_breakdown_configs_are_named_pipelines():
    """Each Figure-8 configuration is a parseable -passes= description
    that drops exactly the passes behind its disabled toggles."""
    full = set(parse_pipeline("carmot"))
    for group, toggles in BREAKDOWN_GROUPS.items():
        names = parse_pipeline(breakdown_pipeline(toggles))
        assert names == [n for n in parse_pipeline("carmot") if n in names]
        missing = full - set(names)
        if group == "callstack_clustering":  # runtime knob: no pass removed
            assert not missing
        else:
            assert missing, group


def test_pin_and_callgraph_dominate_overall(rows):
    """Averaged over benchmarks, Pin reduction + call-graph O3 contribute
    the largest share of the optimization benefit (§5.1/Figure 8)."""
    avg = {g: sum(r.shares[g] for r in rows) / len(rows)
           for g in BREAKDOWN_GROUPS}
    top_two = avg["reduce_pin"] + avg["callgraph_o3"]
    assert top_two > avg["callstack_clustering"]
    assert top_two > 40.0


def test_every_group_contributes_somewhere(rows):
    for group in BREAKDOWN_GROUPS:
        assert any(r.shares[group] > 1.0 for r in rows), group


def test_full_carmot_remains_cheapest(rows):
    for row in rows:
        assert row.full_overhead < 10
