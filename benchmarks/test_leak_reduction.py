"""§5.2: bytes leaked by nab before/after breaking the reported cycle.

The paper measures 230,537 leaked bytes reduced to 127,633 (-44.6%) after
porting the CARMOT-identified reference cycle to smart pointers with the
suggested weak pointer.  Absolute numbers differ (our nab port is smaller);
the claim under test is a substantial-but-partial reduction: the cycle
holds a large share of the leak, and the rest (the over-allocation scratch
buffers) remains."""

import pytest

from repro.harness import nab_leak_experiment


@pytest.fixture(scope="module")
def report():
    return nab_leak_experiment()


def test_leak_experiment_print(benchmark, report, bench_json):
    result = benchmark.pedantic(nab_leak_experiment, rounds=1, iterations=1)
    assert result.leaked_bytes_before == report.leaked_bytes_before
    print()
    print(f"  leaked before fix : {report.leaked_bytes_before} bytes")
    print(f"  held by cycles    : {report.cycle_held_bytes} bytes")
    print(f"  leaked after fix  : {report.leaked_bytes_after} bytes")
    print(f"  reduction         : {report.reduction_percent:.1f}%")
    bench_json("leak_reduction", report)


def test_cycle_detected(report):
    assert report.cycle_count >= 1


def test_cycle_holds_substantial_memory(report):
    assert report.cycle_held_bytes > 0
    assert report.cycle_held_bytes < report.leaked_bytes_before


def test_weak_pointer_fix_breaks_every_cycle(report):
    assert report.still_held_after_fix == 0


def test_reduction_is_partial_like_the_paper(report):
    """Paper: 44.6% reduction.  Ours must be substantial (>25%) but not
    total (<75%) — the non-cycle over-allocation remains leaked."""
    assert 25.0 < report.reduction_percent < 75.0
