"""Figure 2: PSEC's per-element precision vs dependence-graph conservatism.

The example program reads ``a[i]`` and writes ``a[j]`` with j = {1,0,0,2,
3,...,N-2}: a dependence-graph/memory-footprint tool must assume any element
may carry the loop RAW and serialize the whole body; PSEC reports that only
``a[1]`` does, so only its accesses need the critical section.  The test
regenerates both recommendations' simulated performance and asserts the
crossover the figure illustrates: PSEC's pragma parallelizes, the
conservative one stays near-serial."""

import pytest

from repro.compiler import compile_baseline, compile_carmot
from repro.parallel import profile_execution, simulate_parallel_for

N = 64

FIG2_SOURCE = """
int a[@N@];
int sink = 0;

int pick_j(int i) {
  if (i == 0) return 1;
  if (i == 1 || i == 2) return 0;
  return i - 1;
}

void func() {
  #pragma carmot roi abstraction(parallel_for)
  for (int i = 0; i < @N@; ++i) {
    int j = pick_j(i);
    int value = a[i];
    for (int w = 0; w < 20; ++w) value = (value * 7 + i) % 1000003;
    sink = sink + value % 3;
    a[j] = value;
  }
}

int main() {
  for (int k = 0; k < @N@; ++k) a[k] = k * k;
  func();
  print_int(a[0] + a[1] + sink);
  return 0;
}
""".replace("@N@", str(N))


@pytest.fixture(scope="module")
def psec():
    program = compile_carmot(FIG2_SOURCE, name="figure2")
    _, runtime = program.run()
    return runtime.psecs[0]


def test_only_a1_is_transfer(psec):
    """The PSEC pinpoints a[1] as the only cross-iteration RAW carrier."""
    transfer_mem = [k for k in psec.sets()["transfer"] if k[0] == "mem"]
    assert len(transfer_mem) == 1
    (_, _, offset, size) = transfer_mem[0]
    assert offset // size == 1  # element index 1


def test_most_elements_not_transfer(psec):
    letters_by_element = {
        key[2] // key[3]: entry.letters
        for key, entry in psec.entries.items()
        if key[0] == "mem"
    }
    non_transfer = [e for e, letters in letters_by_element.items()
                    if "T" not in letters]
    assert len(non_transfer) >= N - 2


def test_psec_pragma_beats_conservative(benchmark, psec, bench_json):
    """Simulated execution: PSEC's small critical section vs the
    dependence-graph pragma that serializes the hot computation."""
    def run():
        baseline = compile_baseline(FIG2_SOURCE, "figure2")
        profile = profile_execution(baseline.module)
        loop = profile.loops[0]
        psec_time = simulate_parallel_for(
            loop.iteration_costs, serial_fraction=0.08, ordered=False
        )
        conservative_time = simulate_parallel_for(
            loop.iteration_costs, serial_fraction=0.95, ordered=False
        )
        return loop.total_cost, psec_time, conservative_time

    serial, psec_time, conservative_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    psec_speedup = serial / psec_time
    conservative_speedup = serial / conservative_time
    print(f"\n  PSEC pragma speedup         : {psec_speedup:.2f}x")
    print(f"  dependence-graph speedup    : {conservative_speedup:.2f}x")
    bench_json("fig2_precision", {
        "n_elements": N,
        "transfer_mem_elements": sorted(
            key[2] // key[3] for key in psec.sets()["transfer"]
            if key[0] == "mem"
        ),
        "serial_cost": serial,
        "psec_speedup": psec_speedup,
        "conservative_speedup": conservative_speedup,
    })
    assert psec_speedup > 3.0
    assert conservative_speedup < 1.5
    assert psec_speedup > 2.5 * conservative_speedup
