"""Figure 6: CARMOT-generated pragmas vs original parallelism.

Regenerates the speedup comparison on reference inputs and asserts the
paper's qualitative claims: generated pragmas match (or beat) the original
hand-written parallelism on every supported benchmark, average speedup is
several-fold over serial, and ``ep``/``nab`` — whose originals use
``parallel sections`` + ``barrier``/``master``, which CARMOT does not
support — are the only benchmarks whose generated parallelism falls well
short of the original."""

import statistics

import pytest

from repro.harness import figure6, render_speedups
from repro.workloads import figure6_workloads


@pytest.fixture(scope="module")
def rows():
    return figure6()


def test_figure6_rows_print(benchmark, rows, bench_json):
    result = benchmark.pedantic(
        lambda: figure6(figure6_workloads()[:3]), rounds=1, iterations=1
    )
    assert len(result) == 3
    print()
    print(render_speedups(rows))
    bench_json("fig6_speedup", rows)


def test_every_benchmark_measured(rows):
    assert {r.benchmark for r in rows} == {
        w.name for w in figure6_workloads()
    }


def test_carmot_matches_original_on_supported(rows):
    """Generated pragmas achieve the speedup of the original parallelism
    (within 15%) wherever CARMOT supports the original's abstractions."""
    for row in rows:
        if row.unsupported_original:
            continue
        assert row.carmot_speedup >= 0.85 * row.original_speedup, (
            f"{row.benchmark}: carmot {row.carmot_speedup:.2f} vs "
            f"original {row.original_speedup:.2f}"
        )


def test_unsupported_originals_lose_parallelism(rows):
    """ep and nab: sections+barrier/master originals beat CARMOT (§5.1)."""
    gaps = {r.benchmark: r for r in rows if r.unsupported_original}
    assert set(gaps) == {"ep", "nab"}
    for row in gaps.values():
        assert row.carmot_speedup < 0.6 * row.original_speedup


def test_average_speedup_is_severalfold(rows):
    """The paper reports ~8x average over serial; on the simulated 16-way
    machine the average must be severalfold (>3x) with peaks >10x."""
    speedups = [r.carmot_speedup for r in rows]
    assert statistics.mean(speedups) > 3.0
    assert max(speedups) > 10.0


def test_speedups_do_not_exceed_machine_width(rows):
    for row in rows:
        assert row.carmot_speedup <= 16.5
        assert row.original_speedup <= 16.5
