"""Figure 10: overhead of reference-cycle discovery, naive vs CARMOT.

CARMOT only needs allocations and the Reachability Graph for this use case
(§5.2), so its overhead is near-zero while a Table-1-literal naive profiler
still tracks the Sets of every PSE — about two orders of magnitude apart.
"""

import statistics

import pytest

from repro.harness import figure10, render_overheads
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def rows():
    return figure10()


def test_figure10_rows_print(benchmark, rows, bench_json):
    result = benchmark.pedantic(
        lambda: figure10(ALL_WORKLOADS[:2]), rounds=1, iterations=1
    )
    assert len(result) == 2
    print()
    print(render_overheads("Figure 10: cycle-finding overhead", rows))
    bench_json("fig10_cycles_overhead", rows)


def test_carmot_is_near_free(rows):
    """Tracking only allocations + escapes costs almost nothing."""
    for row in rows:
        assert row.carmot_overhead < 2.5


def test_large_gap(rows):
    gaps = [r.gap for r in rows if r.gap is not None]
    assert statistics.geometric_mean(gaps) > 25


def test_naive_still_expensive(rows):
    for row in rows:
        if row.naive_overhead is not None:
            assert row.naive_overhead > 20


def test_cheaper_than_openmp_use_case(rows):
    """The cycles use case tracks strictly less than the OpenMP one, so
    CARMOT's overhead here must be lower on every benchmark."""
    from repro.harness import figure7

    openmp = {r.benchmark: r for r in figure7()}
    for row in rows:
        assert row.carmot_overhead <= openmp[row.benchmark].carmot_overhead \
            + 0.05
