"""Shared benchmark fixtures: explicit RNG seeding and JSON artifacts.

Every figure bench (a) runs with the process RNG explicitly seeded — the
harness is deterministic by construction, and pinning the seed keeps it
that way if a stochastic helper ever sneaks into a cost model — and (b)
emits its rows as machine-readable ``BENCH_<name>.json`` next to the
printed table via the ``bench_json`` fixture, so figure data can be
diffed/plotted without scraping pytest output.  Override the seed with
``REPRO_BENCH_SEED`` and the output directory with ``REPRO_BENCH_DIR``.
"""

import dataclasses
import json
import os
import random
from pathlib import Path

import pytest

#: The explicit benchmark seed; every bench module sees the same state.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1234"))


@pytest.fixture(autouse=True)
def seeded_rng():
    random.seed(BENCH_SEED)
    yield


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonable(item)
                for key, item in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@pytest.fixture(scope="session")
def bench_json():
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", Path(__file__).parent))

    def write(name, rows, **meta):
        payload = {"bench": name, "seed": BENCH_SEED, **meta,
                   "rows": _jsonable(rows)}
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return path

    return write
