"""Unit tests for the resilience subsystem: fault injection, budgets,
backpressure, and degraded-mode PSEC."""

import threading

import pytest

from repro.compiler import compile_carmot
from repro.errors import (
    BudgetExceeded,
    DegradedResult,
    FaultInjected,
    RuntimeToolError,
    TrapError,
    WorkloadError,
)
from repro.compiler.driver import frontend
from repro.parallel.executor import ParallelMachine, simulate_parallel_for
from repro.resilience import (
    ExecutionBudgets,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    parse_budget_spec,
)
from repro.runtime.pipeline import BatchingPipeline
from repro.vm import run_module

ROI_LOOP = """
int main() {
  int a[16];
  int sum;
  sum = 0;
  for (int r = 0; r < 8; ++r) {
    #pragma carmot roi abstraction(parallel_for)
    {
      for (int i = 0; i < 16; ++i) {
        a[i] = a[i] + r;
        sum = sum + a[i];
      }
    }
  }
  print_int(sum);
  return 0;
}
"""


def run_roi_loop(batch_size=16, threaded=False, **kwargs):
    program = compile_carmot(ROI_LOOP, name="roi_loop")
    result, runtime = program.run(batch_size=batch_size, threaded=threaded,
                                  **kwargs)
    return result, runtime


def sets_of(runtime):
    return {
        roi_id: {name: list(keys) for name, keys in psec.sets().items()}
        for roi_id, psec in runtime.psecs.items()
    }


# -- parsing ----------------------------------------------------------------


class TestFaultPlanParsing:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse("seed=42;crash@3;drop@5;slow@7:250;"
                               "mempressure@9;crash@11!;rate=0.25")
        assert plan.seed == 42
        assert plan.crash_rate == 0.25
        kinds = {(s.kind, s.seq) for s in plan.specs}
        assert (FaultKind.WORKER_CRASH, 3) in kinds
        assert (FaultKind.BATCH_DROP, 5) in kinds
        assert (FaultKind.MEMORY_PRESSURE, 9) in kinds
        slow = next(s for s in plan.specs if s.kind is FaultKind.SLOW_BATCH)
        assert slow.delay == 250
        persistent = next(s for s in plan.specs if s.seq == 11)
        assert persistent.persist

    def test_render_round_trip(self):
        text = "seed=7;crash@2;drop@3;slow@4:100"
        assert FaultPlan.parse(FaultPlan.parse(text).render()) == \
            FaultPlan.parse(text)

    def test_parse_worker_exit(self):
        plan = FaultPlan.parse("seed=3;exit@1;exit@4!")
        kinds = {(s.kind, s.seq, s.persist) for s in plan.specs}
        assert (FaultKind.WORKER_EXIT, 1, False) in kinds
        assert (FaultKind.WORKER_EXIT, 4, True) in kinds

    def test_worker_exit_render_round_trip(self):
        text = "seed=3;exit@1;exit@4!"
        assert FaultPlan.parse(FaultPlan.parse(text).render()) == \
            FaultPlan.parse(text)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RuntimeToolError, match="unknown fault kind"):
            FaultPlan.parse("explode@3")

    def test_unknown_kind_error_lists_valid_kinds(self):
        with pytest.raises(RuntimeToolError, match="exit"):
            FaultPlan.parse("explode@3")
        with pytest.raises(RuntimeToolError, match="crash"):
            FaultPlan.parse("explode@3")

    def test_malformed_spec_rejected(self):
        with pytest.raises(RuntimeToolError, match="bad fault spec"):
            FaultPlan.parse("crash3")

    def test_negative_seq_rejected(self):
        with pytest.raises(RuntimeToolError):
            FaultSpec(FaultKind.WORKER_CRASH, -1)

    def test_bad_rate_rejected(self):
        with pytest.raises(RuntimeToolError):
            FaultPlan(crash_rate=1.5)


class TestBudgetSpecParsing:
    def test_parse_full_syntax(self):
        spec = parse_budget_spec(
            "steps=5000000,heap=1048576,depth=256,events-per-roi=20000,"
            "queue=64,policy=shed,retries=2,backoff=50,degrade=1"
        )
        assert spec.vm == ExecutionBudgets(5_000_000, 1_048_576, 256)
        assert spec.runtime.max_queue_batches == 64
        assert spec.runtime.queue_policy == "shed"
        assert spec.runtime.max_retries == 2
        assert spec.runtime.retry_backoff == 50
        assert spec.runtime.degrade
        assert spec.runtime.max_events_per_roi == 20_000

    def test_parse_worker_supervision_keys(self):
        spec = parse_budget_spec("heartbeat=5,worker-deadline=2000")
        assert spec.runtime.heartbeat_ms == 5
        assert spec.runtime.worker_deadline_ms == 2000
        # The underscore spelling is accepted too.
        spec = parse_budget_spec("worker_deadline=750")
        assert spec.runtime.worker_deadline_ms == 750

    def test_unknown_key_rejected(self):
        with pytest.raises(RuntimeToolError, match="unknown budget key"):
            parse_budget_spec("fuel=9")

    def test_negative_value_rejected(self):
        with pytest.raises(RuntimeToolError):
            parse_budget_spec("steps=-1")

    def test_non_integer_value_rejected(self):
        with pytest.raises(RuntimeToolError, match="bad budget value"):
            parse_budget_spec("steps=")
        with pytest.raises(RuntimeToolError, match="bad budget value"):
            parse_budget_spec("steps=lots")

    def test_shed_requires_degrade(self):
        with pytest.raises(RuntimeToolError, match="requires degrade"):
            ResiliencePolicy(queue_policy="shed")

    def test_bad_policy_rejected(self):
        with pytest.raises(RuntimeToolError):
            ResiliencePolicy(queue_policy="panic")


# -- injector determinism ----------------------------------------------------


class TestInjectorDeterminism:
    def test_rate_crashes_are_seed_deterministic(self):
        plan = FaultPlan(seed=99, crash_rate=0.3)

        def crash_set(p):
            injector = FaultInjector(p)
            crashed = set()
            for seq in range(200):
                try:
                    injector.fire(seq, attempt=0)
                except FaultInjected:
                    crashed.add(seq)
            return crashed

        first = crash_set(plan)
        second = crash_set(plan)
        assert first == second
        assert first  # 0.3 over 200 draws fires at least once
        assert crash_set(FaultPlan(seed=100, crash_rate=0.3)) != first

    def test_scheduled_crash_fires_once_unless_persistent(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(FaultKind.WORKER_CRASH, 1),
            FaultSpec(FaultKind.WORKER_CRASH, 2, persist=True),
        )))
        with pytest.raises(FaultInjected):
            injector.fire(1, attempt=0)
        injector.fire(1, attempt=1)  # retry succeeds
        with pytest.raises(FaultInjected):
            injector.fire(2, attempt=0)
        with pytest.raises(FaultInjected):
            injector.fire(2, attempt=5)  # persistent: retries never help


# -- pipeline-level resilience ----------------------------------------------


def resilient_pipeline(plan=None, **kwargs):
    post = []
    degraded = []
    pipeline = BatchingPipeline(
        4, lambda b: b, lambda b: post.extend(b.events),
        injector=FaultInjector(plan) if plan else None,
        on_degraded=lambda b, failure: degraded.append((b.seq, failure[0])),
        **kwargs,
    )
    return pipeline, post, degraded


class TestPipelineResilience:
    def test_retry_recovers_injected_crash(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.WORKER_CRASH, 1),))
        pipeline, post, degraded = resilient_pipeline(plan, max_retries=1,
                                                      retry_backoff=10)
        for i in range(12):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(12))  # nothing lost
        assert pipeline.retries == 1
        assert pipeline.virtual_backoff == 10
        assert degraded == []

    def test_exhausted_retries_degrade(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.WORKER_CRASH, 1, persist=True),
        ))
        pipeline, post, degraded = resilient_pipeline(plan, max_retries=2,
                                                      degrade=True)
        for i in range(12):
            pipeline.push(i)
        pipeline.close()
        assert degraded == [(1, "worker_crash")]
        assert post == [0, 1, 2, 3, 8, 9, 10, 11]  # batch 1 fell back
        assert pipeline.retries == 2
        assert pipeline.batches_degraded == 1

    def test_crash_without_degrade_raises(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.WORKER_CRASH, 0),))
        pipeline, _, _ = resilient_pipeline(plan)
        with pytest.raises(FaultInjected):
            for i in range(4):
                pipeline.push(i)

    def test_drop_without_degrade_raises(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.BATCH_DROP, 0),))
        pipeline, _, _ = resilient_pipeline(plan)
        with pytest.raises(RuntimeToolError, match="injected drop"):
            for i in range(4):
                pipeline.push(i)

    def test_slow_batch_charges_virtual_time(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.SLOW_BATCH, 1,
                                          delay=250),))
        pipeline, post, _ = resilient_pipeline(plan)
        for i in range(12):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(12))
        assert pipeline.virtual_delay == 250
        assert pipeline.slow_batches == [(1, 250)]

    def test_shed_policy_sheds_when_queue_full(self):
        started = threading.Event()
        gate = threading.Event()
        post = []
        degraded = []

        def process(batch):
            started.set()
            gate.wait(timeout=5.0)
            return batch

        pipeline = BatchingPipeline(
            1, process, lambda b: post.extend(b.events),
            threaded=True, worker_count=1, max_queue_batches=1,
            queue_policy="shed", degrade=True,
            on_degraded=lambda b, failure: degraded.append(
                (b.seq, failure[0])),
        )
        pipeline.push("a")          # worker takes batch 0 and blocks
        assert started.wait(timeout=5.0)
        pipeline.push("b")          # fills the 1-slot queue
        pipeline.push("c")          # queue full: shed into degraded mode
        gate.set()
        pipeline.close()
        assert pipeline.batches_shed == 1
        assert degraded == [(2, "shed")]
        assert post == ["a", "b"]


# -- engine-level degraded-mode PSEC -----------------------------------------


class TestDegradedPsec:
    def test_no_fault_plan_is_bit_identical(self):
        _, clean_a = run_roi_loop()
        _, clean_b = run_roi_loop(resilience=ResiliencePolicy())
        assert sets_of(clean_a) == sets_of(clean_b)
        assert not clean_a.degraded and not clean_b.degraded
        assert clean_a.degradation.to_json() == clean_b.degradation.to_json()
        assert clean_a.degradation.to_json() == \
            '{"degraded":false,"records":[],"rois":{}}'

    def test_crash_without_retries_raises_mid_stream(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.WORKER_CRASH, 1),))
        with pytest.raises(FaultInjected):
            run_roi_loop(fault_plan=plan)

    def test_crash_with_retries_completes_degraded(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.WORKER_CRASH, 1),))
        result, runtime = run_roi_loop(
            fault_plan=plan,
            resilience=ResiliencePolicy(max_retries=1, degrade=True),
        )
        assert result.return_value == 0
        assert runtime.degraded
        psec = runtime.psecs[0]
        assert psec.degraded
        assert psec.degradation_reasons == ["worker_crash"]
        # A recovered retry loses nothing: sets stay exact.
        assert psec.sets_exact
        assert psec.use_callstacks_complete
        _, clean = run_roi_loop()
        assert sets_of(runtime) == sets_of(clean)

    def test_dropped_batch_yields_conservative_superset(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.BATCH_DROP, 2),))
        _, degraded_rt = run_roi_loop(
            fault_plan=plan, resilience=ResiliencePolicy(degrade=True)
        )
        _, clean_rt = run_roi_loop()
        assert degraded_rt.degraded
        psec = degraded_rt.psecs[0]
        assert not psec.sets_exact
        assert not psec.use_callstacks_complete
        clean_sets = sets_of(clean_rt)[0]
        degraded_sets = sets_of(degraded_rt)[0]
        # Soundness: every PSE classified in the clean run is still
        # classified in the degraded run (possibly in a more conservative
        # set), never silently dropped.
        clean_keys = set().union(*(map(tuple, v)
                                   for v in clean_sets.values()))
        degraded_keys = set().union(*(map(tuple, v)
                                      for v in degraded_sets.values()))
        assert clean_keys <= degraded_keys
        # Conservative direction: input/output only grow; a PSE may move
        # Cloneable -> Transfer but never the other way.
        for name in ("input", "output"):
            assert set(map(tuple, clean_sets[name])) <= \
                set(map(tuple, degraded_sets[name]))
        assert set(map(tuple, degraded_sets["cloneable"])) <= \
            set(map(tuple, clean_sets["cloneable"]))

    def test_fault_determinism_same_seed_identical_reports(self):
        def run_once(threaded):
            plan = FaultPlan.parse("seed=7;crash@1;drop@2;slow@3:100")
            _, runtime = run_roi_loop(
                threaded=threaded, fault_plan=plan,
                resilience=ResiliencePolicy(max_retries=1, degrade=True,
                                            max_queue_batches=4),
            )
            return runtime.degradation.to_json(), sets_of(runtime)

        report_a, sets_a = run_once(False)
        report_b, sets_b = run_once(False)
        assert report_a == report_b  # byte-identical
        assert sets_a == sets_b
        report_threaded, sets_threaded = run_once(True)
        assert report_threaded == report_a
        assert sets_threaded == sets_a

    def test_require_complete(self):
        plan = FaultPlan(specs=(FaultSpec(FaultKind.WORKER_CRASH, 1),))
        _, degraded_rt = run_roi_loop(
            fault_plan=plan,
            resilience=ResiliencePolicy(max_retries=1, degrade=True),
        )
        with pytest.raises(DegradedResult) as excinfo:
            degraded_rt.require_complete()
        assert excinfo.value.report is degraded_rt.degradation
        _, clean_rt = run_roi_loop()
        clean_rt.require_complete()  # no raise


class TestEventBudget:
    def test_budget_trip_degrades_but_stays_sound(self):
        _, budgeted = run_roi_loop(
            resilience=ResiliencePolicy(max_events_per_roi=20, degrade=True)
        )
        _, clean = run_roi_loop()
        assert budgeted.degraded
        psec = budgeted.psecs[0]
        assert psec.degraded
        assert "event-budget" in psec.degradation_reasons
        assert not psec.use_callstacks_complete
        clean_sets = sets_of(clean)[0]
        budget_sets = sets_of(budgeted)[0]
        clean_keys = set().union(*(map(tuple, v)
                                   for v in clean_sets.values()))
        budget_keys = set().union(*(map(tuple, v)
                                    for v in budget_sets.values()))
        assert clean_keys <= budget_keys

    def test_budget_off_counts_nothing(self):
        _, runtime = run_roi_loop()
        assert runtime._roi_event_counts[0] == 0


# -- VM execution guards -----------------------------------------------------


class TestVMBudgets:
    def test_step_budget(self):
        module = frontend("int main() { while (1) {} return 0; }")
        with pytest.raises(BudgetExceeded) as excinfo:
            run_module(module, budgets=ExecutionBudgets(max_steps=1000))
        assert isinstance(excinfo.value, TrapError)

    def test_heap_budget(self):
        module = frontend("""
            int main() {
              for (int i = 0; i < 100; ++i) { char *p = malloc(1024); }
              return 0;
            }
        """)
        with pytest.raises(BudgetExceeded, match="heap budget"):
            run_module(module,
                       budgets=ExecutionBudgets(max_heap_bytes=4096))

    def test_heap_budget_counts_live_bytes(self):
        module = frontend("""
            int main() {
              for (int i = 0; i < 100; ++i) {
                char *p = malloc(1024);
                free(p);
              }
              return 0;
            }
        """)
        result = run_module(module,
                            budgets=ExecutionBudgets(max_heap_bytes=4096))
        assert result.return_value == 0  # freed memory is reusable budget

    def test_recursion_budget_is_a_trap_not_python_recursion(self):
        module = frontend("""
            int down(int n) { return down(n + 1); }
            int main() { return down(0); }
        """)
        with pytest.raises(BudgetExceeded, match="recursion depth"):
            run_module(module,
                       budgets=ExecutionBudgets(max_recursion_depth=64))

    def test_budgets_off_by_default(self):
        module = frontend("""
            int down(int n) { if (n == 0) return 0; return down(n - 1); }
            int main() { return down(5000); }
        """)
        assert run_module(module).return_value == 0


# -- simulated machine validation --------------------------------------------


class TestParallelMachineValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError, match="at least 1 thread"):
            ParallelMachine(threads=0)

    def test_negative_threads_rejected(self):
        with pytest.raises(WorkloadError):
            ParallelMachine(threads=-4)

    def test_negative_overhead_rejected(self):
        with pytest.raises(WorkloadError, match="region_startup"):
            ParallelMachine(region_startup=-1)
        with pytest.raises(WorkloadError, match="critical_handoff"):
            ParallelMachine(critical_handoff=-6)

    def test_valid_machine_still_simulates(self):
        machine = ParallelMachine(threads=2, region_startup=0,
                                  per_iteration_overhead=0,
                                  reduction_merge_per_thread=0,
                                  critical_handoff=0)
        assert simulate_parallel_for([10, 10], machine=machine) == 10


# -- CLI integration ---------------------------------------------------------


class TestCliResilience:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "roi_loop.mc"
        path.write_text(ROI_LOOP)
        return str(path)

    def test_psec_with_fault_plan(self, source_file, capsys):
        from repro.cli import main
        code = main(["psec", source_file, "--batch-size", "16",
                     "--budget", "retries=1,degrade=1",
                     "--fault-plan", "seed=7;crash@1;drop@2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "degraded run" in captured.err
        assert "[degraded:" in captured.out

    def test_recommend_with_budgets(self, source_file, capsys):
        from repro.cli import main
        code = main(["recommend", source_file,
                     "--budget", "steps=100000000,depth=512"])
        assert code == 0
        assert "parallel for" in capsys.readouterr().out

    def test_budget_exhaustion_reports_tool_error(self, source_file,
                                                  capsys):
        from repro.cli import main
        code = main(["recommend", source_file, "--budget", "steps=100"])
        assert code == 1
        assert "instruction budget" in capsys.readouterr().err
