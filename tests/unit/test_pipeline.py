"""Unit tests for the batching pipeline (§4.6)."""

import threading
import time

import pytest

from repro.errors import RuntimeToolError
from repro.runtime.pipeline import Batch, BatchingPipeline


def make_pipeline(batch_size=4, threaded=False, workers=2, fail_on=None):
    processed = []
    postprocessed = []

    def process(batch):
        if fail_on is not None and fail_on in batch.events:
            raise ValueError(f"boom on {fail_on}")
        processed.append(list(batch.events))
        return batch

    def postprocess(batch):
        postprocessed.extend(batch.events)

    pipeline = BatchingPipeline(batch_size, process, postprocess,
                                threaded=threaded, worker_count=workers)
    return pipeline, processed, postprocessed


class TestDeterministicMode:
    def test_batches_fill_and_flush(self):
        pipeline, processed, post = make_pipeline(batch_size=3)
        for i in range(7):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(7))
        assert pipeline.batches_processed == 3  # 3 + 3 + 1

    def test_empty_close_is_noop(self):
        pipeline, _, post = make_pipeline()
        pipeline.close()
        assert post == []
        assert pipeline.batches_processed == 0

    def test_flush_partial_batch(self):
        pipeline, _, post = make_pipeline(batch_size=100)
        pipeline.push("a")
        pipeline.flush()
        assert post == ["a"]

    def test_events_seen_counter(self):
        pipeline, _, _ = make_pipeline(batch_size=2)
        for i in range(5):
            pipeline.push(i)
        assert pipeline.events_seen == 5

    def test_invalid_batch_size(self):
        with pytest.raises(RuntimeToolError):
            BatchingPipeline(0, lambda b: b, lambda b: None)


class TestThreadedMode:
    def test_order_preserved_across_workers(self):
        pipeline, _, post = make_pipeline(batch_size=5, threaded=True,
                                          workers=4)
        for i in range(103):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(103))

    def test_single_worker(self):
        pipeline, _, post = make_pipeline(batch_size=2, threaded=True,
                                          workers=1)
        for i in range(9):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(9))

    def test_worker_error_surfaces_on_close(self):
        pipeline, _, _ = make_pipeline(batch_size=1, threaded=True,
                                       workers=2, fail_on=3)
        for i in range(6):
            pipeline.push(i)
        with pytest.raises(Exception):
            pipeline.close()

    def test_large_volume(self):
        pipeline, _, post = make_pipeline(batch_size=64, threaded=True,
                                          workers=3)
        for i in range(10_000):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(10_000))

    def test_bounded_queue_block_policy_completes(self):
        """A 1-slot queue applies backpressure but loses nothing."""
        processed = []
        bounded = BatchingPipeline(
            8, lambda b: b, lambda b: processed.extend(b.events),
            threaded=True, worker_count=2, max_queue_batches=1,
        )
        for i in range(500):
            bounded.push(i)
        bounded.close()
        assert processed == list(range(500))


class TestCloseSemantics:
    def test_push_after_close_raises(self):
        pipeline, _, _ = make_pipeline()
        pipeline.close()
        with pytest.raises(RuntimeToolError):
            pipeline.push("late")

    def test_flush_after_close_raises(self):
        pipeline, _, _ = make_pipeline(threaded=True)
        pipeline.close()
        with pytest.raises(RuntimeToolError):
            pipeline.flush()

    def test_close_is_idempotent(self):
        pipeline, _, post = make_pipeline(batch_size=2)
        for i in range(5):
            pipeline.push(i)
        pipeline.close()
        pipeline.close()  # no error, no double-processing
        assert post == list(range(5))
        assert pipeline.batches_processed == 3

    def test_second_close_does_not_swallow_pending_error(self):
        pipeline, _, _ = make_pipeline(batch_size=1, threaded=True,
                                       workers=2, fail_on=0)
        pipeline.push(0)
        with pytest.raises(ValueError):
            pipeline.close()
        # The error is retained: closing again re-raises instead of
        # silently succeeding.
        with pytest.raises(ValueError):
            pipeline.close()


class TestThreadedErrorPaths:
    def _wait_for_error(self, pipeline, filler, timeout=5.0):
        """Push until the stored worker error surfaces (or time out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pipeline.push(filler)
            time.sleep(0.001)
        raise AssertionError("worker error never surfaced on push()")

    def test_worker_crash_surfaces_on_next_push(self):
        pipeline, _, _ = make_pipeline(batch_size=1, threaded=True,
                                       workers=2, fail_on="bad")
        pipeline.push("bad")
        with pytest.raises(ValueError, match="boom"):
            self._wait_for_error(pipeline, "ok")

    def test_worker_crash_surfaces_on_flush(self):
        pipeline, _, _ = make_pipeline(batch_size=1, threaded=True,
                                       workers=1, fail_on="bad")
        pipeline.push("bad")
        deadline = time.monotonic() + 5.0
        with pytest.raises(ValueError, match="boom"):
            while time.monotonic() < deadline:
                pipeline.flush()
                time.sleep(0.001)
            raise AssertionError("error never surfaced on flush()")

    def test_crash_in_postprocess_surfaces(self):
        def postprocess(batch):
            if "bad" in batch.events:
                raise RuntimeError("postprocess boom")

        pipeline = BatchingPipeline(1, lambda b: b, postprocess,
                                    threaded=True, worker_count=2)
        pipeline.push("ok")
        pipeline.push("bad")
        with pytest.raises(RuntimeError, match="postprocess boom"):
            pipeline.close()

    def test_sequence_gap_detected_at_close(self):
        """A batch that vanishes (worker died without reporting) leaves a
        sequence gap that close() must detect."""
        started = threading.Event()
        gate = threading.Event()

        def process(batch):
            started.set()
            gate.wait(timeout=5.0)
            return batch

        pipeline = BatchingPipeline(1, process, lambda b: None,
                                    threaded=True, worker_count=1)
        pipeline.push(0)           # worker takes batch 0 and blocks
        assert started.wait(timeout=5.0)
        pipeline.push(1)
        pipeline.push(2)
        # Simulate a worker dying with a batch in hand: batch 1 is pulled
        # from the queue and never processed.
        stolen = pipeline._queue.get_nowait()
        assert stolen.seq == 1
        gate.set()
        with pytest.raises(RuntimeToolError, match="unprocessed batches"):
            pipeline.close()
