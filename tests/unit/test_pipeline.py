"""Unit tests for the batching pipeline (§4.6)."""

import threading

import pytest

from repro.errors import RuntimeToolError
from repro.runtime.pipeline import Batch, BatchingPipeline


def make_pipeline(batch_size=4, threaded=False, workers=2, fail_on=None):
    processed = []
    postprocessed = []

    def process(batch):
        if fail_on is not None and fail_on in batch.events:
            raise ValueError(f"boom on {fail_on}")
        processed.append(list(batch.events))
        return batch

    def postprocess(batch):
        postprocessed.extend(batch.events)

    pipeline = BatchingPipeline(batch_size, process, postprocess,
                                threaded=threaded, worker_count=workers)
    return pipeline, processed, postprocessed


class TestDeterministicMode:
    def test_batches_fill_and_flush(self):
        pipeline, processed, post = make_pipeline(batch_size=3)
        for i in range(7):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(7))
        assert pipeline.batches_processed == 3  # 3 + 3 + 1

    def test_empty_close_is_noop(self):
        pipeline, _, post = make_pipeline()
        pipeline.close()
        assert post == []
        assert pipeline.batches_processed == 0

    def test_flush_partial_batch(self):
        pipeline, _, post = make_pipeline(batch_size=100)
        pipeline.push("a")
        pipeline.flush()
        assert post == ["a"]

    def test_events_seen_counter(self):
        pipeline, _, _ = make_pipeline(batch_size=2)
        for i in range(5):
            pipeline.push(i)
        assert pipeline.events_seen == 5

    def test_invalid_batch_size(self):
        with pytest.raises(RuntimeToolError):
            BatchingPipeline(0, lambda b: b, lambda b: None)


class TestThreadedMode:
    def test_order_preserved_across_workers(self):
        pipeline, _, post = make_pipeline(batch_size=5, threaded=True,
                                          workers=4)
        for i in range(103):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(103))

    def test_single_worker(self):
        pipeline, _, post = make_pipeline(batch_size=2, threaded=True,
                                          workers=1)
        for i in range(9):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(9))

    def test_worker_error_surfaces_on_close(self):
        pipeline, _, _ = make_pipeline(batch_size=1, threaded=True,
                                       workers=2, fail_on=3)
        for i in range(6):
            pipeline.push(i)
        with pytest.raises(Exception):
            pipeline.close()

    def test_large_volume(self):
        pipeline, _, post = make_pipeline(batch_size=64, threaded=True,
                                          workers=3)
        for i in range(10_000):
            pipeline.push(i)
        pipeline.close()
        assert post == list(range(10_000))
