"""Unit tests for the IR layer: types/layout, verifier, printing, regions."""

import pytest

from repro.errors import IRVerifyError
from repro.lang import types as ct
from repro.compiler.driver import frontend
from repro.ir.instructions import Jump, Load, Ret, RoiBegin, Store
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, Temp, const_int
from repro.ir.verifier import verify_module


class TestTypeLayout:
    def test_scalar_sizes(self):
        assert ct.INT.size() == 8
        assert ct.FLOAT.size() == 8
        assert ct.CHAR.size() == 1
        assert ct.PointerType(ct.INT).size() == 8

    def test_array_size(self):
        assert ct.ArrayType(ct.INT, 10).size() == 80
        assert ct.ArrayType(ct.CHAR, 10).size() == 10

    def test_struct_layout_with_alignment(self):
        struct = ct.StructType("s")
        struct.set_body([("c", ct.CHAR), ("i", ct.INT), ("d", ct.CHAR)])
        assert struct.field_offset("c") == 0
        assert struct.field_offset("i") == 8  # aligned up
        assert struct.field_offset("d") == 16
        assert struct.size() == 24  # padded to 8

    def test_struct_with_array_field(self):
        struct = ct.StructType("t")
        struct.set_body([("a", ct.ArrayType(ct.INT, 3)), ("b", ct.INT)])
        assert struct.field_offset("b") == 24

    def test_nested_struct_field(self):
        inner = ct.StructType("inner")
        inner.set_body([("x", ct.INT), ("y", ct.INT)])
        outer = ct.StructType("outer")
        outer.set_body([("pad", ct.CHAR), ("in_", inner)])
        assert outer.field_offset("in_") == 8
        assert outer.size() == 24

    def test_struct_identity_is_nominal(self):
        a = ct.StructType("same")
        b = ct.StructType("same")
        c = ct.StructType("other")
        assert a == b
        assert a != c

    def test_decay(self):
        arr = ct.ArrayType(ct.FLOAT, 4)
        assert ct.decay(arr) == ct.PointerType(ct.FLOAT)
        assert ct.decay(ct.INT) == ct.INT

    def test_missing_field_raises(self):
        struct = ct.StructType("s")
        struct.set_body([("x", ct.INT)])
        from repro.errors import SemanticError

        with pytest.raises(SemanticError):
            struct.field_offset("nope")


class TestVerifier:
    def _module_with(self, build):
        module = Module("t")
        fn = Function("f", ct.FunctionType(ct.INT, ()))
        module.add_function(fn)
        build(fn)
        return module

    def test_unterminated_block_rejected(self):
        def build(fn):
            block = fn.new_block("entry")
            block.append(Store(const_int(1), Temp("t0", ct.PointerType(ct.INT))))

        with pytest.raises(IRVerifyError):
            verify_module(self._module_with(build))

    def test_use_of_undefined_temp_rejected(self):
        def build(fn):
            block = fn.new_block("entry")
            block.append(Ret(Temp("ghost", ct.INT)))

        with pytest.raises(IRVerifyError):
            verify_module(self._module_with(build))

    def test_double_definition_rejected(self):
        def build(fn):
            block = fn.new_block("entry")
            ptr = ct.PointerType(ct.INT)
            from repro.ir.instructions import Alloca

            slot = Temp("t0", ptr)
            block.append(Alloca(slot, ct.INT, None))
            block.append(Load(Temp("t1", ct.INT), slot))
            block.append(Load(Temp("t1", ct.INT), slot))
            block.append(Ret(None))

        with pytest.raises(IRVerifyError):
            verify_module(self._module_with(build))

    def test_branch_to_foreign_block_rejected(self):
        def build(fn):
            block = fn.new_block("entry")
            stray = Block("stray")
            block.append(Jump(stray))

        with pytest.raises(IRVerifyError):
            verify_module(self._module_with(build))

    def test_unknown_roi_marker_rejected(self):
        def build(fn):
            block = fn.new_block("entry")
            block.append(RoiBegin(99))
            block.append(Ret(None))

        with pytest.raises(IRVerifyError):
            verify_module(self._module_with(build))

    def test_lowered_programs_always_verify(self):
        module = frontend(
            """
            int f(int n) {
              int total = 0;
              for (int i = 0; i < n; ++i) {
                #pragma carmot roi
                { total += i; }
              }
              return total;
            }
            int main() { return f(5); }
            """
        )
        verify_module(module)  # should not raise


class TestPrinting:
    def test_module_roundtrips_key_constructs(self):
        module = frontend(
            """
            int g = 4;
            int main() {
              int *p = (int*) malloc(8);
              *p = g;
              int v = *p;
              free((char*) p);
              return v;
            }
            """
        )
        text = str(module)
        assert "global @g : int = 4" in text
        assert "call !malloc" in text
        assert "ret" in text

    def test_roi_markers_printed(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 3; ++i) {
                #pragma carmot roi
                { s += i; }
              }
              return s;
            }
            """
        )
        text = str(module)
        assert "roi.begin #0" in text
        assert "roi.end #0" in text
        assert "roi.reset #0" in text
