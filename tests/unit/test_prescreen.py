"""Unit tests for the prescreen pass: verdict shapes, rejections, the
StaticFacts sidecar format, probe.static plumbing, and reporting."""

import pytest

from repro.compiler import CarmotOptions, compile_carmot
from repro.compiler.prescreen import (
    PRESCREEN_MODES,
    StaticFact,
    StaticFacts,
    VERDICT_READ_ONLY,
    VERDICT_READ_THEN_WRITE,
    VERDICT_WRITE_FIRST,
)
from repro.errors import ReproError, RuntimeToolError
from repro.ir.instructions import ProbeStatic
from repro.ir.serialize import deserialize_module, serialize_module
from repro.runtime.psec_json import psec_sets_digest
from repro.session import Session

#: Safe-tier showcase: every verdict shape in one ROI.  Per invocation
#: ``acc``/``i`` are written first (O→CO), ``k`` is only read (I→I),
#: and ``sum`` is read then unconditionally written (IO→TIO).
VERDICT_SOURCE = """
int main() {
    int sum;
    int k;
    sum = 0;
    k = 7;
    for (int r = 0; r < 4; ++r) {
        #pragma carmot roi abstraction(parallel_for)
        {
            int acc = 0;
            for (int i = 0; i < 8; ++i) {
                acc = acc + k;
            }
            sum = sum + acc;
        }
    }
    print_int(sum);
    return 0;
}
"""

#: ``odd`` is only written when the data cooperates — no static verdict
#: exists for a read-first PSE without a guaranteed write.
CONDITIONAL_SOURCE = """
int main() {
    int sum;
    int odd;
    sum = 0;
    odd = 0;
    for (int r = 0; r < 4; ++r) {
        #pragma carmot roi abstraction(parallel_for)
        {
            sum = sum + r;
            if (sum % 3 == 0) {
                odd = odd + 1;
            }
        }
    }
    print_int(sum + odd);
    return 0;
}
"""

#: A pragma'd inner loop re-entered by an outer loop: every outer
#: iteration emits ``roi.reset`` (a fresh epoch), so once-letters apply
#: per epoch, not once globally.
EPOCH_SOURCE = """
int main() {
    int sum;
    sum = 0;
    for (int t = 0; t < 3; ++t) {
        #pragma carmot roi abstraction(parallel_for)
        for (int i = 0; i < 4; ++i) {
            sum = sum + i;
        }
    }
    print_int(sum);
    return 0;
}
"""


def _facts_by_var(program):
    return {f.var_name: f for f in program.module.static_facts.facts}


class TestVerdicts:
    def test_all_three_shapes_proved(self):
        program = compile_carmot(VERDICT_SOURCE, name="verdicts",
                                 options=CarmotOptions(prescreen="safe"))
        by_var = _facts_by_var(program)
        assert (by_var["acc"].once_letters,
                by_var["acc"].steady_letters) == VERDICT_WRITE_FIRST
        assert (by_var["i"].once_letters,
                by_var["i"].steady_letters) == VERDICT_WRITE_FIRST
        assert (by_var["k"].once_letters,
                by_var["k"].steady_letters) == VERDICT_READ_ONLY
        assert (by_var["sum"].once_letters,
                by_var["sum"].steady_letters) == VERDICT_READ_THEN_WRITE
        assert all(f.kind == "slot" for f in by_var.values())

    def test_verdict_kernel_matches_dynamic(self):
        _, off_rt = compile_carmot(VERDICT_SOURCE, name="verdicts").run()
        hybrid = compile_carmot(VERDICT_SOURCE, name="verdicts",
                                options=CarmotOptions(prescreen="safe"))
        _, hyb_rt = hybrid.run()
        assert psec_sets_digest(off_rt.psecs) == psec_sets_digest(
            hyb_rt.psecs)
        # Everything in the ROI was claimed: zero dynamic access events.
        assert hyb_rt.stats.access_events == 0
        assert hyb_rt.stats.static_probe_events > 0

    def test_conditional_write_stays_dynamic(self):
        program = compile_carmot(CONDITIONAL_SOURCE, name="cond",
                                 options=CarmotOptions(prescreen="safe"))
        facts = program.module.static_facts
        claimed = {f.var_name for f in facts.facts} if facts else set()
        assert "odd" not in claimed
        _, off_rt = compile_carmot(CONDITIONAL_SOURCE, name="cond").run()
        _, hyb_rt = program.run()
        assert psec_sets_digest(off_rt.psecs) == psec_sets_digest(
            hyb_rt.psecs)
        # The conditional PSE still produces dynamic events.
        assert hyb_rt.stats.access_events > 0

    def test_epochs_resolved_per_reset(self):
        program = compile_carmot(EPOCH_SOURCE, name="epochs",
                                 options=CarmotOptions(prescreen="safe"))
        facts = program.module.static_facts
        assert facts is not None and len(facts) > 0
        _, off_rt = compile_carmot(EPOCH_SOURCE, name="epochs").run()
        _, hyb_rt = program.run()
        assert psec_sets_digest(off_rt.psecs) == psec_sets_digest(
            hyb_rt.psecs)

    def test_aggressive_element_fact_geometry(self):
        source = open("examples/roi_loop.mc").read()
        program = compile_carmot(
            source, name="roi_loop",
            options=CarmotOptions(prescreen="aggressive"))
        elements = [f for f in program.module.static_facts.facts
                    if f.kind == "elements"]
        assert len(elements) == 1
        fact = elements[0]
        assert fact.count == 16
        assert fact.start == 0
        assert fact.stride == 8
        assert fact.size == 8
        assert (fact.once_letters,
                fact.steady_letters) == VERDICT_READ_THEN_WRITE

    def test_off_mode_proves_nothing(self):
        program = compile_carmot(VERDICT_SOURCE, name="verdicts")
        assert program.module.static_facts is None
        assert not any(
            isinstance(i, ProbeStatic)
            for f in program.module.functions.values()
            for i in f.instructions()
        )

    def test_pipeline_text_defaults_to_safe_tier(self):
        session = Session(enabled=False)
        compiled = session.compile(
            VERDICT_SOURCE,
            "callgraph-o3,selective-mem2reg,prescreen,fixed-classification,"
            "aggregation,subsequent-accesses,pin-reduction,"
            "out-of-roi-suppression,instrument",
            name="verdicts",
        )
        facts = compiled.program.module.static_facts
        assert facts is not None
        assert facts.mode == "safe"


class TestSidecarFormat:
    def _facts(self):
        return StaticFacts(mode="aggressive", facts=[
            StaticFact(roi_id=0, kind="slot",
                       pse=("alloca", "main", "t1"), var_name="sum",
                       once_letters="IO", steady_letters="TIO", size=8,
                       sites=3, mode="safe"),
            StaticFact(roi_id=1, kind="elements",
                       pse=("alloca", "main", "t0"), var_name=None,
                       once_letters="IO", steady_letters="TIO", size=8,
                       start=8, stride=8, count=16, sites=2,
                       mode="aggressive"),
        ])

    def test_json_round_trip(self):
        facts = self._facts()
        assert StaticFacts.from_json(facts.to_json()) == facts

    def test_serialize_round_trip_and_digest_stability(self):
        facts = self._facts()
        text = facts.serialize()
        again = StaticFacts.deserialize(text)
        assert again == facts
        assert again.digest() == facts.digest()

    def test_foreign_format_rejected(self):
        with pytest.raises(ReproError):
            StaticFacts.from_json({"format": "something-else"})

    def test_version_mismatch_rejected(self):
        doc = self._facts().to_json()
        doc["version"] = -1
        with pytest.raises(ReproError, match="version"):
            StaticFacts.from_json(doc)

    def test_corrupt_text_rejected(self):
        with pytest.raises(ReproError):
            StaticFacts.deserialize("{not json")
        with pytest.raises(ReproError):
            StaticFacts.deserialize("[1, 2]")

    def test_modes_constant(self):
        assert PRESCREEN_MODES == ("off", "safe", "aggressive")


class TestProbeStaticPlumbing:
    def test_ir_serialize_round_trip(self):
        program = compile_carmot(VERDICT_SOURCE, name="verdicts",
                                 options=CarmotOptions(prescreen="safe"))
        module = program.module

        def probes(mod):
            return [
                (instr.roi_id, instr.fact_index)
                for fn in mod.functions.values()
                for instr in fn.instructions()
                if isinstance(instr, ProbeStatic)
            ]

        original = probes(module)
        assert original  # one probe anchor per claimed ROI
        restored = probes(deserialize_module(serialize_module(module)))
        assert restored == original

    def test_instrument_report_counts_static(self):
        program = compile_carmot(VERDICT_SOURCE, name="verdicts",
                                 options=CarmotOptions(prescreen="safe"))
        report = program.report
        assert report.static_probes > 0
        assert report.static_suppressed_probes > 0
        assert report.static_suppressed_probes <= report.suppressed_probes

    def test_missing_sidecar_raises(self):
        program = compile_carmot(VERDICT_SOURCE, name="verdicts",
                                 options=CarmotOptions(prescreen="safe"))
        program.module.static_facts = None
        with pytest.raises(RuntimeToolError, match="sidecar"):
            program.run()

    def test_pass_stats_extras_rendered(self):
        session = Session(enabled=False)
        compiled = session.compile(
            VERDICT_SOURCE, "carmot", name="verdicts",
            options=CarmotOptions(prescreen="safe"),
        )
        rendered = compiled.program.pass_report.render()
        assert "prescreen:" in rendered
        assert "slot_facts=" in rendered
        assert "sites_stripped=" in rendered
