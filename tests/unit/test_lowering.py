"""Unit tests for AST→IR lowering edge cases and the ROI marker protocol."""

import pytest

from repro.compiler.driver import frontend
from repro.ir.instructions import (
    Alloca,
    Call,
    Jump,
    Ret,
    RoiBegin,
    RoiEnd,
    RoiReset,
)
from repro.vm import run_module


def instrs_of(module, fn="main"):
    return [i for b in module.functions[fn].blocks for i in b.instrs]


class TestRoiMarkers:
    def test_loop_roi_emits_reset_begin_end(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              #pragma carmot roi
              for (int i = 0; i < 3; ++i) { s += i; }
              return s;
            }
            """
        )
        kinds = [type(i).__name__ for i in instrs_of(module)]
        assert kinds.count("RoiReset") == 1
        assert kinds.count("RoiBegin") == 1  # static: one site per marker

    def test_break_exits_roi_cleanly(self):
        """Every path out of the region carries roi.end: the runtime's
        active-ROI stack must balance even with break/continue/return."""
        module = frontend(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi
                {
                  if (i == 3) break;
                  if (i == 1) continue;
                  s += i;
                }
              }
              return s;
            }
            """
        )
        begins = sum(isinstance(i, RoiBegin) for i in instrs_of(module))
        ends = sum(isinstance(i, RoiEnd) for i in instrs_of(module))
        assert begins == 1
        assert ends == 3  # normal exit + break + continue
        result = run_module(module)
        assert result.return_value == 0 + 2  # i=0 adds 0, i=1 skips, i=2 adds

    def test_return_inside_roi_closes_it(self):
        module = frontend(
            """
            int f(int n) {
              for (int i = 0; i < n; ++i) {
                #pragma carmot roi
                { if (i == 2) return i; }
              }
              return -1;
            }
            int main() { return f(5); }
            """
        )
        ends = sum(isinstance(i, RoiEnd) for i in instrs_of(module, "f"))
        assert ends == 2  # the return path and the fall-through path
        assert run_module(module).return_value == 2

    def test_nested_rois_balance(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              #pragma carmot roi name(outer)
              {
                for (int i = 0; i < 2; ++i) {
                  #pragma carmot roi name(inner)
                  { s += i; }
                }
              }
              return s;
            }
            """
        )
        assert len(module.rois) == 2
        run_module(module)  # marker imbalance would corrupt the run

    def test_roi_names_respected(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              #pragma carmot roi name(hot) abstraction(task)
              { s = 1; }
              return s;
            }
            """
        )
        roi = module.rois[0]
        assert roi.name == "hot"
        assert roi.abstraction == "task"
        assert not roi.is_loop_body


class TestLoweringShapes:
    def test_allocas_lead_the_entry_block(self):
        module = frontend(
            """
            int f(int a) {
              int x = 1;
              if (a) { int y = 2; return y; }
              return x;
            }
            int main() { return f(1); }
            """
        )
        entry = module.functions["f"].entry
        seen_non_alloca = False
        for instr in entry.instrs:
            if isinstance(instr, Alloca):
                assert not seen_non_alloca, "alloca after non-alloca"
            else:
                seen_non_alloca = True

    def test_dead_code_after_return_pruned(self):
        module = frontend("int main() { return 1; int x = 2; return x; }")
        rets = [i for i in instrs_of(module) if isinstance(i, Ret)]
        assert len(rets) == 1

    def test_string_literals_become_globals(self):
        module = frontend('int main() { print_str("hello"); return 0; }')
        assert any(name.startswith(".str") for name in module.globals)

    def test_void_function_gets_implicit_return(self):
        module = frontend("void f() { } int main() { f(); return 0; }")
        terminator = module.functions["f"].blocks[-1].terminator
        assert isinstance(terminator, Ret)

    def test_char_semantics_through_lowering(self):
        module = frontend(
            """
            int main() {
              char c = 200;
              c = c + 100;
              print_int(c);
              return 0;
            }
            """
        )
        assert run_module(module).output == ["44"]  # (200 + 100) & 0xFF

    def test_global_without_initializer_is_zero(self):
        module = frontend("int g;\nint main() { return g; }")
        assert run_module(module).return_value == 0

    def test_omp_markers_lowered(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              #pragma omp critical
              { s = 1; }
              #pragma omp barrier
              ;
              return s;
            }
            """
        )
        kinds = {type(i).__name__ for i in instrs_of(module)}
        assert "OmpRegionBegin" in kinds
        assert "OmpBarrier" in kinds
        assert module.omp_regions
