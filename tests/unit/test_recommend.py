"""Unit tests for the recommender registry, the role/container evidence
layer, and the versioned recommendation document."""

import pytest

from repro.compiler import compile_carmot
from repro.errors import RecommendationError
from repro.recommend import (
    DEFAULT_SELECTION,
    RECOMMEND_DOC_FORMAT,
    Evidence,
    build_recommendation_doc,
    create_recommender,
    parse_selection,
    recommender_registry_fingerprint,
    registered_alias_names,
    registered_recommender_names,
)
from repro.recommend.roles import _container_verdict
from repro._version import RECOMMEND_SCHEMA_VERSION


def run(source, abstraction=None):
    program = compile_carmot(source, abstraction, name="t")
    _, runtime = program.run()
    return program, runtime


def evidence(runtime, roi_id=0):
    return Evidence.gather(runtime, roi_id)


# -- selection parsing --------------------------------------------------------


class TestSelectionParsing:
    def test_default_selection_is_the_role_hints(self):
        assert parse_selection(None) == parse_selection(DEFAULT_SELECTION)
        assert parse_selection(None) == [
            "reduction_hint", "privatization_hint",
        ]

    def test_paper_alias_expands_to_the_four_generators(self):
        assert parse_selection("paper") == [
            "parallel_for", "task", "smart_pointers", "stats",
        ]

    def test_all_alias_covers_every_recommender(self):
        assert set(parse_selection("all")) == \
            set(registered_recommender_names())

    def test_negation_removes_earlier_occurrence(self):
        assert parse_selection("all,-stats") == [
            name for name in parse_selection("all") if name != "stats"
        ]

    def test_alias_negation_removes_the_expansion(self):
        assert parse_selection("all,-roles") == parse_selection("paper")

    def test_duplicates_collapse_to_first_occurrence(self):
        assert parse_selection("stats,paper") == parse_selection("paper")[
            -1:] + parse_selection("paper")[:-1]

    def test_unknown_name_lists_registered_recommenders(self):
        with pytest.raises(RecommendationError) as excinfo:
            parse_selection("bogus")
        message = str(excinfo.value)
        assert "unknown recommender 'bogus'" in message
        for name in registered_recommender_names():
            assert name in message
        for alias in registered_alias_names():
            assert alias in message

    def test_unknown_negation_lists_registered_recommenders(self):
        with pytest.raises(RecommendationError) as excinfo:
            parse_selection("all,-bogus")
        assert "registered recommenders" in str(excinfo.value)

    def test_create_recommender_unknown_name_lists_registered(self):
        """The bugfix: an unknown abstraction/recommender name reports
        what *is* registered instead of a bare failure."""
        with pytest.raises(RecommendationError) as excinfo:
            create_recommender("parallel_four")
        message = str(excinfo.value)
        assert "unknown recommender 'parallel_four'" in message
        assert "parallel_for" in message

    def test_registry_fingerprint_is_stable(self):
        assert recommender_registry_fingerprint() == \
            recommender_registry_fingerprint()
        assert len(recommender_registry_fingerprint()) == 64


# -- variable roles -----------------------------------------------------------


ROI_LOOP = """
int main() {
  int a[16];
  int sum = 0;
  for (int r = 0; r < 3; ++r) {
    #pragma carmot roi abstraction(parallel_for)
    {
      for (int i = 0; i < 16; ++i) {
        a[i] = a[i] + r;
        sum = sum + a[i];
      }
    }
  }
  print_int(sum);
  return 0;
}
"""


class TestRoles:
    def _roles(self, source):
        _, runtime = run(source)
        return {role.name: role for role in evidence(runtime).roles}

    def test_iterators_and_accumulator(self):
        roles = self._roles(ROI_LOOP)
        assert roles["i"].role == "iterator"
        assert roles["r"].role == "iterator"
        assert roles["r"].detail == "loop-governing induction variable"
        assert roles["i"].detail == "inner-loop induction variable"
        assert roles["sum"].role == "accumulator"
        assert "'+'" in roles["sum"].detail

    def test_counter_constant_step(self):
        roles = self._roles(
            """
            int main() {
              int a[8];
              int hits = 0;
              for (int r = 0; r < 2; ++r) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  for (int i = 0; i < 8; ++i) {
                    a[i] = i * r;
                    if (a[i] % 2 == 0) { hits = hits + 1; }
                  }
                }
              }
              print_int(hits);
              return 0;
            }
            """
        )
        assert roles["hits"].role == "counter"
        assert "constant step 1" in roles["hits"].detail

    def test_flag_constant_stores(self):
        roles = self._roles(
            """
            int main() {
              int a[8];
              int seen = 0;
              int sink = 0;
              for (int r = 0; r < 2; ++r) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  for (int i = 0; i < 8; ++i) {
                    a[i] = i + r;
                    if (a[i] > 5) { seen = 1; }
                    if (seen == 1) { sink = sink + a[i]; }
                  }
                }
              }
              print_int(sink);
              return 0;
            }
            """
        )
        assert roles["seen"].role == "flag"
        assert "constants {1}" in roles["seen"].detail

    def test_temporary_scratch_scalar(self):
        """A loop-body ROI: the read-after horizon starts at the
        enclosing loop's exits, so a written-before-read scratch scalar
        consumed only inside the region classifies as temporary."""
        roles = self._roles(
            """
            int main() {
              int a[8];
              int out = 0;
              int t;
              for (int i = 0; i < 8; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  t = i * 3 + 1;
                  a[i] = t * t;
                }
              }
              for (int i = 0; i < 8; ++i) { out = out + a[i]; }
              print_int(out);
              return 0;
            }
            """
        )
        assert roles["t"].role == "temporary"

    def test_role_doc_shape(self):
        _, runtime = run(ROI_LOOP)
        for role in evidence(runtime).roles:
            doc = role.doc()
            assert set(doc) == {"pse", "key", "storage", "role", "detail"}


# -- container summaries ------------------------------------------------------


class TestContainers:
    def test_verdict_table(self):
        assert _container_verdict({"I": 4}) == "read-shared"
        assert _container_verdict({"CIT": 4}) == "carried-dependence"
        assert _container_verdict({"CO": 2, "C": 1}) == "mixed"
        assert _container_verdict({"C": 3}) == "per-invocation-scratch"
        assert _container_verdict({"CO": 3}) == "per-invocation-scratch"
        assert _container_verdict({"I": 1, "CIT": 1}) == "mixed-carried"
        assert _container_verdict({"CI": 2}) == "uniform"

    def test_read_shared_and_scratch_containers(self):
        _, runtime = run(
            """
            int main() {
              int src[8];
              int tmp[8];
              int sum = 0;
              for (int i = 0; i < 8; ++i) src[i] = i;
              for (int r = 0; r < 2; ++r) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  for (int i = 0; i < 8; ++i) {
                    tmp[i] = src[i] * 2;
                    sum = sum + tmp[i];
                  }
                }
              }
              print_int(sum);
              return 0;
            }
            """
        )
        verdicts = {c.name: c for c in evidence(runtime).containers}
        assert verdicts["src"].verdict == "read-shared"
        assert verdicts["tmp"].verdict == "per-invocation-scratch"
        assert verdicts["tmp"].privatizable
        assert not verdicts["src"].privatizable

    def test_carried_dependence_container(self):
        _, runtime = run(ROI_LOOP)
        verdicts = {c.name: c.verdict for c in evidence(runtime).containers}
        assert verdicts["a"] == "carried-dependence"


# -- role-driven recommenders -------------------------------------------------


class TestRoleDrivenRecommenders:
    def test_reduction_hint_fires_on_accumulator(self):
        _, runtime = run(ROI_LOOP)
        rec = create_recommender("reduction_hint")
        result = rec.generate(evidence(runtime))
        assert result is not None
        rendered = result.render()
        assert "reduction structure detected" in rendered
        assert "sum" in rendered

    def test_privatization_hint_fires_on_iterators(self):
        _, runtime = run(ROI_LOOP)
        rec = create_recommender("privatization_hint")
        result = rec.generate(evidence(runtime))
        assert result is not None
        assert "privatization candidates" in result.render()

    def test_reduction_hint_silent_without_reducible_update(self):
        _, runtime = run(
            """
            int main() {
              int a[8];
              for (int r = 0; r < 2; ++r) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  for (int i = 0; i < 8; ++i) { a[i] = i * r; }
                }
              }
              print_int(a[3]);
              return 0;
            }
            """
        )
        rec = create_recommender("reduction_hint")
        assert rec.generate(evidence(runtime)) is None


# -- the versioned document ---------------------------------------------------


class TestRecommendationDoc:
    def test_doc_shape_and_version(self):
        _, runtime = run(ROI_LOOP)
        doc = build_recommendation_doc(runtime)
        assert doc["format"] == RECOMMEND_DOC_FORMAT
        assert doc["version"] == RECOMMEND_SCHEMA_VERSION
        assert doc["recommenders"] == parse_selection(None)
        roi = doc["rois"][0]
        assert set(roi) == {"id", "name", "abstraction", "rendered",
                            "roles", "containers", "recommendations",
                            "skipped"}
        kinds = [r["kind"] for r in roi["recommendations"]]
        assert kinds[0] == "parallel_for"
        assert "reduction_hint" in kinds
        assert "privatization_hint" in kinds

    def test_primary_always_runs_even_when_deselected(self):
        _, runtime = run(ROI_LOOP)
        doc = build_recommendation_doc(
            runtime, recommender_names=parse_selection("reduction_hint"))
        roi = doc["rois"][0]
        assert roi["rendered"] is not None
        assert [r["kind"] for r in roi["recommendations"]][0] == \
            "parallel_for"

    def test_doc_is_json_deterministic(self):
        import json

        _, runtime = run(ROI_LOOP)
        one = json.dumps(build_recommendation_doc(runtime), sort_keys=True)
        two = json.dumps(build_recommendation_doc(runtime), sort_keys=True)
        assert one == two
