"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

FIGURE1 = """
int work(int a, int b) {
  int i, x, y;
  y = 42;
  for (i = 0; i < 10; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    { x = i / (a + b); y /= a * x + b; }
  }
  return y;
}
int main() { print_int(work(3, 4)); return 0; }
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "fig1.mc"
    path.write_text(FIGURE1)
    return str(path)


class TestRecommend:
    def test_default_subcommand(self, source_file, capsys):
        assert main([source_file]) == 0
        out = capsys.readouterr().out
        assert "#pragma omp parallel for" in out
        assert "private(i, x)" in out

    def test_show_output(self, source_file, capsys):
        assert main(["recommend", source_file, "--show-output"]) == 0
        assert "program output: 0" in capsys.readouterr().out

    def test_no_rois_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "plain.mc"
        path.write_text("int main() { return 0; }")
        assert main(["recommend", str(path)]) == 1

    def test_abstraction_override(self, source_file, capsys):
        assert main(["recommend", source_file, "--abstraction", "task"]) == 0
        assert "#pragma omp task" in capsys.readouterr().out


class TestPsec:
    def test_sets_printed(self, source_file, capsys):
        assert main(["psec", source_file]) == 0
        out = capsys.readouterr().out
        assert "input" in out and "transfer" in out
        assert "10 invocations" in out


class TestOverhead:
    def test_three_rows(self, source_file, capsys):
        assert main(["overhead", source_file]) == 0
        out = capsys.readouterr().out
        assert "baseline cost" in out
        assert "gap" in out


class TestIr:
    @pytest.mark.parametrize("mode", ["plain", "baseline", "naive", "carmot"])
    def test_modes(self, source_file, mode, capsys):
        assert main(["ir", source_file, "--mode", mode]) == 0
        out = capsys.readouterr().out
        assert "func work" in out
        if mode in ("naive", "carmot"):
            assert "probe." in out
        if mode == "plain":
            assert "probe." not in out


class TestPasses:
    def test_explicit_pipeline(self, source_file, capsys):
        assert main(["psec", source_file, "--passes",
                     "carmot,-pin-reduction"]) == 0
        assert "invocations" in capsys.readouterr().out

    def test_print_pass_stats(self, source_file, capsys):
        assert main(["psec", source_file, "--print-pass-stats"]) == 0
        out = capsys.readouterr().out
        assert "pass statistics:" in out
        assert "instrument" in out
        assert "analysis cache" in out

    def test_ir_with_pipeline_overrides_mode(self, source_file, capsys):
        assert main(["ir", source_file, "--passes", "baseline"]) == 0
        assert "probe." not in capsys.readouterr().out

    def test_unknown_pass_lists_registered_names(self, source_file, capsys):
        assert main(["psec", source_file, "--passes", "carmot,typo"]) == 1
        err = capsys.readouterr().err
        assert "unknown pass 'typo'" in err
        assert "registered passes" in err
        assert "pin-reduction" in err

    def test_uninstrumented_pipeline_rejected_for_psec(self, source_file,
                                                       capsys):
        assert main(["psec", source_file, "--passes", "o3"]) == 1
        assert "no instrumenter" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["recommend", "/nonexistent/x.mc"]) == 1

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.mc"
        path.write_text("int main( {")
        assert main(["recommend", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_help_without_command(self, capsys):
        assert main([]) == 2
