"""Unit tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.lang import astnodes as ast
from repro.lang import types as ct
from repro.lang.parser import parse
from repro.lang.pragmas import CarmotRoi, OmpPragma


class TestDeclarations:
    def test_simple_function(self):
        prog = parse("int main() { return 0; }")
        assert len(prog.functions) == 1
        fn = prog.functions[0]
        assert fn.name == "main"
        assert fn.return_type == ct.INT
        assert isinstance(fn.body.stmts[0], ast.Return)

    def test_function_params(self):
        prog = parse("int add(int a, int b) { return a + b; }")
        fn = prog.functions[0]
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_param_list(self):
        prog = parse("void f(void) { }")
        assert prog.functions[0].params == []

    def test_array_param_decays_to_pointer(self):
        prog = parse("void f(int a[10]) { }")
        assert prog.functions[0].params[0].param_type == ct.PointerType(ct.INT)

    def test_global_variable(self):
        prog = parse("int counter = 3;\nfloat table[100];")
        assert prog.globals[0].name == "counter"
        assert isinstance(prog.globals[0].init, ast.IntLit)
        assert prog.globals[1].var_type == ct.ArrayType(ct.FLOAT, 100)

    def test_struct_definition(self):
        prog = parse("struct point { int x; int y; };")
        assert prog.structs[0].name == "point"
        assert [f[0] for f in prog.structs[0].fields] == ["x", "y"]

    def test_typedef_struct(self):
        prog = parse(
            """
            typedef struct node_t { struct node_t *next; int value; } NODE_T;
            NODE_T *head;
            """
        )
        assert prog.structs[0].name == "node_t"
        ptr = prog.globals[0].var_type
        assert isinstance(ptr, ct.PointerType)
        assert isinstance(ptr.pointee, ct.StructType)
        assert ptr.pointee.name == "node_t"

    def test_extern_declaration(self):
        prog = parse("int helper(int x);")
        assert prog.functions[0].body is None

    def test_multi_declarator_struct_fields(self):
        prog = parse("struct p { int x, y; };")
        assert [f[0] for f in prog.structs[0].fields] == ["x", "y"]


class TestStatements:
    def body(self, text):
        return parse("void f() { %s }" % text).functions[0].body.stmts

    def test_var_decl_with_init(self):
        (decl,) = self.body("int x = 5;")
        assert isinstance(decl, ast.VarDecl)
        assert decl.name == "x"

    def test_multi_var_decl(self):
        (group,) = self.body("int x = 1, y = 2;")
        assert isinstance(group, ast.DeclGroup)
        assert [d.name for d in group.decls] == ["x", "y"]

    def test_local_array(self):
        (decl,) = self.body("float grid[4][8];")
        assert decl.var_type == ct.ArrayType(ct.ArrayType(ct.FLOAT, 8), 4)

    def test_if_else(self):
        (stmt,) = self.body("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = self.body("if (1) if (2) ; else ;")
        assert stmt.otherwise is None
        assert isinstance(stmt.then, ast.If)
        assert stmt.then.otherwise is not None

    def test_for_loop_with_decl(self):
        (stmt,) = self.body("for (int i = 0; i < 10; ++i) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.IncDec)

    def test_for_loop_empty_clauses(self):
        (stmt,) = self.body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_and_do_while(self):
        stmts = self.body("while (1) break; do continue; while (0);")
        assert isinstance(stmts[0], ast.While)
        assert isinstance(stmts[1], ast.DoWhile)


class TestExpressions:
    def expr(self, text):
        stmts = parse("void f() { %s; }" % text).functions[0].body.stmts
        return stmts[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("x = 1 + 2 * 3")
        assert isinstance(e.value, ast.BinOp) and e.value.op == "+"
        assert isinstance(e.value.rhs, ast.BinOp) and e.value.rhs.op == "*"

    def test_comparison_below_arith(self):
        e = self.expr("r = a + b < c")
        assert e.value.op == "<"

    def test_logical_lowest(self):
        e = self.expr("r = a < b && c < d || e")
        assert e.value.op == "||"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = c")
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = self.expr("y /= a * x + b")
        assert e.op == "/="

    def test_unary_chain(self):
        e = self.expr("r = -*p")
        assert isinstance(e.value, ast.UnaryOp)
        assert isinstance(e.value.operand, ast.Deref)

    def test_address_of(self):
        e = self.expr("p = &x")
        assert isinstance(e.value, ast.AddressOf)

    def test_postfix_chain(self):
        e = self.expr("v = a[1].next->value")
        member = e.value
        assert isinstance(member, ast.Member) and member.arrow
        inner = member.base
        assert isinstance(inner, ast.Member) and not inner.arrow
        assert isinstance(inner.base, ast.Index)

    def test_call_with_args(self):
        e = self.expr("r = f(1, x + 2)")
        assert isinstance(e.value, ast.Call)
        assert len(e.value.args) == 2

    def test_sizeof_type_and_expr(self):
        e1 = self.expr("n = sizeof(int)")
        assert isinstance(e1.value.target, ct.IntType)
        e2 = self.expr("n = sizeof(n)")
        assert isinstance(e2.value.target, ast.Expr)

    def test_cast(self):
        prog = parse(
            "typedef struct t { int v; } T;\n"
            "void f() { T *p; p = (T*) 0; }"
        )
        stmt = prog.functions[0].body.stmts[1]
        assert isinstance(stmt.expr.value, ast.Cast)

    def test_ternary(self):
        e = self.expr("m = a < b ? a : b")
        assert isinstance(e.value, ast.Cond)

    def test_inc_dec_prefix_and_postfix(self):
        pre = self.expr("++i")
        post = self.expr("i++")
        assert pre.is_prefix and not post.is_prefix


class TestPragmaAttachment:
    def test_carmot_roi_attaches_to_loop(self):
        prog = parse(
            """
            void f(int a, int b) {
              #pragma carmot roi abstraction(parallel_for)
              for (int i = 0; i < 10; ++i) { }
            }
            """
        )
        loop = prog.functions[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.pragmas[0], CarmotRoi)
        assert loop.pragmas[0].abstraction == "parallel_for"

    def test_omp_pragma_attaches(self):
        prog = parse(
            """
            void f() {
              #pragma omp parallel for private(x) reduction(+:sum)
              while (0) { }
            }
            """
        )
        loop = prog.functions[0].body.stmts[0]
        omp = loop.pragmas[0]
        assert isinstance(omp, OmpPragma)
        assert omp.directive == "parallel for"
        assert omp.private == ["x"]
        assert omp.reductions == [("+", "sum")]

    def test_multiple_pragmas_stack(self):
        prog = parse(
            """
            void f() {
              #pragma carmot roi
              #pragma omp critical
              { }
            }
            """
        )
        stmt = prog.functions[0].body.stmts[0]
        assert len(stmt.pragmas) == 2

    def test_pragma_at_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse("#pragma carmot roi\nint x;")


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main( { }",
            "int main() { return }",
            "int main() { int 3x; }",
            "int main() { x ++ 3; }",
            "struct s { int };",
            "int a[x];",
            "int main() { for (;; }",
        ],
    )
    def test_malformed_programs(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int main() { if (1) {")
