"""Unit tests for PSEC containers and the cross-run merge rule (§4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RuntimeToolError
from repro.runtime.fsa import State
from repro.runtime.psec import (
    MemoryBudgetExceeded,
    Psec,
    merge_psecs,
)


def _touch(psec, key, writes_and_invs, track_uses=False):
    for is_write, inv in writes_and_invs:
        psec.record_access(key, None, is_write, inv, inv * 10, None, (),
                           track_uses)


class TestPsecRecording:
    def test_sets_extraction(self):
        psec = Psec(0)
        _touch(psec, ("var", 1), [(False, 1), (False, 2)])          # input
        _touch(psec, ("var", 2), [(True, 1), (True, 2)])            # cloneable
        _touch(psec, ("var", 3), [(True, 1), (False, 2)])           # transfer
        sets = psec.sets()
        assert ("var", 1) in sets["input"]
        assert ("var", 2) in sets["cloneable"]
        assert ("var", 3) in sets["transfer"]
        assert ("var", 2) in sets["output"]

    def test_per_element_granularity(self):
        """Figure 2: only a[1] carries the cross-invocation RAW."""
        psec = Psec(0)
        # invocation 0: read a[0], write a[1]
        _touch(psec, ("mem", 9, 0, 8), [(False, 1)])
        _touch(psec, ("mem", 9, 8, 8), [(True, 1)])
        # invocation 1: read a[1] -> transfer; write a[0]
        _touch(psec, ("mem", 9, 8, 8), [(False, 2)])
        _touch(psec, ("mem", 9, 0, 8), [(True, 2)])
        sets = psec.sets()
        assert sets["transfer"] == [("mem", 9, 8, 8)]
        assert ("mem", 9, 0, 8) not in sets["transfer"]

    def test_use_callstack_recording(self):
        psec = Psec(0)
        psec.record_access(("var", 1), None, False, 1, 5, None,
                           ("main", "f"), True)
        entry = psec.entries[("var", 1)]
        assert ("?", ("main", "f")) in entry.uses

    def test_use_records_budget(self):
        psec = Psec(0)
        with pytest.raises(MemoryBudgetExceeded):
            for i in range(100):
                psec.record_access(
                    ("var", i), None, False, 1, i, None, (f"fn{i}",),
                    True, max_use_records=10,
                )

    def test_forced_classification_combines(self):
        psec = Psec(0)
        psec.force_classification(("var", 1), None, "I", 0)
        _touch(psec, ("var", 1), [(True, 1)])
        assert psec.classification_of(("var", 1)) == frozenset("IO")

    def test_invariant_checker_passes_on_valid_psec(self):
        psec = Psec(0)
        _touch(psec, ("var", 1), [(True, 1), (True, 2)])
        psec.check_invariants()

    def test_forcing_transfer_drops_cloneable(self):
        psec = Psec(0)
        _touch(psec, ("var", 1), [(True, 1), (True, 2)])  # cloneable
        psec.force_classification(("var", 1), None, "T", 0)
        letters = psec.classification_of(("var", 1))
        assert "T" in letters and "C" not in letters


class TestMerge:
    def _mk(self, letters_by_key):
        psec = Psec(7)
        for key, letters in letters_by_key.items():
            psec.force_classification(key, None, letters, 0)
        return psec

    def test_union_rule(self):
        a = self._mk({("var", 1): "IO"})
        b = self._mk({("var", 1): "O", ("var", 2): "I"})
        merged = merge_psecs(a, b)
        assert merged.classification_of(("var", 1)) == frozenset("IO")
        assert merged.classification_of(("var", 2)) == frozenset("I")

    def test_cloneable_plus_transfer_is_transfer(self):
        """The §4.2 exception: C in one run, T in another -> T."""
        a = self._mk({("var", 1): "CO"})
        b = self._mk({("var", 1): "TO"})
        merged = merge_psecs(a, b)
        letters = merged.classification_of(("var", 1))
        assert "T" in letters
        assert "C" not in letters

    def test_merge_is_commutative(self):
        a = self._mk({("var", 1): "CO", ("var", 2): "I"})
        b = self._mk({("var", 1): "TO", ("var", 3): "O"})
        left = merge_psecs(a, b)
        right = merge_psecs(b, a)
        for key in (("var", 1), ("var", 2), ("var", 3)):
            assert left.classification_of(key) == right.classification_of(key)

    def test_merge_requires_same_roi(self):
        with pytest.raises(RuntimeToolError):
            merge_psecs(Psec(0), Psec(1))

    def test_merge_accumulates_invocations(self):
        a = Psec(3)
        a.invocations = 5
        b = Psec(3)
        b.invocations = 7
        assert merge_psecs(a, b).invocations == 12


@given(
    st.dictionaries(
        st.integers(0, 5),
        st.sampled_from(["I", "O", "IO", "CO", "TO", "CIO", "TIO"]),
        max_size=5,
    ),
    st.dictionaries(
        st.integers(0, 5),
        st.sampled_from(["I", "O", "IO", "CO", "TO", "CIO", "TIO"]),
        max_size=5,
    ),
)
def test_merge_never_violates_c_t_exclusion(states_a, states_b):
    a = Psec(0)
    for uid, letters in states_a.items():
        a.force_classification(("var", uid), None, letters, 0)
    b = Psec(0)
    for uid, letters in states_b.items():
        b.force_classification(("var", uid), None, letters, 0)
    merged = merge_psecs(a, b)
    merged.check_invariants()
    # Union semantics (modulo the C/T rule).
    for uid in set(states_a) | set(states_b):
        key = ("var", uid)
        expected = set(states_a.get(uid, "")) | set(states_b.get(uid, ""))
        if "T" in expected:
            expected.discard("C")
        assert merged.classification_of(key) == frozenset(expected)
