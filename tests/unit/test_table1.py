"""Table 1: which PSEC components each abstraction needs — regenerated from
the code and checked cell by cell against the paper."""

from repro.abstractions import ABSTRACTION_REQUIREMENTS
from repro.harness import table1
from repro.runtime.config import NAIVE_POLICIES, POLICIES


class TestTable1Cells:
    def test_omp_parallel_for_row(self):
        req = ABSTRACTION_REQUIREMENTS["omp_parallel_for"]
        assert (req.sets, req.use_callstacks, req.reachability_graph) == (
            True, True, False
        )

    def test_omp_task_row(self):
        req = ABSTRACTION_REQUIREMENTS["omp_task"]
        assert (req.sets, req.use_callstacks, req.reachability_graph) == (
            True, False, False
        )

    def test_smart_pointers_row(self):
        req = ABSTRACTION_REQUIREMENTS["smart_pointers"]
        assert (req.sets, req.use_callstacks, req.reachability_graph) == (
            True, False, True
        )

    def test_stats_row(self):
        req = ABSTRACTION_REQUIREMENTS["stats"]
        assert (req.sets, req.use_callstacks, req.reachability_graph) == (
            True, False, False
        )

    def test_exactly_four_abstractions(self):
        assert len(ABSTRACTION_REQUIREMENTS) == 4


class TestPoliciesFollowTable1:
    def test_only_parallel_for_tracks_use_callstacks(self):
        for name, policy in POLICIES.items():
            expected = name == "parallel_for"
            assert policy.track_use_callstacks == expected, name

    def test_only_smart_pointers_tracks_reachability(self):
        for name, policy in POLICIES.items():
            expected = name == "smart_pointers"
            assert policy.track_reachability == expected, name

    def test_carmot_smart_pointer_shortcut(self):
        """§5.2: CARMOT derives the smart-pointer Sets from allocations and
        escapes, so its policy skips per-access tracking — the naive
        (Table-1-literal) policy does not."""
        assert not POLICIES["smart_pointers"].track_sets
        assert NAIVE_POLICIES["smart_pointers"].track_sets


def test_table_renders():
    text = table1()
    assert "omp_parallel_for" in text
    assert "reachability" in text
