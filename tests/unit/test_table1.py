"""Table 1: which PSEC components each abstraction needs — regenerated from
the recommender registry and checked cell by cell against the paper."""

import pytest

from repro.abstractions import ABSTRACTION_REQUIREMENTS
from repro.harness import table1
from repro.recommend import table1_requirements
from repro.runtime.config import NAIVE_POLICIES, POLICIES

#: The paper's Table 1, verbatim: abstraction -> (Sets, Use callstacks,
#: Reachability graph).
PAPER_TABLE1 = {
    "omp_parallel_for": (True, True, False),
    "omp_task": (True, False, False),
    "smart_pointers": (True, False, True),
    "stats": (True, False, False),
}


class TestTable1Cells:
    @pytest.mark.parametrize("paper_name", sorted(PAPER_TABLE1))
    def test_row_matches_paper(self, paper_name):
        req = table1_requirements()[paper_name]
        assert (req.sets, req.use_callstacks, req.reachability_graph) == \
            PAPER_TABLE1[paper_name]

    def test_exactly_the_paper_rows(self):
        """Role-driven recommenders carry no ``paper_name`` and must not
        leak into the regenerated table."""
        assert set(table1_requirements()) == set(PAPER_TABLE1)

    def test_registry_backs_the_legacy_constant(self):
        """``ABSTRACTION_REQUIREMENTS`` is now a registry view — same
        rows, same cells, resolved through the recommender declarations."""
        assert ABSTRACTION_REQUIREMENTS == table1_requirements()


class TestPoliciesFollowTable1:
    def test_only_parallel_for_tracks_use_callstacks(self):
        for name, policy in POLICIES.items():
            expected = name == "parallel_for"
            assert policy.track_use_callstacks == expected, name

    def test_only_smart_pointers_tracks_reachability(self):
        for name, policy in POLICIES.items():
            expected = name == "smart_pointers"
            assert policy.track_reachability == expected, name

    def test_carmot_smart_pointer_shortcut(self):
        """§5.2: CARMOT derives the smart-pointer Sets from allocations and
        escapes, so its policy skips per-access tracking — the naive
        (Table-1-literal) policy does not."""
        assert not POLICIES["smart_pointers"].track_sets
        assert NAIVE_POLICIES["smart_pointers"].track_sets


def test_table_renders():
    text = table1()
    assert "omp_parallel_for" in text
    assert "reachability" in text
