"""Unit tests for the register-bytecode layer: codegen layout, constant
interning, artifact round-trips, and the dispatch loop's observable
contract (budgets, traps, tracing) against the tree-walk oracle."""

import io
import json
from pathlib import Path

import pytest

from repro.compiler import compile_baseline, compile_carmot
from repro.errors import BudgetExceeded, TrapError, VMError
from repro.resilience.budgets import ExecutionBudgets
from repro.vm.bytecode import (
    OP_PHI,
    OPCODE_NAMES,
    QUICKENED_OPCODES,
    BytecodeSerializeError,
    bytecode_digest,
    dequicken_module,
    deserialize_bytecode,
    disassemble,
    fused_site_counts,
    instr_width,
    quickened_op_count,
    serialize_bytecode,
)
from repro.vm.codegen import lower_module
from repro.vm.interpreter import run_module

REPO = Path(__file__).resolve().parents[2]

SCALAR = """
int main() {
    int x = 6;
    float y = 2.5;
    int i = 0;
    int acc = 0;
    while (i < 10) {
        acc = acc + x * i;
        i = i + 1;
    }
    print_int(acc);
    return acc % 100;
}
"""


def _example(name):
    return (REPO / "examples" / f"{name}.mc").read_text()


# -- codegen layout -----------------------------------------------------------


class TestCodegenLayout:
    @pytest.mark.parametrize(
        "name", ["roi_loop", "stencil_calls", "anneal_stats"])
    def test_code_streams_decode_cleanly(self, name):
        """Walking every function by instr_width must land exactly on the
        end of the stream, visiting only known opcodes with sane operand
        indices — the structural invariant every other test builds on."""
        program = compile_carmot(_example(name), name=name)
        bc = lower_module(program.module)
        for fn in bc.functions.values():
            pc = 0
            code = fn.code
            while pc < len(code):
                op = code[pc]
                assert op in OPCODE_NAMES, f"unknown opcode {op} at {pc}"
                width = instr_width(code, pc)
                assert width >= 1
                assert pc + width <= len(code)
                pc += width
            assert pc == len(code)
            assert fn.n_regs >= fn.arg_base + fn.n_args
            assert 0 <= fn.entry_pc <= len(code)

    def test_branch_targets_are_instruction_starts(self):
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        fn = bc.functions["main"]
        starts = set()
        pc = 0
        while pc < len(fn.code):
            starts.add(pc)
            pc += instr_width(fn.code, pc)
        pc = 0
        from repro.vm.bytecode import OP_BR, OP_JUMP
        while pc < len(fn.code):
            op = fn.code[pc]
            if op == OP_JUMP:
                assert fn.code[pc + 1] in starts
            elif op == OP_BR:
                assert fn.code[pc + 2] in starts
                assert fn.code[pc + 3] in starts
            elif op == OP_PHI:
                assert fn.code[pc + 2] in starts
            pc += instr_width(fn.code, pc)

    def test_constants_distinguish_int_from_float(self):
        """1 and 1.0 are different runtime values (int vs float registers)
        and must not collapse into one constant-pool slot."""
        source = """
        int main() {
            int a = 1;
            float b = 1.0;
            print_int(a);
            print_float(b);
            return 0;
        }
        """
        program = compile_baseline(source)
        bc = lower_module(program.module)
        consts = bc.functions["main"].consts
        values = [c[1] for c in consts if c[0] == "v"]
        # 1 == 1.0 in Python, so check by type, not membership.
        assert any(type(v) is int and v == 1 for v in values)
        assert any(type(v) is float and v == 1.0 for v in values)


# -- serialization ------------------------------------------------------------


class TestSerialization:
    def test_round_trip_is_byte_stable(self):
        program = compile_carmot(_example("roi_loop"), name="roi_loop")
        payload = serialize_bytecode(lower_module(program.module))
        restored = deserialize_bytecode(payload)
        again = serialize_bytecode(restored)
        assert payload == again
        assert bytecode_digest(restored) == \
            bytecode_digest(deserialize_bytecode(again))

    def test_deserialized_bytecode_runs_identically(self):
        program = compile_baseline(SCALAR)
        direct = lower_module(program.module)
        restored = deserialize_bytecode(serialize_bytecode(direct))
        restored.rebind_vars(program.module)
        a = run_module(program.module, bytecode=direct)
        b = run_module(program.module, bytecode=restored)
        assert (a.output, a.cost, a.instructions, a.access_counts) == \
            (b.output, b.cost, b.instructions, b.access_counts)

    def test_garbage_payload_is_a_serialize_error(self):
        for junk in ["not json", "[]", json.dumps({"format": "other"}),
                     json.dumps({"format": "repro-bytecode", "schema": 999})]:
            with pytest.raises(BytecodeSerializeError):
                deserialize_bytecode(junk)

    def test_truncated_document_is_a_serialize_error(self):
        program = compile_baseline(SCALAR)
        payload = serialize_bytecode(lower_module(program.module))
        doc = json.loads(payload)
        del doc["functions"]
        with pytest.raises(BytecodeSerializeError):
            deserialize_bytecode(json.dumps(doc))


# -- dispatch-loop contract ---------------------------------------------------


class TestDispatchContract:
    def test_budget_trips_at_the_same_virtual_step(self):
        program = compile_baseline(SCALAR)
        budgets = ExecutionBudgets(max_steps=25, max_heap_bytes=0,
                                   max_recursion_depth=64)
        outcomes = {}
        for vm in ("ir", "bytecode"):
            try:
                run_module(program.module, budgets=budgets, vm=vm)
                outcomes[vm] = None
            except BudgetExceeded as err:
                outcomes[vm] = str(err)
        assert outcomes["ir"] is not None
        assert outcomes["ir"] == outcomes["bytecode"]

    def test_trap_messages_match_the_tree_walk(self):
        source = """
        int main() {
            int d = 0;
            return 10 / d;
        }
        """
        program = compile_baseline(source)
        messages = {}
        for vm in ("ir", "bytecode"):
            with pytest.raises(TrapError) as excinfo:
                run_module(program.module, vm=vm)
            messages[vm] = str(excinfo.value)
        assert messages["ir"] == messages["bytecode"]
        assert "division by zero" in messages["ir"]

    def test_missing_entry_raises_vm_error(self):
        program = compile_baseline(SCALAR)
        with pytest.raises(VMError, match="no function named"):
            run_module(program.module, entry="nope", vm="bytecode")

    def test_unknown_vm_name_raises(self):
        program = compile_baseline(SCALAR)
        with pytest.raises(VMError, match="unknown vm"):
            run_module(program.module, vm="llvm")

    def test_trace_streams_one_line_per_dispatch(self):
        program = compile_baseline(SCALAR)
        stream = io.StringIO()
        run_module(program.module, vm="bytecode", trace_stream=stream)
        lines = stream.getvalue().splitlines()
        assert lines, "no trace emitted"
        assert all(line.startswith("trace: [") for line in lines)
        assert any("main+" in line for line in lines)

    def test_ir_walk_trace_names_blocks(self):
        program = compile_baseline(SCALAR)
        stream = io.StringIO()
        run_module(program.module, vm="ir", trace_stream=stream)
        lines = stream.getvalue().splitlines()
        assert lines and all(line.startswith("trace: [") for line in lines)
        assert any("main:" in line for line in lines)


# -- tier 2: superinstruction fusion and opcode quickening --------------------


class TestTier2:
    def test_cmp_branch_fuses_in_loop_head(self):
        """Non-vacuity for the fusion catalog: the compare feeding the
        while-head branch in SCALAR must fuse into one cmp+branch
        superinstruction, and the codegen stats must record it."""
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        counts = fused_site_counts(bc)
        assert counts["cmp_br"] >= 1
        assert counts["total"] == (counts["cmp_br"] + counts["load_bin"]
                                   + counts["bin_store"]
                                   + counts["probe_access"])
        assert bc.fusion_stats.get("cmp_br", 0) >= 1
        assert bc.pair_counts, "static pair-frequency evidence missing"

    def test_probe_access_fuses_on_instrumented_build(self):
        program = compile_carmot(_example("roi_loop"), name="roi_loop")
        bc = lower_module(program.module)
        assert fused_site_counts(bc)["probe_access"] >= 1

    def test_quickening_is_observationally_invisible(self):
        """Serialized payload and canonical disassembly are byte-identical
        before and after a run that quickened the execution stream."""
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        payload = serialize_bytecode(bc)
        listing = disassemble(bc)
        run_module(program.module, bytecode=bc, vm="bytecode")
        assert quickened_op_count(bc) > 0
        assert serialize_bytecode(bc) == payload
        assert disassemble(bc) == listing

    def test_quickened_opcodes_never_reach_the_canonical_stream(self):
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        run_module(program.module, bytecode=bc, vm="bytecode")
        for name in bc.function_order:
            fn = bc.functions[name]
            pc = 0
            while pc < len(fn.code):
                assert fn.code[pc] not in QUICKENED_OPCODES
                pc += instr_width(fn.code, pc)

    def test_dequicken_restores_canonical_execution_stream(self):
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        run_module(program.module, bytecode=bc, vm="bytecode")
        n = quickened_op_count(bc)
        assert n > 0
        assert dequicken_module(bc) == n
        assert bc.dequicken_count == n
        for name in bc.function_order:
            fn = bc.functions[name]
            assert fn.xcode == list(fn.code)
            assert not fn.xquick and fn.quickened is None
        assert not bc._quick_targets
        # A fresh run re-quickens from scratch and stays correct.
        a = run_module(program.module, bytecode=bc, vm="bytecode")
        b = run_module(program.module, vm="ir")
        assert (a.output, a.cost, a.instructions) == \
            (b.output, b.cost, b.instructions)

    def test_quicken_report_annotates_without_mutating_canonical(self):
        program = compile_baseline(SCALAR)
        bc = lower_module(program.module)
        run_module(program.module, bytecode=bc, vm="bytecode")
        report = disassemble(bc, quicken_report=True)
        assert "; quickened ->" in report
        stripped = "\n".join(line.split("  ; quickened ->")[0]
                             for line in report.splitlines())
        assert stripped == disassemble(bc)


# -- session artifact ---------------------------------------------------------


class TestBytecodeArtifact:
    def test_codegen_stage_stores_a_bytecode_kind(self, tmp_path):
        from repro.session import Session

        session = Session(cache_dir=str(tmp_path))
        session.profile(_example("roi_loop"), "carmot", name="roi_loop")
        kinds = session.store.stats().by_kind
        assert kinds.get("bytecode") == 1

    def test_corrupt_bytecode_artifact_recomputes(self, tmp_path):
        from repro.session import Session, codegen_key

        session = Session(cache_dir=str(tmp_path))
        cold = session.profile(_example("roi_loop"), "carmot",
                               name="roi_loop")
        compile_result = session.compile(
            _example("roi_loop"), "carmot", name="roi_loop")
        key = codegen_key(compile_result.ir_digest)
        entry = session.store._entry_path(key)
        doc = json.loads(entry.read_text())
        doc["payload"] = "garbage"
        import hashlib
        doc["payload_sha256"] = hashlib.sha256(b"garbage").hexdigest()
        entry.write_text(json.dumps(doc))
        warm = session.profile(_example("roi_loop"), "carmot",
                               name="roi_loop")
        assert warm.stages["codegen"] == "miss"
        assert warm.payload == cold.payload
