"""Tests for mem2reg (SSA construction) and the conventional optimizer."""

import pytest

from repro.compiler.driver import frontend
from repro.compiler.mem2reg import promotable_allocas, promote_allocas
from repro.compiler.o3 import optimize_module_o3
from repro.compiler.opts import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
)
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.verifier import verify_module
from repro.vm import run_module


def both_runs(source, entry="main", args=()):
    plain = frontend(source)
    optimized = frontend(source)
    optimize_module_o3(optimized)
    verify_module(optimized)
    r1 = run_module(plain, entry, args)
    r2 = run_module(optimized, entry, args)
    return r1, r2


SOURCES = [
    # straight-line arithmetic
    "int main() { int x = 3; int y = x * 2 + 1; print_int(y); return y; }",
    # branching with joins (needs phis)
    """
    int main() {
      int x = 0;
      for (int i = 0; i < 10; ++i) {
        if (i % 2 == 0) x += i; else x -= 1;
      }
      print_int(x);
      return x;
    }
    """,
    # nested loops and break
    """
    int main() {
      int total = 0;
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
          if (j > i) break;
          total += j;
        }
      }
      print_int(total);
      return total;
    }
    """,
    # calls and recursion
    """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { print_int(fib(12)); return 0; }
    """,
    # pointers pin allocas (address-taken must not be promoted)
    """
    void bump(int *p) { *p = *p + 1; }
    int main() { int x = 41; bump(&x); print_int(x); return x; }
    """,
    # arrays and heap
    """
    int main() {
      int *data = (int*) malloc(10 * sizeof(int));
      int sum = 0;
      for (int i = 0; i < 10; ++i) data[i] = i;
      for (int i = 0; i < 10; ++i) sum += data[i];
      free((char*) data);
      print_int(sum);
      return sum;
    }
    """,
    # floats and builtins
    """
    int main() {
      float acc = 0.0;
      for (int i = 1; i <= 5; ++i) acc += sqrt(float_of_int(i * i));
      print_float(acc);
      return 0;
    }
    """,
    # do-while and continue
    """
    int main() {
      int n = 0; int i = 0;
      do { i++; if (i == 3) continue; n += i; } while (i < 6);
      print_int(n);
      return n;
    }
    """,
]


class TestO3PreservesSemantics:
    @pytest.mark.parametrize("source", SOURCES)
    def test_same_output_and_result(self, source):
        plain, optimized = both_runs(source)
        assert plain.output == optimized.output
        assert plain.return_value == optimized.return_value

    @pytest.mark.parametrize("source", SOURCES)
    def test_optimized_is_cheaper(self, source):
        plain, optimized = both_runs(source)
        assert optimized.cost < plain.cost


class TestMem2Reg:
    def test_scalars_promoted(self):
        module = frontend(
            "int main() { int x = 1; int y = x + 2; return y; }"
        )
        fn = module.functions["main"]
        promote_allocas(fn)
        assert not any(isinstance(i, Alloca) for i in fn.entry.instrs)

    def test_address_taken_not_promotable(self):
        module = frontend(
            "int main() { int x = 1; int *p = &x; *p = 2; return x; }"
        )
        fn = module.functions["main"]
        names = {a.result.name for a in promotable_allocas(fn)}
        allocas = [i for i in fn.entry.instrs if isinstance(i, Alloca)]
        x_alloca = next(a for a in allocas if a.var and a.var.name == "x")
        assert x_alloca.result.name not in names

    def test_arrays_not_promotable(self):
        module = frontend("int main() { int a[4]; a[0] = 1; return a[0]; }")
        fn = module.functions["main"]
        assert all(a.var is None or a.var.name != "a"
                   for a in promotable_allocas(fn))

    def test_phi_inserted_at_join(self):
        module = frontend(
            """
            int pick(int c) {
              int x;
              if (c) x = 1; else x = 2;
              return x;
            }
            """
        )
        fn = module.functions["pick"]
        promote_allocas(fn)
        assert any(isinstance(i, Phi) for b in fn.blocks for i in b.instrs)

    def test_loop_carried_phi_value(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 5; ++i) s += i;
              return s;
            }
            """
        )
        fn = module.functions["main"]
        promote_allocas(fn)
        verify_module(module)
        assert run_module(module).return_value == 10

    def test_selective_promotion_keeps_other_slots(self):
        module = frontend(
            "int main() { int keep = 1; int go = 2; return keep + go; }"
        )
        fn = module.functions["main"]
        allocas = [i for i in fn.entry.instrs if isinstance(i, Alloca)]
        go = [a for a in allocas if a.var and a.var.name == "go"]
        promote_allocas(fn, go)
        remaining = [i for i in fn.entry.instrs if isinstance(i, Alloca)]
        assert any(a.var and a.var.name == "keep" for a in remaining)
        assert not any(a.var and a.var.name == "go" for a in remaining)
        assert run_module(module).return_value == 3


class TestScalarOpts:
    def test_constant_folding(self):
        module = frontend("int main() { return 2 * 3 + 4; }")
        fn = module.functions["main"]
        promote_allocas(fn)
        assert fold_constants(fn) > 0
        assert run_module(module).return_value == 10

    def test_dce_removes_unused(self):
        module = frontend(
            "int main() { int dead = 5 * 5; return 1; }"
        )
        fn = module.functions["main"]
        promote_allocas(fn)
        optimize_function(fn)
        loads = [i for b in fn.blocks for i in b.instrs
                 if isinstance(i, (Load, Store))]
        assert loads == []

    def test_identity_simplification(self):
        module = frontend(
            "int f(int x) { return x + 0 + (x * 1) - x; }"
        )
        fn = module.functions["f"]
        promote_allocas(fn)
        optimize_function(fn)
        assert run_module(module, "f", (7,)).return_value == 7

    def test_constant_branch_folding(self):
        module = frontend(
            "int main() { if (1) return 5; return 6; }"
        )
        fn = module.functions["main"]
        optimize_function(fn)
        assert run_module(module).return_value == 5
