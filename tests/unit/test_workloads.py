"""Unit tests for the workload registry and source generation."""

import pytest

from repro.compiler import frontend
from repro.errors import WorkloadError
from repro.workloads import (
    ALL_WORKLOADS,
    USE_CASES,
    figure6_workloads,
    workload,
    workload_names,
)


class TestRegistry:
    def test_fifteen_benchmarks(self):
        assert len(ALL_WORKLOADS) == 15

    def test_suite_composition(self):
        suites = {}
        for w in ALL_WORKLOADS:
            suites.setdefault(w.suite, []).append(w.name)
        assert sorted(suites["PARSEC"]) == ["blackscholes", "canneal",
                                            "swaptions"]
        assert sorted(suites["NAS"]) == ["bt", "cg", "ep", "ft", "is", "lu",
                                         "mg", "sp"]
        assert sorted(suites["SPEC"]) == ["imagick", "lbm", "nab", "xz"]

    def test_lookup_by_name(self):
        assert workload("cg").name == "cg"

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            workload("linpack")

    def test_names_are_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_unsupported_original_flags(self):
        flagged = {w.name for w in ALL_WORKLOADS if w.unsupported_original}
        assert flagged == {"ep", "nab"}

    def test_pthreads_style_originals(self):
        sections = {w.name for w in ALL_WORKLOADS
                    if w.original_kind == "sections"}
        assert {"canneal", "swaptions", "ep", "nab"} == sections

    def test_figure6_selection(self):
        assert figure6_workloads()


class TestSourceGeneration:
    @pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda w: w.name)
    @pytest.mark.parametrize("use_case", USE_CASES)
    def test_every_variant_compiles(self, wl, use_case):
        module = frontend(wl.test_source(use_case), wl.name)
        assert "main" in module.functions

    @pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_openmp_variant_has_carmot_roi(self, wl):
        module = frontend(wl.test_source("openmp"), wl.name)
        assert module.rois, wl.name

    @pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_cycles_variant_rois_are_whole_program(self, wl):
        module = frontend(wl.test_source("cycles"), wl.name)
        abstractions = {roi.abstraction for roi in module.rois.values()}
        assert abstractions == {"smart_pointers"}

    @pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_stats_variant_rois(self, wl):
        module = frontend(wl.test_source("stats"), wl.name)
        abstractions = {roi.abstraction for roi in module.rois.values()}
        assert abstractions == {"stats"}

    def test_ref_params_scale_up(self):
        for wl in ALL_WORKLOADS:
            assert wl.ref_params != wl.test_params

    def test_bad_use_case_rejected(self):
        with pytest.raises(WorkloadError):
            workload("cg").source(None, use_case="gpu")

    def test_original_omp_annotations_present(self):
        module = frontend(workload("cg").test_source("openmp"), "cg")
        assert module.omp_loops
