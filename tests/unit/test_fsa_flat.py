"""Flat FSA transition-table properties backing the packed hot path.

The packed fold walks ``FLAT_TRANSITIONS`` directly instead of the enum
table, and capture-side run merging collapses repeated identical accesses
into one row replayed with a single non-fresh step.  These tests pin the
two representations together and prove (exhaustively — the table is tiny)
the algebraic properties that make run merging exact:

1. one non-fresh step reaches a fixpoint of the table, so *k* merged
   repeats need exactly one extra step, for any *k*;
2. non-fresh runs are confluent: the final state depends only on the
   multiset of events, not their order, so same-key anchors may replay
   their repeats early.
"""

from itertools import permutations

import pytest

from repro.errors import RuntimeToolError
from repro.runtime import fsa


class TestFlatTableMatchesEnumTable:
    def test_every_state_event_pair_agrees(self):
        for s_code, state in enumerate(fsa.STATES):
            for event, e_code in fsa.EVENT_CODES.items():
                flat = fsa.FLAT_TRANSITIONS[s_code * fsa.N_EVENTS + e_code]
                target = fsa.TRANSITIONS.get((state, event))
                if target is None:
                    assert flat == -1
                    with pytest.raises(RuntimeToolError):
                        fsa.step_code(s_code, e_code)
                else:
                    assert flat == fsa.STATE_CODES[target]
                    assert fsa.step_code(s_code, e_code) == flat

    def test_only_eps_nonfresh_is_invalid(self):
        invalid = [
            (s, e)
            for s in range(len(fsa.STATES))
            for e in range(fsa.N_EVENTS)
            if fsa.FLAT_TRANSITIONS[s * fsa.N_EVENTS + e] < 0
        ]
        assert invalid == [(0, fsa.RN), (0, fsa.WN)]

    def test_event_code_arithmetic_matches_enum(self):
        # The hot path computes the code as kind + 2*not-fresh.
        assert (fsa.RF, fsa.WF) == (0, 1)
        assert (fsa.RN, fsa.WN) == (fsa.RF + 2, fsa.WF + 2)


def _walk(state_code, events):
    for event_code in events:
        state_code = fsa.FLAT_TRANSITIONS[
            state_code * fsa.N_EVENTS + event_code
        ]
        assert state_code >= 0
    return state_code


class TestRunMergingProperties:
    def test_one_nonfresh_step_is_a_fixpoint(self):
        """flat[flat[s, e], e] == flat[s, e] for non-fresh e: merged
        repeats beyond the first add nothing to the state."""
        for s in range(len(fsa.STATES)):
            for e in (fsa.RN, fsa.WN):
                nxt = fsa.FLAT_TRANSITIONS[s * fsa.N_EVENTS + e]
                if nxt < 0:
                    continue
                assert fsa.FLAT_TRANSITIONS[nxt * fsa.N_EVENTS + e] == nxt

    def test_nonfresh_runs_are_confluent(self):
        """Any interleaving of a non-fresh read/write multiset ends in the
        same state, so replaying an anchor's repeats before later
        same-invocation accesses of the same PSE is order-exact."""
        for s in range(1, len(fsa.STATES)):  # EPS has no non-fresh edges
            for reads in range(3):
                for writes in range(3):
                    events = (fsa.RN,) * reads + (fsa.WN,) * writes
                    finals = {
                        _walk(s, order)
                        for order in set(permutations(events))
                    }
                    assert len(finals) <= 1
