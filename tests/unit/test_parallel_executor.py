"""Unit tests for the simulated OpenMP executor (Figure 6 substrate)."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel import (
    ParallelMachine,
    program_speedup,
    simulate_parallel_for,
    simulate_sections,
)

MACHINE = ParallelMachine(threads=4, region_startup=10,
                          per_iteration_overhead=0,
                          reduction_merge_per_thread=1, critical_handoff=1)


class TestParallelFor:
    def test_perfectly_parallel_scales(self):
        iters = [100] * 16
        makespan = simulate_parallel_for(iters, machine=MACHINE)
        assert makespan == 4 * 100 + 10  # 16 iters over 4 threads

    def test_empty_loop(self):
        assert simulate_parallel_for([], machine=MACHINE) == 0

    def test_fully_serial_fraction(self):
        iters = [100] * 8
        makespan = simulate_parallel_for(iters, serial_fraction=1.0,
                                         machine=MACHINE)
        assert makespan >= sum(iters)  # no better than serial

    def test_serial_chain_bounds_makespan(self):
        iters = [100] * 16
        half = simulate_parallel_for(iters, serial_fraction=0.5,
                                     ordered=True, machine=MACHINE)
        none = simulate_parallel_for(iters, machine=MACHINE)
        assert half > none
        assert half >= 16 * 50  # the serialized halves chain up

    def test_marker_measured_serial_costs(self):
        iters = [100, 100, 100, 100]
        serial = [100, 0, 0, 0]
        makespan = simulate_parallel_for(iters, serial_costs=serial,
                                         machine=MACHINE)
        assert makespan >= 100

    def test_reduction_adds_merge_cost(self):
        iters = [50] * 8
        plain = simulate_parallel_for(iters, machine=MACHINE)
        with_red = simulate_parallel_for(iters, has_reduction=True,
                                         machine=MACHINE)
        assert with_red == plain + 4  # merge_per_thread * threads

    def test_single_thread_machine_is_serial(self):
        one = ParallelMachine(threads=1, region_startup=0,
                              per_iteration_overhead=0)
        iters = [10, 20, 30]
        assert simulate_parallel_for(iters, machine=one) == 60

    def test_never_faster_than_width(self):
        iters = [100] * 64
        makespan = simulate_parallel_for(iters, machine=MACHINE)
        assert sum(iters) / makespan <= 4.0


class TestSections:
    def test_sections_spread_over_threads(self):
        makespan = simulate_sections([100, 100, 100, 100], machine=MACHINE)
        assert makespan == 100 + 10

    def test_more_sections_than_threads_queue(self):
        makespan = simulate_sections([100] * 8, machine=MACHINE)
        assert makespan == 200 + 10

    def test_imbalanced_sections(self):
        makespan = simulate_sections([400, 10, 10, 10], machine=MACHINE)
        assert makespan == 400 + 10

    def test_serial_extra_added(self):
        base = simulate_sections([50, 50], machine=MACHINE)
        assert simulate_sections([50, 50], serial_extra=30,
                                 machine=MACHINE) == base + 30

    def test_empty_sections(self):
        assert simulate_sections([], serial_extra=5, machine=MACHINE) == 15


class TestProgramSpeedup:
    def test_no_regions_no_speedup(self):
        assert program_speedup(1000, []) == 1.0

    def test_amdahl_shape(self):
        # Half the program parallelized 10x -> ~1.8x overall.
        speedup = program_speedup(
            1000, [{"serial": 500, "parallel": 50}]
        )
        assert speedup == pytest.approx(1000 / 550)

    def test_multiple_regions(self):
        speedup = program_speedup(
            1000,
            [{"serial": 400, "parallel": 40},
             {"serial": 400, "parallel": 40}],
        )
        assert speedup == pytest.approx(1000 / 280)

    def test_zero_total(self):
        assert program_speedup(0, [{"serial": 1, "parallel": 1}]) == 1.0


@given(
    st.lists(st.integers(1, 500), min_size=1, max_size=40),
    st.floats(0.0, 1.0),
)
def test_makespan_bounded_by_serial_and_width(iters, fraction):
    machine = ParallelMachine(threads=8, region_startup=0,
                              per_iteration_overhead=0,
                              reduction_merge_per_thread=0,
                              critical_handoff=0)
    makespan = simulate_parallel_for(iters, serial_fraction=fraction,
                                     machine=machine)
    total = sum(iters)
    assert makespan <= total + len(iters)  # never worse than serial (+eps)
    assert makespan >= total / 8  # never better than the machine width
