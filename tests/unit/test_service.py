"""Unit tests for the transport-agnostic service layer.

Covers the typed request surface (:mod:`repro.service.requests`), the
response envelope and digest contract (:mod:`repro.service.core`), the
wire framing (:mod:`repro.service.wire`), and the render layer
(:mod:`repro.service.format`).
"""

import io
import json
import socket

import pytest

from repro._version import SERVICE_SCHEMA_VERSION
from repro.errors import ReproError
from repro.service import (
    DisRequest,
    IrRequest,
    PsecRequest,
    RecommendRequest,
    RenderOptions,
    RunOptions,
    ServiceCore,
    error_response,
    parse_request_doc,
    render_response,
    response_digest,
)
from repro.service.wire import (
    MAX_FRAME_BYTES,
    WireError,
    encode_frame,
    read_frame_sync,
    write_frame_sync,
)

ROI_SOURCE = """
int main() {
    int a[4];
    int sum;
    sum = 0;
    #pragma carmot roi abstraction(parallel_for)
    {
        for (int i = 0; i < 4; ++i) {
            a[i] = i * 2;
            sum = sum + a[i];
        }
    }
    print_int(sum);
    return 0;
}
"""


class TestRunOptions:
    def test_defaults_round_trip_empty(self):
        options = RunOptions()
        assert options.to_doc() == {}
        assert RunOptions.from_doc({}) == options

    def test_non_defaults_round_trip(self):
        options = RunOptions(abstraction="task", vm="ir", no_cache=True,
                             budget="retries=1,degrade=1")
        doc = options.to_doc()
        assert doc == {"abstraction": "task", "vm": "ir", "no_cache": True,
                       "budget": "retries=1,degrade=1"}
        assert RunOptions.from_doc(doc) == options

    def test_unknown_option_rejected(self):
        with pytest.raises(ReproError, match="unknown run option"):
            RunOptions.from_doc({"warp_speed": 9})

    @pytest.mark.parametrize("kwargs", [
        {"vm": "jit"},
        {"prescreen": "yes"},
        {"drain": "boats"},
        {"event_encoding": "protobuf"},
    ])
    def test_bad_enum_values_rejected(self, kwargs):
        with pytest.raises(ReproError):
            RunOptions(**kwargs)

    def test_drain_implies_packed_encoding(self):
        kwargs = RunOptions(drain="threads").run_kwargs()
        assert kwargs["event_encoding"] == "packed"
        with pytest.raises(ReproError, match="cannot combine"):
            RunOptions(drain="procs", event_encoding="object").run_kwargs()

    def test_uninstrumented_pipeline_rejected(self):
        with pytest.raises(ReproError, match="no instrumenter"):
            RunOptions(passes="selective-mem2reg").profiling_pipeline()

    def test_session_enabled(self):
        assert RunOptions().session_enabled
        assert not RunOptions(no_cache=True).session_enabled
        assert not RunOptions(print_pass_stats=True).session_enabled
        assert not RunOptions(trace=True).session_enabled


class TestRequestDocs:
    def test_round_trip_all_kinds(self):
        requests = [
            RecommendRequest(source="int main(){return 0;}", name="p"),
            PsecRequest(source="s", name="p",
                        options=RunOptions(vm="ir")),
            IrRequest(source="s", mode="carmot"),
            DisRequest(source="s", quicken_report=True),
        ]
        for request in requests:
            doc = json.loads(json.dumps(request.to_doc()))
            assert parse_request_doc(doc) == request

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown request kind"):
            parse_request_doc({"kind": "transmogrify", "source": "s"})

    def test_source_must_be_text(self):
        with pytest.raises(ReproError, match="source"):
            parse_request_doc({"kind": "psec", "source": 42})

    def test_bad_ir_mode_rejected(self):
        with pytest.raises(ReproError, match="ir mode"):
            parse_request_doc({"kind": "ir", "source": "s",
                               "mode": "quantum"})

    def test_bad_dis_mode_rejected(self):
        with pytest.raises(ReproError, match="dis mode"):
            parse_request_doc({"kind": "dis", "source": "s",
                               "mode": "plain"})


class TestServiceCore:
    def test_psec_envelope_shape(self, tmp_path):
        core = ServiceCore(cache_dir=str(tmp_path / "cache"))
        doc = core.execute(PsecRequest(source=ROI_SOURCE, name="unit"))
        assert doc["ok"] is True
        assert doc["kind"] == "psec"
        assert doc["service_schema"] == SERVICE_SCHEMA_VERSION
        assert doc["body"]["sets_digest"]
        (roi,) = doc["body"]["rois"]
        assert list(roi["sets"]) == ["input", "output", "cloneable",
                                     "transfer"]
        assert doc["meta"]["stages"] == {
            "frontend": "miss", "pipeline": "miss",
            "codegen": "miss", "profile": "miss",
        }

    def test_digest_ignores_meta_and_stays_stable(self, tmp_path):
        core = ServiceCore(cache_dir=str(tmp_path / "cache"))
        request = PsecRequest(source=ROI_SOURCE, name="unit")
        cold = core.execute(request)
        warm = core.execute(request)
        assert cold["meta"]["stages"] != warm["meta"]["stages"]
        assert response_digest(cold) == response_digest(warm)
        # The digest is over kind+body only: responses that differ in
        # kind must differ in digest even with equal bodies.
        assert response_digest({"kind": "a", "body": {}}) \
            != response_digest({"kind": "b", "body": {}})

    def test_execute_doc_wraps_toolchain_errors(self, tmp_path):
        core = ServiceCore(cache_dir=str(tmp_path / "cache"))
        doc = core.execute_doc({"kind": "psec", "source": "int main( {",
                                "name": "broken"})
        assert doc["ok"] is False
        assert doc["kind"] == "psec"
        assert doc["error"]["type"] == "error"
        assert doc["body"] is None

    def test_execute_doc_wraps_request_errors(self, tmp_path):
        core = ServiceCore(cache_dir=str(tmp_path / "cache"))
        doc = core.execute_doc({"kind": "nope", "source": "s"})
        assert doc["ok"] is False
        assert "unknown request kind" in doc["error"]["message"]

    def test_namespaced_cores_do_not_share_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        request = PsecRequest(source=ROI_SOURCE, name="unit")
        first = ServiceCore(cache_dir=cache, namespace="a").execute(request)
        other = ServiceCore(cache_dir=cache, namespace="b").execute(request)
        same = ServiceCore(cache_dir=cache, namespace="a").execute(request)
        assert first["meta"]["stages"]["profile"] == "miss"
        assert other["meta"]["stages"]["profile"] == "miss"
        assert same["meta"]["stages"]["profile"] == "hit"
        assert response_digest(first) == response_digest(other) \
            == response_digest(same)


class TestRenderers:
    def test_error_envelope_renders_cli_error_line(self):
        doc = error_response("psec", "error", "boom")
        rendered = render_response(doc, RenderOptions())
        assert rendered.err == "error: boom\n"
        assert rendered.exit_code == 1

    def test_overloaded_renders_exit_2(self):
        doc = error_response("psec", "overloaded", "queue full")
        rendered = render_response(doc, RenderOptions())
        assert "server overloaded" in rendered.err
        assert rendered.exit_code == 2

    def test_renderers_never_print_directly(self, tmp_path, capsys):
        core = ServiceCore(cache_dir=str(tmp_path / "cache"))
        doc = core.execute(PsecRequest(source=ROI_SOURCE, name="unit"))
        rendered = render_response(doc, RenderOptions())
        assert capsys.readouterr() == ("", "")
        assert "ROI" in rendered.out


class TestWire:
    def test_frame_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            doc = {"kind": "ping", "payload": ["x"] * 10}
            write_frame_sync(left, doc)
            assert read_frame_sync(right) == doc
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_frame_sync(right) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"kind": "ping"})
            left.sendall(frame[:-3])
            left.close()
            with pytest.raises(WireError, match="mid-frame"):
                read_frame_sync(right)
        finally:
            right.close()

    def test_oversized_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(WireError, match="bound"):
                read_frame_sync(right)
        finally:
            left.close()
            right.close()

    def test_key_order_preserved(self):
        """Wire framing must not reorder keys: the psec ``sets`` mapping
        carries the canonical set order the renderers print."""
        doc = {"sets": {"input": [], "output": [], "cloneable": [],
                        "transfer": []}}
        decoded = json.loads(encode_frame(doc)[4:].decode())
        assert list(decoded["sets"]) == ["input", "output", "cloneable",
                                        "transfer"]
