"""Unit tests for MiniC semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.lang import types as ct
from repro.lang.parser import parse
from repro.lang.sema import SymbolKind, analyze


def check(source):
    return analyze(parse(source))


class TestSymbolResolution:
    def test_local_resolution(self):
        result = check("void f() { int x; x = 1; }")
        info = result.functions["f"]
        assert info.locals[0].name == "x"
        assert info.locals[0].kind is SymbolKind.LOCAL

    def test_param_resolution(self):
        result = check("int f(int a) { return a; }")
        assert result.functions["f"].params[0].kind is SymbolKind.PARAM

    def test_global_resolution(self):
        result = check("int g;\nvoid f() { g = 2; }")
        assert result.globals["g"].kind is SymbolKind.GLOBAL

    def test_shadowing_in_nested_scope(self):
        check("void f() { int x; { int x; x = 1; } x = 2; }")

    def test_undeclared_name(self):
        with pytest.raises(SemanticError):
            check("void f() { y = 1; }")

    def test_redefinition_same_scope(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; int x; }")

    def test_builtins_visible(self):
        check("void f() { char *p; p = malloc(8); free(p); }")

    def test_function_symbols(self):
        result = check("int g(int x) { return x; }\nvoid f() { g(1); }")
        assert result.functions["g"].symbol.kind is SymbolKind.FUNCTION


class TestTypeChecking:
    def test_arith_promotion(self):
        check("void f() { float y; int x; y = x + 1.5; }")

    def test_pointer_arith(self):
        check("void f(int *p) { int *q; q = p + 3; }")

    def test_pointer_difference(self):
        check("int f(int *p, int *q) { return p - q; }")

    def test_array_index(self):
        check("void f() { int a[4]; a[0] = 1; }")

    def test_struct_member(self):
        check("struct s { int v; };\nvoid f() { struct s x; x.v = 1; }")

    def test_arrow_member(self):
        check(
            "struct s { int v; };\n"
            "void f(struct s *p) { p->v = 1; }"
        )

    def test_missing_struct_field(self):
        with pytest.raises(SemanticError):
            check("struct s { int v; };\nvoid f(struct s *p) { p->w = 1; }")

    def test_return_type_mismatch(self):
        with pytest.raises(SemanticError):
            check("struct s { int v; };\nint f(struct s x) { return x; }")

    def test_void_return_with_value(self):
        with pytest.raises(SemanticError):
            check("void f() { return 3; }")

    def test_call_arity(self):
        with pytest.raises(SemanticError):
            check("int g(int x) { return x; }\nvoid f() { g(); }")

    def test_call_arg_type(self):
        with pytest.raises(SemanticError):
            check(
                "struct s { int v; };\n"
                "int g(int x) { return x; }\n"
                "void f(struct s y) { g(y); }"
            )

    def test_call_non_function(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; x(1); }")

    def test_deref_non_pointer(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; *x = 1; }")

    def test_index_non_pointer(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; x[0] = 1; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(SemanticError):
            check("void f() { 1 = 2; }")

    def test_assign_to_array(self):
        with pytest.raises(SemanticError):
            check("void f(int *p) { int a[3]; a = p; }")

    def test_modulo_requires_integers(self):
        with pytest.raises(SemanticError):
            check("void f() { float x; int y; y = x % 2; }")

    def test_null_assigns_to_pointer(self):
        check("void f() { int *p; p = NULL; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            check("void f() { break; }")

    def test_continue_inside_loop_ok(self):
        check("void f() { while (1) { continue; } }")

    def test_void_variable_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { void x; }")

    def test_global_initializer_must_be_literal(self):
        with pytest.raises(SemanticError):
            check("int g = 1 + 2;")

    def test_function_pointer_call(self):
        check(
            "int inc(int x) { return x + 1; }\n"
            "int apply(int (*)(int) fp, int v);\n"
        ) if False else None
        # MiniC spells function pointers through address-of + variables of
        # function type are not declarable; calls through expressions of
        # pointer-to-function type are checked via builtins instead.

    def test_expression_ctype_filled(self):
        result = check("int f(int a) { return a + 2; }")
        ret = result.functions["f"].definition.body.stmts[0]
        assert ret.value.ctype == ct.INT

    def test_ternary_types(self):
        check("int f(int a, int b) { return a < b ? a : b; }")

    def test_ternary_mismatch(self):
        with pytest.raises(SemanticError):
            check(
                "struct s { int v; };\n"
                "int f(struct s x, int b) { return b ? x : b; }"
            )
