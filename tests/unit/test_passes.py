"""Unit tests for the pass-manager layer (registry, caching, invalidation,
per-pass observability)."""

import pytest

from repro.compiler import carmot_pass_names, CarmotOptions
from repro.compiler.driver import frontend
from repro.passes import (
    AnalysisManager,
    Pass,
    PassManager,
    PipelineContext,
    UnknownPassError,
    create_pass,
    parse_pipeline,
    registered_alias_names,
    registered_pass_names,
)

SOURCE = """
int work(int n) {
  int i, sum;
  sum = 0;
  for (i = 0; i < n; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    { sum = sum + i; }
  }
  return sum;
}
int main() { print_int(work(10)); return 0; }
"""


@pytest.fixture()
def module():
    return frontend(SOURCE, "passes_test")


# ---------------------------------------------------------------------------
# Registry + pipeline parsing
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_carmot_passes_registered(self):
        names = registered_pass_names()
        for expected in ("callgraph-o3", "selective-mem2reg",
                         "fixed-classification", "aggregation",
                         "subsequent-accesses", "pin-reduction",
                         "out-of-roi-suppression", "instrument",
                         "naive-instrument", "o3", "mem2reg", "cleanup"):
            assert expected in names

    def test_aliases_registered(self):
        assert {"carmot", "naive", "baseline"} <= set(
            registered_alias_names()
        )

    def test_create_unknown_pass_lists_registered_names(self):
        with pytest.raises(UnknownPassError) as exc:
            create_pass("does-not-exist")
        message = str(exc.value)
        assert "does-not-exist" in message
        assert "instrument" in message  # the error teaches the valid names
        assert "carmot" in message      # ... and the aliases

    def test_carmot_alias_matches_default_options(self):
        assert parse_pipeline("carmot") == carmot_pass_names(CarmotOptions())

    def test_parse_negation_removes_pass(self):
        names = parse_pipeline("carmot,-pin-reduction")
        assert "pin-reduction" not in names
        assert names == [n for n in parse_pipeline("carmot")
                         if n != "pin-reduction"]

    def test_parse_negation_of_unknown_pass_raises(self):
        with pytest.raises(UnknownPassError):
            parse_pipeline("carmot,-no-such-pass")

    def test_parse_unknown_token_raises(self):
        with pytest.raises(UnknownPassError, match="registered passes"):
            parse_pipeline("carmot,bogus")

    def test_parse_accepts_sequences(self):
        assert parse_pipeline(["o3"]) == ["o3"]

    def test_none_options_is_instrument_only(self):
        assert carmot_pass_names(CarmotOptions.none()) == ["instrument"]


# ---------------------------------------------------------------------------
# AnalysisManager caching + invalidation
# ---------------------------------------------------------------------------


class TestAnalysisCaching:
    def test_second_fetch_is_a_hit(self, module):
        am = AnalysisManager(module)
        first = am.get("points-to")
        assert (am.hits, am.misses) == (0, 1)
        assert am.get("points-to") is first
        assert (am.hits, am.misses) == (1, 1)

    def test_function_scope_keys_are_per_function(self, module):
        am = AnalysisManager(module)
        dom_work = am.get("dominators", module.functions["work"])
        dom_main = am.get("dominators", module.functions["main"])
        assert dom_work is not dom_main
        assert am.misses == 2 and am.hits == 0

    def test_nested_requests_are_cached(self, module):
        am = AnalysisManager(module)
        am.get("callgraph")  # computes points-to as a nested request
        am.get("points-to")
        assert am.hits == 1  # served from the nested computation

    def test_invalidate_single_analysis(self, module):
        am = AnalysisManager(module)
        points_to = am.get("points-to")
        callgraph = am.get("callgraph")
        am.invalidate("points-to")
        assert not am.cached("points-to")
        assert am.cached("callgraph")
        assert am.get("callgraph") is callgraph
        assert am.get("points-to") is not points_to

    def test_invalidate_all_with_preserve(self, module):
        am = AnalysisManager(module)
        regions = am.get("roi-regions")
        am.get("points-to")
        am.invalidate_all(preserve=("roi-regions",))
        assert am.cached("roi-regions")
        assert not am.cached("points-to")
        assert am.get("roi-regions") is regions

    def test_cfg_mutation_invalidates_dominators_and_loops(self):
        """fetch → CFG-mutating transform → fetch must return fresh
        results, not the pre-mutation trees."""
        module = frontend(
            """
            int main() {
              int x;
              x = 0;
              if (1) { x = x + 1; } else { x = x + 2; }
              print_int(x);
              return 0;
            }
            """,
            "cfg_test",
        )
        fn = module.functions["main"]
        am = AnalysisManager(module)
        dom_before = am.get("dominators", fn)
        loops_before = am.get("loops", fn)
        blocks_before = len(fn.blocks)

        pm = PassManager(["o3"])  # folds the constant branch, drops blocks
        pm.run(module, am)

        assert not am.cached("dominators", fn)
        assert not am.cached("loops", fn)
        dom_after = am.get("dominators", fn)
        loops_after = am.get("loops", fn)
        assert dom_after is not dom_before
        assert loops_after is not loops_before
        # The fresh dominator tree really describes the mutated CFG.
        assert len(fn.blocks) < blocks_before
        for block in fn.blocks:
            assert dom_after.dominates(fn.entry, block)

    def test_invalidate_function_drops_module_scope_too(self, module):
        work = module.functions["work"]
        main = module.functions["main"]
        am = AnalysisManager(module)
        am.get("dominators", work)
        dom_main = am.get("dominators", main)
        am.get("points-to")
        am.invalidate_function(work)
        assert not am.cached("dominators", work)
        assert not am.cached("points-to")  # module scope may embed `work`
        assert am.get("dominators", main) is dom_main


# ---------------------------------------------------------------------------
# PassManager behavior + observability
# ---------------------------------------------------------------------------


class _PlanOnly(Pass):
    name = "test-plan-only"

    def run(self, module, am, ctx):
        am.get("points-to")
        return False


class _MutatingNoChange(Pass):
    name = "test-mutating-unchanged"
    mutates_ir = True

    def run(self, module, am, ctx):
        return False  # declared mutating, but reports no change


class TestPassManager:
    def test_plan_only_pass_keeps_cache_warm(self, module):
        am = AnalysisManager(module)
        am.get("points-to")
        PassManager([_PlanOnly()]).run(module, am)
        assert am.cached("points-to")

    def test_unchanged_mutating_pass_keeps_cache(self, module):
        am = AnalysisManager(module)
        am.get("points-to")
        PassManager([_MutatingNoChange()]).run(module, am)
        assert am.cached("points-to")

    def test_report_attributes_requests_to_passes(self, module):
        am = AnalysisManager(module)
        report = PassManager([_PlanOnly(), _PlanOnly()]).run(module, am)
        first, second = report.runs
        assert (first.cache_misses, first.cache_hits) == (1, 0)
        assert (second.cache_misses, second.cache_hits) == (0, 1)
        assert first.analyses_used() == ["points-to"]
        assert report.hits_for_analysis("points-to") == 1
        assert report.analysis_summary()["points-to"] == (1, 1)

    def test_ir_delta_recorded(self, module):
        report = PassManager(["o3"]).run(module)
        stats = report.stats_for("o3")
        assert stats is not None
        assert stats.changed
        assert stats.instr_delta < 0  # -O3 shrinks this program

    def test_render_mentions_every_pass(self, module):
        report = PassManager(["mem2reg", "cleanup"]).run(module)
        text = report.render()
        assert "mem2reg" in text and "cleanup" in text
        assert "analysis cache" not in text  # no analyses were requested

    def test_carmot_pipeline_reuses_cached_analyses(self, module):
        ctx = PipelineContext(policy=_policy())
        report = PassManager(parse_pipeline("carmot"), ctx).run(module)
        assert report.total_hits >= 1
        assert report.hits_for_analysis("dominators") \
            + report.hits_for_analysis("points-to") >= 1


def _policy():
    from repro.runtime.config import policy_for

    return policy_for("parallel_for")
