"""Unit tests for the abstraction recommendation generators (§3.2)."""

import pytest

from repro.abstractions import recommend
from repro.compiler import compile_carmot
from repro.errors import RecommendationError


def run(source, abstraction=None):
    program = compile_carmot(source, abstraction, name="t")
    _, runtime = program.run()
    return program, runtime


class TestParallelFor:
    def test_reduction_detected_for_sum(self):
        _, rt = run(
            """
            float total(float *v, int n) {
              float acc = 0.0;
              for (int i = 0; i < 50; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                { acc += v[i]; }
              }
              return acc;
            }
            int main() {
              float data[50];
              for (int i = 0; i < 50; ++i) data[i] = 1.0;
              print_float(total(data, 50));
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert rec.reductions == [("+", "acc")]
        assert not rec.ordered

    def test_product_reduction(self):
        _, rt = run(
            """
            int main() {
              int fact = 1;
              for (int i = 1; i <= 8; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                { fact *= i; }
              }
              print_int(fact);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert rec.reductions == [("*", "fact")]

    def test_non_reducible_update_goes_ordered(self):
        _, rt = run(
            """
            int main() {
              int state = 7;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                { state = (state * 31 + i) % 1000; }
              }
              print_int(state);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert not rec.reductions
        assert [a.pse_name for a in rec.ordered] == ["state"]

    def test_mixed_operators_not_reducible(self):
        _, rt = run(
            """
            int main() {
              int acc = 0;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  if (i % 2 == 0) acc += i;
                  else acc *= 2;
                }
              }
              print_int(acc);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert not rec.reductions
        assert rec.ordered

    def test_firstprivate_for_read_then_overwritten(self):
        """A variable read from outside on the first iteration and then
        rewritten per iteration is Cloneable+Input -> firstprivate."""
        _, rt = run(
            """
            int main() {
              int seed = 5;
              int out = 0;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  if (i > 0) seed = i * 2;
                  out = seed + 1;
                }
              }
              print_int(out);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert "seed" in rec.firstprivate

    def test_lastprivate_for_value_read_after_loop(self):
        _, rt = run(
            """
            int main() {
              int last = 0;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                { last = i * 3; }
              }
              print_int(last);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert "last" in rec.lastprivate
        assert "last" in rec.private

    def test_clone_advice_for_heap_cloneable(self):
        _, rt = run(
            """
            int main() {
              int *scratch = (int*) malloc(8 * sizeof(int));
              int sum = 0;
              for (int i = 0; i < 10; ++i) {
                #pragma carmot roi abstraction(parallel_for)
                {
                  for (int k = 0; k < 8; ++k) scratch[k] = i + k;
                  sum += scratch[i % 8];
                }
              }
              print_int(sum);
              free((char*) scratch);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert rec.clones
        assert "omp_get_thread_num" in rec.clones[0].render()

    def test_rejects_non_loop_roi(self):
        _, rt = run(
            """
            int main() {
              int x = 0;
              #pragma carmot roi abstraction(parallel_for)
              { x = 1; }
              return x;
            }
            """
        )
        with pytest.raises(RecommendationError):
            recommend(rt, 0)


class TestTask:
    def test_depend_in_out(self):
        _, rt = run(
            """
            int src[8];
            int dst[8];
            int main() {
              for (int i = 0; i < 8; ++i) src[i] = i;
              for (int r = 0; r < 3; ++r) {
                #pragma carmot roi abstraction(task)
                {
                  for (int i = 0; i < 8; ++i) dst[i] = src[i] * 2;
                }
              }
              print_int(dst[7]);
              return 0;
            }
            """
        )
        rec = recommend(rt, 0)
        assert any(name.startswith("src") for name in rec.depend_in)
        assert any(name.startswith("dst") for name in rec.depend_out)
        assert "#pragma omp task" in rec.pragma_text()


class TestErrors:
    def test_unknown_roi(self):
        _, rt = run("int main() { return 0; }")
        with pytest.raises(RecommendationError):
            recommend(rt, 42)

    def test_roi_without_abstraction_needs_explicit_choice(self):
        _, rt = run(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 5; ++i) {
                #pragma carmot roi
                { s += i; }
              }
              return s;
            }
            """
        )
        with pytest.raises(RecommendationError):
            recommend(rt, 0)
        rec = recommend(rt, 0, abstraction="parallel_for")
        assert rec.reductions == [("+", "s")]
