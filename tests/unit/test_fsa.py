"""Unit and property tests for the PSE classification FSA (Figure 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RuntimeToolError
from repro.runtime.fsa import Event, State, TRANSITIONS, classify, force_states, step


class TestBasicTransitions:
    def test_first_read_gives_input(self):
        assert step(State.EPS, Event.RF) is State.I

    def test_first_write_gives_output(self):
        assert step(State.EPS, Event.WF) is State.O

    def test_paper_example_variable_y(self):
        """Figure 1's y: read, then written (inv 1), then read (inv 2)."""
        state = State.EPS
        state = step(state, Event.RF)   # first read, invocation 1
        assert state is State.I
        state = step(state, Event.WN)   # write, same invocation
        assert state is State.IO
        state = step(state, Event.RF)   # read, invocation 2 -> transfer
        assert state is State.TIO
        assert classify(state) == frozenset("TIO")

    def test_write_only_across_invocations_is_cloneable(self):
        """Figure 1's x: written first in every invocation."""
        state = step(State.EPS, Event.WF)
        state = step(state, Event.RN)  # reads its own value
        state = step(state, Event.WF)  # next invocation overwrites
        assert state is State.CO
        assert "C" in classify(state)

    def test_read_only_stays_input(self):
        state = State.EPS
        for _ in range(5):
            state = step(state, Event.RF)
            state = step(state, Event.RN)
        assert state is State.I

    def test_cloneable_revoked_by_cross_invocation_read(self):
        state = step(State.EPS, Event.WF)
        state = step(state, Event.WF)
        assert state is State.CO
        state = step(state, Event.RF)  # reads the previous write
        assert state is State.TO
        assert "C" not in classify(state)

    def test_tio_is_sink(self):
        for event in Event:
            assert step(State.TIO, event) is State.TIO

    def test_to_is_sink(self):
        for event in Event:
            assert step(State.TO, event) is State.TO

    def test_epsilon_rejects_subsequent_events(self):
        with pytest.raises(RuntimeToolError):
            step(State.EPS, Event.RN)
        with pytest.raises(RuntimeToolError):
            step(State.EPS, Event.WN)

    def test_input_then_new_invocation_write_is_io_not_cloneable(self):
        # Only one invocation ever wrote -> not cloneable yet.
        state = step(State.EPS, Event.RF)
        state = step(state, Event.WF)
        assert state is State.IO
        # A second writing invocation makes it cloneable.
        state = step(state, Event.WF)
        assert state is State.CIO


class TestTableShape:
    def test_every_non_eps_state_is_total(self):
        for state in State:
            for event in Event:
                if state is State.EPS and event in (Event.RN, Event.WN):
                    continue
                assert (state, event) in TRANSITIONS

    def test_any_write_implies_output(self):
        for (state, event), target in TRANSITIONS.items():
            if event in (Event.WF, Event.WN):
                assert "O" in target.sets


# -- property-based tests ----------------------------------------------------


def _valid_sequences():
    """Sequences of (is_write, new_invocation) access descriptors."""
    return st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=40
    )


def _run(seq):
    state = State.EPS
    invocation = 0
    last = -1
    for is_write, new_inv in seq:
        if new_inv or last < 0:
            invocation += 1
        fresh = invocation != last
        last = invocation
        if is_write:
            event = Event.WF if fresh else Event.WN
        else:
            event = Event.RF if fresh else Event.RN
        state = step(state, event)
    return state


@given(_valid_sequences())
def test_cloneable_and_transfer_never_coexist(seq):
    letters = classify(_run(seq))
    assert not ({"C", "T"} <= letters)


@given(_valid_sequences())
def test_input_iff_first_access_is_read(seq):
    letters = classify(_run(seq))
    first_is_read = not seq[0][0]
    assert ("I" in letters) == first_is_read


@given(_valid_sequences())
def test_output_iff_any_write(seq):
    letters = classify(_run(seq))
    any_write = any(w for w, _ in seq)
    assert ("O" in letters) == any_write


@given(_valid_sequences())
def test_transfer_matches_cross_invocation_raw(seq):
    """T iff some invocation reads data written by an earlier invocation."""
    written_by = None  # invocation that last wrote
    invocation = 0
    last = -1
    expect_transfer = False
    for is_write, new_inv in seq:
        if new_inv or last < 0:
            invocation += 1
        last = invocation
        if is_write:
            written_by = invocation
        elif written_by is not None and written_by != invocation:
            expect_transfer = True
    assert ("T" in classify(_run(seq))) == expect_transfer


@given(_valid_sequences(), st.sampled_from(["I", "O", "C", "IO", "CO"]))
def test_force_states_is_monotone_join(seq, letters):
    state = _run(seq)
    merged = force_states(state, letters)
    assert state.sets <= merged.sets or "C" in state.sets
    assert not ({"C", "T"} <= merged.sets)
