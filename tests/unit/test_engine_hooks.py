"""Unit tests for the runtime engine / VM-hook layer (§4.5–4.6)."""

import pytest

from repro.compiler import compile_carmot, compile_naive
from repro.compiler.driver import frontend
from repro.compiler.instrument import InstrumentationPlan, instrument_module
from repro.runtime import (
    CarmotHooks,
    CarmotRuntime,
    FULL_POLICY,
    RuntimeConfig,
)
from repro.vm import run_module

LIB_HEAVY = """
int main() {
  int a[8];
  int b[8];
  for (int i = 0; i < 8; ++i) a[i] = 8 - i;
  for (int rep = 0; rep < 4; ++rep) {
    #pragma carmot roi abstraction(parallel_for)
    {
      memcpy((char*) b, (char*) a, 64);
      qsort_int(b, 8);
      float r = sqrt(2.0);
    }
  }
  print_int(b[0]);
  return 0;
}
"""


def run_with_config(source, **config_kwargs):
    module = frontend(source, "t")
    policy = config_kwargs.pop("policy", FULL_POLICY)
    instrument_module(module, InstrumentationPlan.naive(policy))
    config = RuntimeConfig(policy=policy, **config_kwargs)
    runtime = CarmotRuntime(module, config)
    hooks = CarmotHooks(runtime)
    result = run_module(module, hooks=hooks)
    return result, runtime


class TestPinTracing:
    def test_pin_attaches_only_inside_roi(self):
        _, runtime = run_with_config(LIB_HEAVY)
        # 4 invocations x 3 gated builtin calls inside the ROI; the init
        # loop's accesses are outside any ROI and never attach.
        assert runtime.stats.pin_attaches == 12

    def test_pin_traces_library_memory_accesses(self):
        _, runtime = run_with_config(LIB_HEAVY)
        assert runtime.stats.pin_accesses > 0

    def test_pin_events_feed_the_psec(self):
        """memcpy writes into b are only visible through Pin (§4.5): the
        PSEC must still classify b's elements."""
        _, runtime = run_with_config(LIB_HEAVY)
        psec = runtime.psecs[0]
        mem_keys = [k for k in psec.entries if k[0] == "mem"]
        assert mem_keys
        written = [k for k in mem_keys
                   if "O" in psec.entries[k].letters]
        assert written

    def test_carmot_pin_reduction_vs_naive(self):
        naive = compile_naive(LIB_HEAVY, name="t")
        carmot = compile_carmot(LIB_HEAVY, name="t")
        _, naive_rt = naive.run()
        _, carmot_rt = carmot.run()
        # Opt 6 clears the sqrt gate (pure math): fewer attaches.
        assert carmot_rt.stats.pin_attaches < naive_rt.stats.pin_attaches


class TestCallstackClustering:
    ALLOC_HEAVY = """
    void burst() {
      char *a = malloc(8);
      char *b = malloc(8);
      char *c = malloc(8);
      free(a); free(b); free(c);
    }
    int main() {
      for (int i = 0; i < 5; ++i) {
        #pragma carmot roi abstraction(parallel_for)
        { burst(); }
      }
      return 0;
    }
    """

    def test_clustering_shares_captures(self):
        _, clustered = run_with_config(self.ALLOC_HEAVY,
                                       callstack_clustering=True)
        _, naive = run_with_config(self.ALLOC_HEAVY,
                                   callstack_clustering=False)
        assert naive.stats.alloc_events == clustered.stats.alloc_events
        # One capture per burst() invocation vs one per allocation.
        assert clustered.stats.callstack_captures \
            < naive.stats.callstack_captures

    def test_clustered_run_is_cheaper(self):
        r1, _ = run_with_config(self.ALLOC_HEAVY, callstack_clustering=True)
        r2, _ = run_with_config(self.ALLOC_HEAVY, callstack_clustering=False)
        assert r1.cost < r2.cost

    def test_asmt_callstacks_preserved_either_way(self):
        _, runtime = run_with_config(self.ALLOC_HEAVY,
                                     callstack_clustering=True)
        heap = [e for e in runtime.asmt.entries().values()
                if e.kind == "heap"]
        assert heap
        for entry in heap:
            assert entry.alloc_callstack[-1] == "burst"


class TestEventFiltering:
    def test_accesses_outside_roi_ignored(self):
        source = """
        int main() {
          int x = 0;
          for (int i = 0; i < 50; ++i) x += i;   // no ROI here
          return x;
        }
        """
        _, runtime = run_with_config(source)
        assert runtime.stats.access_events == 0
        assert runtime.stats.events_ignored_outside_roi > 0

    def test_inline_processing_costs_more(self):
        r_pipe, _ = run_with_config(LIB_HEAVY, inline_processing=False)
        r_inline, _ = run_with_config(LIB_HEAVY, inline_processing=True)
        assert r_inline.cost > r_pipe.cost

    def test_shadow_callstacks_cost_less(self):
        r_shadow, _ = run_with_config(LIB_HEAVY, shadow_callstacks=True)
        r_walk, _ = run_with_config(LIB_HEAVY, shadow_callstacks=False)
        assert r_shadow.cost < r_walk.cost
