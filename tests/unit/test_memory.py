"""Unit tests for the VM memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault, VMError
from repro.lang import types as ct
from repro.vm.memory import Memory


class TestAllocation:
    def test_objects_do_not_overlap(self):
        mem = Memory()
        a = mem.allocate(16, "heap")
        b = mem.allocate(16, "heap")
        assert a.end <= b.base

    def test_zero_size_allocation_rounds_up(self):
        mem = Memory()
        obj = mem.allocate(0, "heap")
        assert obj.size == 1

    def test_negative_size_rejected(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.allocate(-1, "heap")

    def test_segments_are_disjoint(self):
        mem = Memory()
        g = mem.allocate(8, "global")
        s = mem.allocate(8, "stack")
        h = mem.allocate(8, "heap")
        assert g.base < s.base < h.base

    def test_heap_accounting(self):
        mem = Memory()
        obj = mem.allocate(100, "heap")
        assert mem.heap_bytes_allocated == 100
        mem.free(obj.base)
        assert mem.heap_bytes_freed == 100
        assert mem.leaked_bytes == 0

    def test_leak_accounting(self):
        mem = Memory()
        mem.allocate(64, "heap")
        mem.allocate(36, "heap")
        assert mem.leaked_bytes == 100


class TestFaults:
    def test_invalid_address(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.read_scalar(0xDEAD, ct.INT)

    def test_use_after_free(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        mem.free(obj.base)
        with pytest.raises(MemoryFault):
            mem.read_scalar(obj.base, ct.INT)

    def test_out_of_bounds(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        with pytest.raises(MemoryFault):
            mem.read_scalar(obj.base + 4, ct.INT)  # 8-byte read at +4

    def test_interior_free_rejected(self):
        mem = Memory()
        obj = mem.allocate(16, "heap")
        with pytest.raises(MemoryFault):
            mem.free(obj.base + 8)

    def test_free_of_stack_rejected(self):
        mem = Memory()
        obj = mem.allocate(8, "stack")
        with pytest.raises(MemoryFault):
            mem.free(obj.base)

    def test_guard_byte_between_objects(self):
        mem = Memory()
        a = mem.allocate(8, "heap")
        mem.allocate(8, "heap")
        with pytest.raises(MemoryFault):
            mem.read_scalar(a.base + 8, ct.CHAR)


class TestTypedAccess:
    def test_int_roundtrip(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        mem.write_scalar(obj.base, -123456789, ct.INT)
        assert mem.read_scalar(obj.base, ct.INT) == -123456789

    def test_float_roundtrip(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        mem.write_scalar(obj.base, 3.14159, ct.FLOAT)
        assert mem.read_scalar(obj.base, ct.FLOAT) == pytest.approx(3.14159)

    def test_char_truncation(self):
        mem = Memory()
        obj = mem.allocate(1, "heap")
        mem.write_scalar(obj.base, 0x1FF, ct.CHAR)
        assert mem.read_scalar(obj.base, ct.CHAR) == 0xFF

    def test_int_wraps_to_64_bits(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        mem.write_scalar(obj.base, 1 << 70, ct.INT)
        assert mem.read_scalar(obj.base, ct.INT) == 0

    def test_bytes_roundtrip(self):
        mem = Memory()
        obj = mem.allocate(10, "heap")
        mem.write_bytes(obj.base + 2, b"hello")
        assert mem.read_bytes(obj.base + 2, 5) == b"hello"

    def test_zero_initialized(self):
        mem = Memory()
        obj = mem.allocate(8, "heap")
        assert mem.read_scalar(obj.base, ct.INT) == 0


class TestCompaction:
    def test_lookup_survives_compaction(self):
        mem = Memory()
        keep = mem.allocate(8, "stack")
        released = []
        for _ in range(5000):
            obj = mem.allocate(8, "stack")
            released.append(obj)
            mem.release_stack_object(obj)
        mem.write_scalar(keep.base, 42, ct.INT)
        assert mem.read_scalar(keep.base, ct.INT) == 42
        assert mem.try_object_at(released[0].base) is None


@given(st.lists(st.integers(-2**63, 2**63 - 1), min_size=1, max_size=20))
def test_scalar_array_roundtrip(values):
    mem = Memory()
    obj = mem.allocate(8 * len(values), "heap")
    for i, value in enumerate(values):
        mem.write_scalar(obj.base + 8 * i, value, ct.INT)
    for i, value in enumerate(values):
        assert mem.read_scalar(obj.base + 8 * i, ct.INT) == value


class TestSegmentOverflow:
    """Each segment is a fixed address range; crossing its upper bound
    must fail loudly instead of bleeding into the next segment (where
    object lookup would attribute the bytes to the wrong kind)."""

    def test_global_overflow_raises(self):
        from repro.vm.memory import STACK_BASE
        mem = Memory()
        with pytest.raises(VMError, match="global segment overflow"):
            mem.allocate(STACK_BASE + 8, "global")

    def test_stack_overflow_raises(self):
        from repro.vm.memory import HEAP_BASE, STACK_BASE
        mem = Memory()
        mem.allocate(64, "stack")
        with pytest.raises(VMError, match="stack segment overflow"):
            mem.allocate(HEAP_BASE - STACK_BASE, "stack")

    def test_heap_overflow_raises(self):
        from repro.vm.memory import FUNC_PTR_BASE, HEAP_BASE
        mem = Memory()  # heap_limit 0 = the budget check is off
        with pytest.raises(VMError, match="heap segment overflow"):
            mem.allocate(FUNC_PTR_BASE - HEAP_BASE + 8, "heap")

    def test_oversized_request_rejected_before_backing_store(self):
        # The guard fires on the address arithmetic alone — a huge
        # request must not materialize a huge bytearray first.
        mem = Memory()
        with pytest.raises(VMError, match="heap segment overflow"):
            mem.allocate(10**15, "heap")

    def test_allocations_under_the_limit_still_work(self):
        mem = Memory()
        obj = mem.allocate(64, "stack")
        mem.write_scalar(obj.base, 7, ct.INT)
        assert mem.read_scalar(obj.base, ct.INT) == 7
