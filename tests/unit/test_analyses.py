"""Tests for the static analyses: dominators, loops, regions, points-to,
call graph, must-access, read-after-region."""

from repro.analysis.alias import PointsTo
from repro.analysis.callgraph import CallGraph
from repro.analysis.dominators import DominatorInfo
from repro.analysis.liveness import locals_read_after_region
from repro.analysis.loops import find_loops, match_trip_count
from repro.analysis.mustaccess import analyze_must_access
from repro.analysis.pdg import MemoryDependences, address_taken_allocas
from repro.analysis.regions import all_roi_regions, find_roi_region
from repro.compiler.driver import frontend
from repro.ir.instructions import Load, RoiBegin, Store


class TestDominators:
    def test_entry_dominates_everything(self):
        module = frontend(
            """
            int main() {
              int x = 0;
              if (x) { x = 1; } else { x = 2; }
              while (x < 10) x++;
              return x;
            }
            """
        )
        fn = module.functions["main"]
        dom = DominatorInfo(fn)
        for block in fn.blocks:
            assert dom.dominates(fn.entry, block)

    def test_branch_arms_do_not_dominate_join(self):
        module = frontend(
            "int f(int c) { int x; if (c) x = 1; else x = 2; return x; }"
        )
        fn = module.functions["f"]
        dom = DominatorInfo(fn)
        then_block = next(b for b in fn.blocks if b.label.startswith("then"))
        join_block = next(b for b in fn.blocks if b.label.startswith("join"))
        assert not dom.dominates(then_block, join_block)
        assert dom.dominates(fn.entry, join_block)

    def test_frontier_of_branch_arm_is_join(self):
        module = frontend(
            "int f(int c) { int x; if (c) x = 1; else x = 2; return x; }"
        )
        fn = module.functions["f"]
        dom = DominatorInfo(fn)
        then_block = next(b for b in fn.blocks if b.label.startswith("then"))
        assert len(dom.frontier[then_block]) == 1


class TestLoops:
    def test_finds_simple_loop(self):
        module = frontend(
            "int main() { int s = 0; for (int i = 0; i < 4; ++i) s += i;"
            " return s; }"
        )
        fn = module.functions["main"]
        loops = find_loops(fn)
        assert len(loops) == 1
        assert loops[0].preheader is not None
        assert loops[0].header.label.startswith("for.head")

    def test_nested_loops(self):
        module = frontend(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 3; ++i)
                for (int j = 0; j < 3; ++j)
                  s += i * j;
              return s;
            }
            """
        )
        loops = find_loops(module.functions["main"])
        assert len(loops) == 2
        sizes = sorted(len(l.blocks) for l in loops)
        assert sizes[0] < sizes[1]

    def test_trip_count_constant(self):
        module = frontend(
            "int main() { int s = 0; for (int i = 0; i < 37; ++i) s += i;"
            " return s; }"
        )
        fn = module.functions["main"]
        loop = find_loops(fn)[0]
        trip = match_trip_count(fn, loop, None)
        assert trip is not None
        assert trip.constant_trips == 37

    def test_trip_count_loaded_bound(self):
        module = frontend(
            """
            int f(int n) {
              int s = 0;
              for (int i = 0; i < n; ++i) s += i;
              return s;
            }
            """
        )
        fn = module.functions["f"]
        loop = find_loops(fn)[0]
        trip = match_trip_count(fn, loop, None)
        assert trip is not None
        assert trip.bound_const is None
        assert trip.bound_addr is not None

    def test_no_trip_count_for_while_true(self):
        module = frontend(
            "int main() { int i = 0; while (1) { i++; if (i > 3) break; }"
            " return i; }"
        )
        fn = module.functions["main"]
        loops = find_loops(fn)
        assert loops
        assert match_trip_count(fn, loops[0], None) is None


class TestTripCountFacts:
    """Induction/trip-count facts the prescreen pass builds on: starts,
    inclusive bounds, the induction-slot filter, and the recognised
    shapes of the golden example kernels."""

    def test_nonzero_start(self):
        module = frontend(
            "int main() { int s = 0; for (int i = 3; i < 10; ++i) s += i;"
            " return s; }"
        )
        fn = module.functions["main"]
        trip = match_trip_count(fn, find_loops(fn)[0], None)
        assert trip is not None
        assert trip.start == 3
        assert trip.bound_const == 10
        assert trip.constant_trips == 7

    def test_le_bound_counts_inclusive(self):
        module = frontend(
            "int main() { int s = 0; for (int i = 0; i <= 9; ++i) s += i;"
            " return s; }"
        )
        fn = module.functions["main"]
        trip = match_trip_count(fn, find_loops(fn)[0], None)
        assert trip is not None
        assert trip.bound_const == 10
        assert trip.constant_trips == 10

    def test_le_loaded_bound_rejected(self):
        module = frontend(
            """
            int f(int n) {
              int s = 0;
              for (int i = 0; i <= n; ++i) s += i;
              return s;
            }
            """
        )
        fn = module.functions["f"]
        assert match_trip_count(fn, find_loops(fn)[0], None) is None

    def test_non_constant_init_rejected(self):
        module = frontend(
            """
            int f(int n) {
              int s = 0;
              for (int i = n; i < 10; ++i) s += i;
              return s;
            }
            """
        )
        fn = module.functions["f"]
        assert match_trip_count(fn, find_loops(fn)[0], None) is None

    def test_conflicting_init_stores_rejected(self):
        module = frontend(
            """
            int f(int c) {
              int i;
              i = 0;
              if (c) { i = 2; }
              while (i < 5) { i = i + 1; }
              return i;
            }
            """
        )
        fn = module.functions["f"]
        assert match_trip_count(fn, find_loops(fn)[0], None) is None

    def _golden(self, name):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "examples" / name
        return frontend(path.read_text(), name)

    def test_golden_roi_loop_trip_counts(self):
        module = self._golden("roi_loop.mc")
        fn = module.functions["main"]
        loops = find_loops(fn)  # sorted outermost-first
        assert len(loops) == 2
        outer, inner = loops
        assert match_trip_count(fn, outer, None).constant_trips == 8
        assert match_trip_count(fn, inner, None).constant_trips == 16

    def test_golden_roi_loop_induction_slot_filter(self):
        module = self._golden("roi_loop.mc")
        fn = module.functions["main"]
        outer, inner = find_loops(fn)
        # The ROI wraps the r-loop body, so its induction_var is `r` —
        # the slot that governs the *outer* loop.
        ind_var = module.rois[0].induction_var
        assert ind_var is not None and ind_var.name == "r"
        slot = fn.var_allocas[ind_var.uid].result
        trip = match_trip_count(fn, outer, slot)
        assert trip is not None
        assert trip.induction_alloca is slot
        # The inner loop walks `i`, not `r`: the filter must reject it.
        assert match_trip_count(fn, inner, slot) is None

    def test_golden_stencil_loaded_bound(self):
        module = self._golden("stencil_calls.mc")
        fn = module.functions["main"]
        loops = find_loops(fn)
        trips = [match_trip_count(fn, loop, None) for loop in loops]
        assert all(t is not None for t in trips)
        # The t-loop is the only constant-trip loop; both i-loops reload
        # the `limit` slot as their bound.
        consts = [t.constant_trips for t in trips if t.bound_const]
        loaded = [t for t in trips if t.bound_const is None]
        assert consts == [4]
        assert len(loaded) == 2
        assert all(t.bound_addr is not None for t in loaded)

    def test_golden_stencil_checksum_parameter_bound(self):
        module = self._golden("stencil_calls.mc")
        fn = module.functions["checksum"]
        trip = match_trip_count(fn, find_loops(fn)[0], None)
        assert trip is not None
        assert trip.bound_const is None
        assert trip.bound_addr is not None


ROI_SOURCE = """
int work(int a) {
  int x = 0; int y = 0;
  for (int i = 0; i < 10; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    {
      x = a + i;
      y = y + x;
      if (x > 5) { y = y * 2; }
    }
  }
  return y;
}
"""


class TestRegions:
    def test_region_found(self):
        module = frontend(ROI_SOURCE)
        fn = module.functions["work"]
        region = find_roi_region(fn, 0)
        assert region is not None
        assert isinstance(
            region.begin_block.instrs[region.begin_index], RoiBegin
        )
        assert region.end_sites

    def test_region_spans_branches(self):
        module = frontend(ROI_SOURCE)
        region = find_roi_region(module.functions["work"], 0)
        assert len(region.blocks) >= 3  # body, then, join

    def test_all_roi_regions(self):
        module = frontend(ROI_SOURCE)
        regions = all_roi_regions(module)
        assert set(regions) == {0}

    def test_region_excludes_outside_code(self):
        module = frontend(ROI_SOURCE)
        fn = module.functions["work"]
        region = find_roi_region(fn, 0)
        inside = {id(i) for _, _, i in region.instructions()}
        exit_block = next(b for b in fn.blocks if b.label.startswith("for.exit"))
        for instr in exit_block.instrs:
            assert id(instr) not in inside


class TestMustAccess:
    def test_second_read_redundant(self):
        module = frontend(ROI_SOURCE)
        fn = module.functions["work"]
        region = find_roi_region(fn, 0)
        result = analyze_must_access(fn, region)
        # y is read (y + x) then read again in the branch (y * 2): the
        # branch read must be redundant.
        y_loads = [
            (b, i, instr) for b, i, instr in region.instructions()
            if isinstance(instr, Load) and instr.var is not None
            and instr.var.name == "y"
        ]
        assert len(y_loads) == 2
        flags = [result.load_is_redundant(fn, b, i, l) for b, i, l in y_loads]
        assert flags == [False, True]

    def test_first_access_not_redundant(self):
        module = frontend(ROI_SOURCE)
        fn = module.functions["work"]
        region = find_roi_region(fn, 0)
        result = analyze_must_access(fn, region)
        first = next(
            (b, i, instr) for b, i, instr in region.instructions()
            if isinstance(instr, (Load, Store))
        )
        block, index, instr = first
        if isinstance(instr, Load):
            assert not result.load_is_redundant(fn, block, index, instr)

    def test_conditional_write_not_redundant_after(self):
        source = """
        int f(int c) {
          int v = 0;
          for (int i = 0; i < 4; ++i) {
            #pragma carmot roi
            {
              if (c) { v = 1; }
              v = 2;
            }
          }
          return v;
        }
        """
        module = frontend(source)
        fn = module.functions["f"]
        region = find_roi_region(fn, 0)
        result = analyze_must_access(fn, region)
        stores = [
            (b, i, instr) for b, i, instr in region.instructions()
            if isinstance(instr, Store) and instr.var is not None
            and instr.var.name == "v"
        ]
        assert len(stores) == 2
        # The second store is NOT guaranteed preceded by a write on all
        # paths (the branch may be skipped).
        block, index, instr = stores[1]
        assert not result.store_is_redundant(fn, block, index, instr)


class TestPointsToAndCallGraph:
    def test_direct_call_edge(self):
        module = frontend(
            """
            int helper(int x) { return x; }
            int main() { return helper(1); }
            """
        )
        pts = PointsTo(module)
        cg = CallGraph(module, pts)
        assert "helper" in cg.callees["main"]
        assert "main" in cg.callers["helper"]

    def test_malloc_points_to_heap_site(self):
        module = frontend(
            "int main() { char *p = malloc(8); free(p); return 0; }"
        )
        pts = PointsTo(module)
        fn = module.functions["main"]
        load = next(i for b in fn.blocks for i in b.instrs
                    if isinstance(i, Load))
        objs = pts.points_to("main", load.result)
        assert any(o[0] == "heap" for o in objs)

    def test_distinct_allocas_do_not_alias(self):
        module = frontend(
            "int main() { int a = 1; int b = 2; return a + b; }"
        )
        pts = PointsTo(module)
        fn = module.functions["main"]
        allocas = [i for i in fn.entry.instrs if i.result is not None][:2]
        assert not pts.may_alias("main", allocas[0].result,
                                 "main", allocas[1].result)

    def test_transitive_callers(self):
        module = frontend(
            """
            int c() { return 1; }
            int b() { return c(); }
            int a() { return b(); }
            int main() { return a(); }
            """
        )
        cg = CallGraph(module, PointsTo(module))
        callers = cg.transitive_callers(["c"])
        assert callers == {"c", "b", "a", "main"}

    def test_may_reach_precompiled(self):
        module = frontend(
            """
            int pure(int x) { return x + 1; }
            int does_io(int x) { print_int(x); return x; }
            int main() { return pure(does_io(1)); }
            """
        )
        cg = CallGraph(module, PointsTo(module))
        assert not cg.may_reach_precompiled("pure")
        assert cg.may_reach_precompiled("does_io")
        assert cg.may_reach_precompiled("main")

    def test_address_taken_allocas(self):
        module = frontend(
            """
            int main() {
              int plain = 0;
              int taken = 0;
              int *p = &taken;
              *p = 3;
              return plain + taken;
            }
            """
        )
        fn = module.functions["main"]
        taken = address_taken_allocas(fn)
        from repro.ir.instructions import Alloca

        by_name = {a.var.name: a.result.name for a in fn.entry.instrs
                   if isinstance(a, Alloca) and a.var is not None}
        assert by_name["taken"] in taken
        assert by_name["plain"] not in taken


class TestReadAfterRegion:
    def test_variable_read_after_loop_detected(self):
        module = frontend(ROI_SOURCE)
        fn = module.functions["work"]
        region = find_roi_region(fn, 0)
        read_after = locals_read_after_region(fn, region, True)
        names = {
            alloca.var.name
            for uid, alloca in fn.var_allocas.items()
            if uid in read_after and alloca.var is not None
        }
        assert "y" in names   # returned after the loop
        assert "x" not in names
