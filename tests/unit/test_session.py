"""Unit tests for the session layer: store, cache keys, staged reuse."""

import json

import pytest

from repro.errors import ReproError
from repro.resilience.budgets import ExecutionBudgets
from repro.session import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ArtifactStore,
    Session,
    frontend_key,
    pipeline_key,
    profile_key,
    resolve_cache_dir,
)
from repro.session import keys

SOURCE = """
int main() {
  int i, acc;
  acc = 0;
  #pragma carmot roi abstraction(parallel_for)
  for (i = 0; i < 8; ++i) { acc = acc + i; }
  print_int(acc);
  return 0;
}
"""

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


# -- cache-dir resolution ----------------------------------------------------

class TestResolveCacheDir:
    def test_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(str(tmp_path / "arg")) == tmp_path / "arg"

    def test_environment_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(resolve_cache_dir(None)) == DEFAULT_CACHE_DIR


# -- artifact store ----------------------------------------------------------

class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "payload text", "ir")
        assert store.get(KEY_A) == "payload text"

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(KEY_A) is None
        assert store.stats().misses == 1

    def test_truncated_entry_is_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "payload", "ir")
        path = store._entry_path(KEY_A)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(KEY_A) is None
        assert not path.exists()
        assert store.stats().evicted_corrupt == 1

    def test_tampered_payload_is_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "payload", "ir")
        path = store._entry_path(KEY_A)
        doc = json.loads(path.read_text())
        doc["payload"] = "tampered"
        path.write_text(json.dumps(doc))
        assert store.get(KEY_A) is None
        assert not path.exists()

    def test_foreign_store_version_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "payload", "ir")
        path = store._entry_path(KEY_A)
        doc = json.loads(path.read_text())
        doc["store_version"] = 999
        path.write_text(json.dumps(doc))
        assert store.get(KEY_A) is None

    def test_verify_reports_and_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "good", "ir")
        store.put(KEY_B, "bad", "profile")
        store._entry_path(KEY_B).write_text("{not json")
        assert store.verify() == {
            "checked": 2, "ok": 1, "evicted": 1,
            "by_namespace": {"default": {"checked": 2, "ok": 1,
                                         "evicted": 1}},
        }
        assert store.get(KEY_A) == "good"

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "one", "ir")
        store.put(KEY_B, "two", "profile")
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_stats_counts_kinds_and_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, "abcd", "ir")
        store.put(KEY_B, "efghij", "profile")
        stats = store.stats()
        assert stats.entries == 2
        assert stats.payload_bytes == 10
        assert stats.by_kind == {"ir": 1, "profile": 1}

    def test_put_into_unwritable_root_is_a_noop(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the store root should be")
        store = ArtifactStore(blocker)
        store.put(KEY_A, "payload", "ir")  # must not raise
        assert store.get(KEY_A) is None


# -- cache keys: the invalidation matrix -------------------------------------

class TestKeys:
    def test_frontend_key_tracks_source_and_name(self):
        base = frontend_key("int main() {}", "a")
        assert frontend_key("int main() {}", "a") == base
        assert frontend_key("int main() { return 0; }", "a") != base
        assert frontend_key("int main() {}", "b") != base

    def test_pipeline_key_tracks_passes_not_run_config(self):
        base = pipeline_key("d" * 64, ["mem2reg", "instrument"],
                            "parallel_for", None)
        assert pipeline_key("d" * 64, ["mem2reg", "instrument"],
                            "parallel_for", None) == base
        assert pipeline_key("d" * 64, ["instrument"],
                            "parallel_for", None) != base
        assert pipeline_key("d" * 64, ["mem2reg", "instrument"],
                            "task", None) != base
        assert pipeline_key("e" * 64, ["mem2reg", "instrument"],
                            "parallel_for", None) != base

    def test_profile_key_tracks_every_run_knob(self):
        def doc(**overrides):
            kwargs = dict(entry="main", args=(), cost_model=None,
                          max_instructions=1000, budgets=None,
                          abstraction=None, options=None, config_kwargs={})
            kwargs.update(overrides)
            return keys.run_config_doc(**kwargs)

        base = profile_key("d" * 64, "carmot", doc())
        assert profile_key("d" * 64, "carmot", doc()) == base
        for changed in (
            doc(entry="other"),
            doc(args=(3,)),
            doc(max_instructions=999),
            doc(budgets=ExecutionBudgets(5000, 1024, 16)),
            doc(config_kwargs={"event_encoding": "object"}),
            doc(config_kwargs={"batch_size": 7}),
            doc(config_kwargs={"fault_plan": "seed=42;crash@3"}),
        ):
            assert profile_key("d" * 64, "carmot", changed) != base
        assert profile_key("d" * 64, "naive", doc()) != base
        assert profile_key("e" * 64, "carmot", doc()) != base

    def test_environment_fingerprint_is_embedded(self, monkeypatch):
        base = frontend_key("int main() {}", "a")
        monkeypatch.setattr(keys, "IR_SCHEMA_VERSION", 999)
        assert frontend_key("int main() {}", "a") != base


# -- staged sessions ---------------------------------------------------------

class TestSession:
    def test_cold_then_warm(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        cold = session.profile(SOURCE, "carmot")
        assert cold.stages == {"frontend": "miss", "pipeline": "miss",
                               "codegen": "miss", "profile": "miss"}
        assert not cold.cached
        warm = session.profile(SOURCE, "carmot")
        assert warm.stages == {"frontend": "hit", "pipeline": "hit",
                               "codegen": "hit", "profile": "hit"}
        assert warm.cached
        assert warm.payload == cold.payload

    def test_profile_hit_never_executes_the_vm(self, tmp_path, monkeypatch):
        session = Session(cache_dir=str(tmp_path))
        session.profile(SOURCE, "carmot")

        from repro.compiler.driver import CompiledProgram

        def boom(self, *args, **kwargs):
            raise AssertionError("VM executed on a profile hit")

        monkeypatch.setattr(CompiledProgram, "run", boom)
        warm = session.profile(SOURCE, "carmot")
        assert warm.cached

    def test_run_config_change_invalidates_only_profile(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        session.profile(SOURCE, "carmot")
        changed = session.profile(SOURCE, "carmot", batch_size=3)
        assert changed.stages == {"frontend": "hit", "pipeline": "hit",
                                  "codegen": "hit", "profile": "miss"}

    def test_pipeline_change_invalidates_pipeline_and_profile(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        session.profile(SOURCE, "carmot")
        changed = session.profile(SOURCE, "naive")
        assert changed.stages == {"frontend": "hit", "pipeline": "miss",
                                  "codegen": "miss", "profile": "miss"}

    def test_source_change_invalidates_everything(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        session.profile(SOURCE, "carmot")
        changed = session.profile(SOURCE.replace("acc + i", "acc - i"),
                                  "carmot")
        assert changed.stages == {"frontend": "miss", "pipeline": "miss",
                                  "codegen": "miss", "profile": "miss"}

    def test_whitespace_change_reuses_downstream_stages(self, tmp_path):
        # Content addressing, not input addressing: the edited source
        # re-parses, but it lowers to the same IR artifact, so the
        # pipeline and profile stages still hit.
        session = Session(cache_dir=str(tmp_path))
        session.profile(SOURCE, "carmot")
        changed = session.profile(SOURCE + "\n", "carmot")
        assert changed.stages == {"frontend": "miss", "pipeline": "hit",
                                  "codegen": "hit", "profile": "hit"}

    def test_disabled_session_matches_enabled(self, tmp_path):
        live = Session(enabled=False)
        assert live.store is None
        cached = Session(cache_dir=str(tmp_path))
        assert live.profile(SOURCE, "carmot").payload == \
            cached.profile(SOURCE, "carmot").payload

    def test_baseline_profile_is_an_error(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        with pytest.raises(ReproError, match="baseline"):
            session.profile(SOURCE, "baseline")

    def test_corrupt_profile_artifact_recomputes(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        cold = session.profile(SOURCE, "carmot")
        for path in (tmp_path / "objects").rglob("*.json"):
            doc = json.loads(path.read_text())
            if doc["kind"] == "profile":
                doc["payload"] = doc["payload"][:10]
                path.write_text(json.dumps(doc))
        again = session.profile(SOURCE, "carmot")
        assert again.stages["profile"] == "miss"
        assert again.payload == cold.payload
