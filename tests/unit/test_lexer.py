"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        toks = tokenize("foo _bar baz42")
        assert [t.value for t in toks[:-1]] == ["foo", "_bar", "baz42"]
        assert all(t.kind is TokenKind.IDENT for t in toks[:-1])

    def test_keywords_are_not_identifiers(self):
        toks = tokenize("int intx")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT

    def test_integer_literals(self):
        assert values("0 42 123456") == [0, 42, 123456]

    def test_hex_literal(self):
        assert values("0xff 0x10") == [255, 16]

    def test_float_literals(self):
        assert values("1.5 0.25 2e3 1.5e-2") == [1.5, 0.25, 2000.0, 0.015]

    def test_float_requires_digits_or_exponent(self):
        toks = tokenize("1.5")
        assert toks[0].kind is TokenKind.FLOAT_LIT

    def test_string_literal_with_escapes(self):
        toks = tokenize(r'"hello\nworld"')
        assert toks[0].kind is TokenKind.STRING_LIT
        assert toks[0].value == "hello\nworld"

    def test_char_literal(self):
        toks = tokenize("'a' '\\n'")
        assert toks[0].value == ord("a")
        assert toks[1].value == ord("\n")

    def test_punctuators_longest_match(self):
        assert values("<<= << < <= -> - --") == ["<<=", "<<", "<", "<=", "->", "-", "--"]


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_positions_track_lines(self):
        toks = tokenize("a\n  b")
        assert toks[0].pos.line == 1 and toks[0].pos.column == 1
        assert toks[1].pos.line == 2 and toks[1].pos.column == 3


class TestPragmas:
    def test_pragma_token(self):
        toks = tokenize("#pragma carmot roi\nint x;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].value == "carmot roi"

    def test_pragma_consumes_rest_of_line_only(self):
        toks = tokenize("#pragma omp parallel for private(x)\ny;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[1].value == "y"

    def test_non_pragma_directive_rejected(self):
        with pytest.raises(LexError):
            tokenize("#include <stdio.h>")

    def test_empty_pragma_rejected(self):
        with pytest.raises(LexError):
            tokenize("#pragma")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')
