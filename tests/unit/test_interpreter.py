"""Unit tests for the VM interpreter (semantics of compiled MiniC)."""

import pytest

from repro.errors import MemoryFault, TrapError
from repro.compiler.driver import frontend
from repro.vm import run_module


def run(source, entry="main", args=()):
    return run_module(frontend(source), entry, args)


def outputs(source):
    return run(source).output


class TestArithmetic:
    def test_integer_ops(self):
        out = outputs(
            """
            int main() {
              print_int(7 + 3); print_int(7 - 3); print_int(7 * 3);
              print_int(7 / 3); print_int(7 % 3);
              print_int(-7 / 3); print_int(-7 % 3);
              return 0;
            }
            """
        )
        assert out == ["10", "4", "21", "2", "1", "-2", "-1"]

    def test_bitwise_ops(self):
        out = outputs(
            """
            int main() {
              print_int(12 & 10); print_int(12 | 10); print_int(12 ^ 10);
              print_int(1 << 4); print_int(-16 >> 2); print_int(~0);
              return 0;
            }
            """
        )
        assert out == ["8", "14", "6", "16", "-4", "-1"]

    def test_comparisons(self):
        out = outputs(
            """
            int main() {
              print_int(1 < 2); print_int(2 <= 2); print_int(3 > 4);
              print_int(1 == 1); print_int(1 != 1);
              return 0;
            }
            """
        )
        assert out == ["1", "1", "0", "1", "0"]

    def test_float_arithmetic(self):
        out = outputs(
            """
            int main() {
              float x = 1.5;
              float y = x * 4.0 - 1.0;
              print_float(y);
              print_float(x / 2.0);
              return 0;
            }
            """
        )
        assert out == ["5.000000", "0.750000"]

    def test_mixed_promotion(self):
        assert outputs(
            "int main() { float f = 2 + 0.5; print_float(f); return 0; }"
        ) == ["2.500000"]

    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run("int main() { int z = 0; return 1 / z; }")

    def test_modulo_by_zero_traps(self):
        with pytest.raises(TrapError):
            run("int main() { int z = 0; return 1 % z; }")


class TestControlFlow:
    def test_nested_loops(self):
        out = outputs(
            """
            int main() {
              int total = 0;
              for (int i = 0; i < 4; ++i)
                for (int j = 0; j < 3; ++j)
                  total += i * j;
              print_int(total);
              return 0;
            }
            """
        )
        assert out == ["18"]

    def test_break_and_continue(self):
        out = outputs(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 10; ++i) {
                if (i == 7) break;
                if (i % 2 == 0) continue;
                s += i;
              }
              print_int(s);
              return 0;
            }
            """
        )
        assert out == ["9"]  # 1 + 3 + 5

    def test_do_while_executes_once(self):
        out = outputs(
            "int main() { int n = 0; do { n++; } while (0); "
            "print_int(n); return 0; }"
        )
        assert out == ["1"]

    def test_short_circuit_effects(self):
        out = outputs(
            """
            int hits = 0;
            int bump() { hits = hits + 1; return 1; }
            int main() {
              int r = 0 && bump();
              print_int(hits);
              r = 1 || bump();
              print_int(hits);
              r = 1 && bump();
              print_int(hits);
              return 0;
            }
            """
        )
        assert out == ["0", "0", "1"]

    def test_ternary_evaluates_one_arm(self):
        out = outputs(
            """
            int hits = 0;
            int bump() { hits = hits + 1; return 5; }
            int main() {
              int r = 1 ? 2 : bump();
              print_int(hits); print_int(r);
              return 0;
            }
            """
        )
        assert out == ["0", "2"]


class TestFunctions:
    def test_recursion(self):
        out = outputs(
            """
            int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
            int main() { print_int(fact(10)); return 0; }
            """
        )
        assert out == ["3628800"]

    def test_mutual_recursion(self):
        out = outputs(
            """
            int is_odd(int n);
            int is_even(int n) { if (n == 0) return 1; return is_odd(n-1); }
            int is_odd(int n) { if (n == 0) return 0; return is_even(n-1); }
            int main() { print_int(is_even(10)); print_int(is_odd(10));
                         return 0; }
            """
        )
        assert out == ["1", "0"]

    def test_function_pointer_call(self):
        out = outputs(
            """
            int twice(int x) { return 2 * x; }
            int thrice(int x) { return 3 * x; }
            int main() {
              char *fp = (char*) &twice;
              print_int(((int) fp) != 0);
              fp = (char*) &thrice;
              print_int(((int) fp) != 0);
              return 0;
            }
            """
        )
        assert out == ["1", "1"]

    def test_entry_with_args(self):
        result = run(
            "int add(int a, int b) { return a + b; }", entry="add",
            args=(20, 22),
        )
        assert result.return_value == 42

    def test_deep_recursion_no_python_overflow(self):
        result = run(
            """
            int down(int n) { if (n == 0) return 0; return down(n - 1); }
            int main() { return down(5000); }
            """
        )
        assert result.return_value == 0


class TestMemorySemantics:
    def test_pointer_write_through(self):
        out = outputs(
            """
            void set(int *p, int v) { *p = v; }
            int main() { int x = 0; set(&x, 9); print_int(x); return 0; }
            """
        )
        assert out == ["9"]

    def test_struct_field_access(self):
        out = outputs(
            """
            struct pair { int a; float b; };
            int main() {
              struct pair p;
              p.a = 3; p.b = 1.5;
              print_int(p.a); print_float(p.b);
              return 0;
            }
            """
        )
        assert out == ["3", "1.500000"]

    def test_2d_array(self):
        out = outputs(
            """
            int main() {
              int grid[3][4];
              for (int i = 0; i < 3; ++i)
                for (int j = 0; j < 4; ++j)
                  grid[i][j] = i * 10 + j;
              print_int(grid[2][3]);
              return 0;
            }
            """
        )
        assert out == ["23"]

    def test_pointer_arithmetic(self):
        out = outputs(
            """
            int main() {
              int a[5];
              for (int i = 0; i < 5; ++i) a[i] = i * i;
              int *p = a;
              p = p + 2;
              print_int(*p);
              print_int(*(p + 1));
              p--;
              print_int(*p);
              return 0;
            }
            """
        )
        assert out == ["4", "9", "1"]

    def test_heap_lifecycle_and_leak(self):
        result = run(
            """
            int main() {
              char *a = malloc(100);
              char *b = malloc(50);
              free(a);
              return 0;
            }
            """
        )
        assert result.leaked_bytes == 50

    def test_out_of_bounds_faults(self):
        with pytest.raises(MemoryFault):
            run("int main() { int a[2]; a[5] = 1; return 0; }")

    def test_use_after_free_faults(self):
        with pytest.raises(MemoryFault):
            run(
                """
                int main() {
                  int *p = (int*) malloc(8);
                  free((char*) p);
                  return *p;
                }
                """
            )

    def test_global_initialization(self):
        out = outputs(
            """
            int counter = 41;
            float ratio = 0.5;
            int main() {
              counter++;
              print_int(counter); print_float(ratio);
              return 0;
            }
            """
        )
        assert out == ["42", "0.500000"]

    def test_string_literal(self):
        assert outputs(
            'int main() { print_str("hi there"); return 0; }'
        ) == ["hi there"]

    def test_char_array_manipulation(self):
        out = outputs(
            """
            int main() {
              char buf[4];
              buf[0] = 'o'; buf[1] = 'k'; buf[2] = 0;
              print_str(buf);
              print_int(strlen(buf));
              return 0;
            }
            """
        )
        assert out == ["ok", "2"]


class TestBuiltins:
    def test_math(self):
        out = outputs(
            """
            int main() {
              print_float(sqrt(16.0));
              print_float(pow(2.0, 10.0));
              print_float(fabs(0.0 - 3.5));
              print_int(imax(3, 9)); print_int(imin(3, 9));
              print_int(abs(-4));
              return 0;
            }
            """
        )
        assert out == ["4.000000", "1024.000000", "3.500000", "9", "3", "4"]

    def test_rand_is_deterministic(self):
        src = """
        int main() {
          rand_seed(7);
          print_int(rand_int(1000));
          print_int(rand_int(1000));
          return 0;
        }
        """
        assert outputs(src) == outputs(src)

    def test_memcpy_and_memset(self):
        out = outputs(
            """
            int main() {
              int a[4]; int b[4];
              for (int i = 0; i < 4; ++i) a[i] = i + 1;
              memcpy((char*) b, (char*) a, 32);
              print_int(b[3]);
              memset((char*) b, 0, 32);
              print_int(b[0] + b[3]);
              return 0;
            }
            """
        )
        assert out == ["4", "0"]

    def test_qsort(self):
        out = outputs(
            """
            int main() {
              int a[5];
              a[0]=3; a[1]=1; a[2]=4; a[3]=1; a[4]=5;
              qsort_int(a, 5);
              for (int i = 0; i < 5; ++i) print_int(a[i]);
              return 0;
            }
            """
        )
        assert out == ["1", "1", "3", "4", "5"]

    def test_sum_float_array(self):
        out = outputs(
            """
            int main() {
              float v[3];
              v[0] = 1.5; v[1] = 2.5; v[2] = 3.0;
              print_float(sum_float_array(v, 3));
              return 0;
            }
            """
        )
        assert out == ["7.000000"]


class TestCounters:
    def test_access_counts_distinguish_vars(self):
        result = run(
            """
            int main() {
              int x = 0;
              int a[4];
              for (int i = 0; i < 4; ++i) a[i] = x;
              return 0;
            }
            """
        )
        assert result.access_counts["var"] > 0
        assert result.access_counts["mem"] > 0

    def test_instruction_budget(self):
        with pytest.raises(TrapError):
            run_module(
                frontend("int main() { while (1) { } return 0; }"),
                max_instructions=1000,
            )
