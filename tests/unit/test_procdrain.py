"""Units for the crash-tolerant multi-process drain: the shared-memory
ring framing, the supervised worker pool, injected worker deaths
(recovery and retry exhaustion), and hung-worker deadline detection."""

import os
import signal

import pytest

from repro.errors import RuntimeToolError
from repro.ir.instructions import SourceLoc, VarInfo
from repro.ir.module import Module
from repro.lang import types as ct
from repro.lang.tokens import SourcePos
from repro.parallel.procdrain import (
    ALIGN,
    FRAME_BATCH,
    FRAME_TABLES,
    ShmRing,
)
from repro.resilience import FaultInjector, FaultPlan, ResiliencePolicy
from repro.resilience.degradation import ACTION_FALLBACK
from repro.runtime.config import RuntimeConfig, policy_for
from repro.runtime.engine import CarmotRuntime

LOC = SourceLoc.of(SourcePos("m.mc", 3, 1))
VAR = VarInfo(uid=1, name="v", storage="local", ty=ct.IntType())
CS = ("main",)


# -- shared-memory ring -------------------------------------------------------


class TestShmRing:
    def test_frame_roundtrip(self):
        ring = ShmRing.create(1024)
        try:
            assert ring.try_read() is None
            assert ring.try_write(FRAME_BATCH, 7, 1, b"hello")
            assert ring.try_write(FRAME_TABLES, 2, 0, b"")
            assert ring.try_read() == (FRAME_BATCH, 7, 1, b"hello")
            assert ring.try_read() == (FRAME_TABLES, 2, 0, b"")
            assert ring.try_read() is None
        finally:
            ring.close()
            ring.unlink()

    def test_wrap_inserts_pad_frames_transparently(self):
        # Capacity of a few frames: repeated write/read cycles force the
        # head past the end of the buffer many times; payloads must come
        # back intact (frames never split across the wrap).
        ring = ShmRing.create(ALIGN * 8)
        try:
            for i in range(50):
                payload = bytes([i]) * (8 + 8 * (i % 9))
                assert ring.try_write(FRAME_BATCH, i, 0, payload)
                assert ring.try_read() == (FRAME_BATCH, i, 0, payload)
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_returns_false_until_drained(self):
        ring = ShmRing.create(ALIGN * 4)  # 128 bytes: two 64-byte frames
        try:
            assert ring.try_write(FRAME_BATCH, 0, 0, b"a" * 32)
            assert ring.try_write(FRAME_BATCH, 1, 0, b"b" * 32)
            assert not ring.try_write(FRAME_BATCH, 2, 0, b"")
            assert ring.try_read() == (FRAME_BATCH, 0, 0, b"a" * 32)
            assert ring.try_write(FRAME_BATCH, 2, 0, b"")
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_frame_rejected(self):
        ring = ShmRing.create(ALIGN * 4)
        try:
            with pytest.raises(RuntimeToolError, match="exceeds ring"):
                ring.try_write(FRAME_BATCH, 0, 0, b"x" * 4096)
        finally:
            ring.close()
            ring.unlink()

    def test_heartbeat_counter(self):
        ring = ShmRing.create(ALIGN)
        try:
            assert ring.heartbeat() == 0
            ring.beat(41)
            assert ring.heartbeat() == 41
        finally:
            ring.close()
            ring.unlink()


# -- fault-plan plumbing ------------------------------------------------------


class TestExitSpecs:
    def test_exit_specs_extraction(self):
        plan = FaultPlan.parse("seed=9;exit@1;exit@4!;crash@2")
        assert FaultInjector(plan).exit_specs() == {1: False, 4: True}

    def test_no_exit_specs(self):
        plan = FaultPlan.parse("seed=9;crash@2")
        assert FaultInjector(plan).exit_specs() == {}


# -- engine-level drain behaviour ---------------------------------------------


def run_stream(drain, n_events=300, batch_size=16, **config_kwargs):
    """Drive one seeded packed stream through the engine under ``drain``."""
    module = Module("m")
    module.new_roi("r", "parallel_for", "main", SourcePos("m.mc", 1, 1))
    runtime = CarmotRuntime(module, RuntimeConfig(
        policy=policy_for("parallel_for"),
        shadow_callstacks=True,
        inline_processing=False,
        batch_size=batch_size,
        event_encoding="packed",
        pipeline_shards=2,
        drain=drain,
        **config_kwargs,
    ))
    roi_id = next(iter(runtime.psecs))
    runtime.roi_begin(roi_id)
    for t in range(n_events):
        obj = 500 + (t % 7)
        var = VAR if obj == 501 else None
        offset = 0 if var is not None else 8 * (t % 5)
        runtime.packed_access(t % 2, obj, offset, 8, 1, 0, var, LOC, None,
                              CS, t)
        if t % 90 == 89:
            runtime.roi_end(roi_id)
            runtime.roi_begin(roi_id)
    runtime.roi_end(roi_id)
    runtime.finish()
    return runtime


def state_of(runtime):
    """Full observable PSEC state (sets plus per-entry scalars)."""
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        out[roi_id] = (
            psec.total_accesses,
            psec.use_records,
            {name: sorted(map(str, keys))
             for name, keys in psec.sets().items()},
            {str(key): (entry.letters, entry.forced, entry.access_count,
                        entry.first_time, entry.last_time,
                        sorted(map(str, entry.uses)))
             for key, entry in psec.entries.items()},
        )
    return out


class TestProcDrainEngine:
    def test_procs_matches_inproc(self):
        oracle = run_stream("inproc")
        procs = run_stream("procs")
        assert state_of(procs) == state_of(oracle)
        assert procs.drain_stats["mode"] == "procs"
        assert procs.drain_stats["worker_respawns"] == 0
        assert not procs.degradation.degraded

    def test_worker_exit_recovers_exactly(self):
        oracle = run_stream("inproc")
        procs = run_stream(
            "procs",
            fault_plan=FaultPlan.parse("seed=1;exit@1"),
            resilience=ResiliencePolicy(max_retries=2),
        )
        assert state_of(procs) == state_of(oracle)
        # Recovery is exact, so the degradation report stays empty; the
        # intervention is visible only in the drain counters.
        assert not procs.degradation.degraded
        assert procs.drain_stats["worker_respawns"] == 1
        assert procs.drain_stats["replays"] >= 1

    def test_two_worker_exits_recover_exactly(self):
        oracle = run_stream("inproc")
        procs = run_stream(
            "procs",
            fault_plan=FaultPlan.parse("seed=1;exit@1;exit@3"),
            resilience=ResiliencePolicy(max_retries=3),
        )
        assert state_of(procs) == state_of(oracle)
        assert not procs.degradation.degraded
        assert procs.drain_stats["worker_respawns"] == 2

    def test_persistent_exit_exhausts_retries_and_absorbs(self):
        oracle = run_stream("inproc")
        procs = run_stream(
            "procs",
            fault_plan=FaultPlan.parse("seed=1;exit@2!"),
            resilience=ResiliencePolicy(max_retries=1),
        )
        # The absorbed in-process fold is exact — same bytes — but the
        # run records the intervention as a canonical fallback.
        assert state_of(procs) == state_of(oracle)
        assert procs.drain_stats["fallbacks"] == 1
        assert procs.degradation.degraded
        (record,) = procs.degradation.records()
        assert record.kind == "worker_lost"
        assert record.action == ACTION_FALLBACK
        assert record.sets_complete

    def test_recovery_is_deterministic(self):
        runs = [
            run_stream(
                "procs",
                fault_plan=FaultPlan.parse("seed=1;exit@1;exit@3"),
                resilience=ResiliencePolicy(max_retries=3),
            )
            for _ in range(2)
        ]
        assert state_of(runs[0]) == state_of(runs[1])
        assert (runs[0].drain_stats["worker_respawns"]
                == runs[1].drain_stats["worker_respawns"] == 2)

    def test_hung_worker_hits_deadline_and_respawns(self):
        module = Module("m")
        module.new_roi("r", "parallel_for", "main", SourcePos("m.mc", 1, 1))
        oracle = run_stream("inproc", n_events=120)
        runtime = CarmotRuntime(module, RuntimeConfig(
            policy=policy_for("parallel_for"),
            shadow_callstacks=True,
            inline_processing=False,
            batch_size=16,
            event_encoding="packed",
            pipeline_shards=2,
            drain="procs",
            resilience=ResiliencePolicy(max_retries=2, heartbeat_ms=2,
                                        worker_deadline_ms=300),
        ))
        roi_id = next(iter(runtime.psecs))
        runtime.roi_begin(roi_id)
        for t in range(120):
            obj = 500 + (t % 7)
            var = VAR if obj == 501 else None
            offset = 0 if var is not None else 8 * (t % 5)
            runtime.packed_access(t % 2, obj, offset, 8, 1, 0, var, LOC,
                                  None, CS, t)
            if t % 90 == 89:
                runtime.roi_end(roi_id)
                runtime.roi_begin(roi_id)
            if t == 60:
                # Freeze one worker mid-stream: its heartbeat stops, the
                # supervisor's deadline must declare it hung and kill it.
                os.kill(runtime._proc_drain._workers[0].proc.pid,
                        signal.SIGSTOP)
        runtime.roi_end(roi_id)
        runtime.finish()
        assert state_of(runtime) == state_of(oracle)
        assert runtime.drain_stats["worker_respawns"] >= 1
        assert not runtime.degradation.degraded


class TestDrainConfig:
    def test_procs_requires_packed_encoding(self):
        with pytest.raises(ValueError, match="packed"):
            RuntimeConfig(drain="procs")

    def test_unknown_drain_rejected(self):
        with pytest.raises(ValueError, match="unknown drain"):
            RuntimeConfig(drain="fibers", event_encoding="packed")

    def test_cli_implies_packed_and_rejects_object(self):
        import argparse

        from repro.errors import ReproError
        from repro.service import RunOptions

        implied = RunOptions.from_args(
            argparse.Namespace(drain="procs")
        ).run_kwargs()
        assert implied["event_encoding"] == "packed"
        explicit = RunOptions.from_args(
            argparse.Namespace(drain="procs", event_encoding="packed")
        ).run_kwargs()
        assert explicit["drain"] == "procs"
        with pytest.raises(ReproError, match="cannot combine"):
            RunOptions(drain="procs", event_encoding="object").run_kwargs()
