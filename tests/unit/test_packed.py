"""Units for the packed event encoding: block/intern-table containers and
the capture-side run merging of repeated identical accesses."""

import pytest

from repro.ir.instructions import SourceLoc, VarInfo
from repro.ir.module import Module
from repro.lang import types as ct
from repro.lang.tokens import SourcePos
from repro.parallel.shards import ShardPool
from repro.resilience import ResiliencePolicy
from repro.runtime.config import RuntimeConfig, policy_for
from repro.runtime.engine import CarmotRuntime
from repro.runtime.packed import (
    F_AUX,
    F_LAST,
    F_TIME,
    InternTable,
    PackedBlock,
    ROW_STRIDE,
)

LOC = SourceLoc.of(SourcePos("m.mc", 3, 1))
VAR = VarInfo(uid=1, name="v", storage="local", ty=ct.IntType())
CS = ("main",)


def make_runtime(**config_kwargs):
    module = Module("m")
    module.new_roi("r", "parallel_for", "main", SourcePos("m.mc", 1, 1))
    config_kwargs.setdefault("batch_size", 64)
    runtime = CarmotRuntime(module, RuntimeConfig(
        policy=policy_for("parallel_for"),
        shadow_callstacks=True,
        inline_processing=False,
        event_encoding="packed",
        **config_kwargs,
    ))
    return runtime, next(iter(runtime.psecs))


def access(runtime, time, is_write=0, obj=500, offset=0):
    runtime.packed_access(is_write, obj, offset, 8, 1, 0, VAR, LOC, None,
                          CS, time)


class TestContainers:
    def test_intern_table_dense_ids(self):
        table = InternTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert len(table) == 2
        assert table.values == ["a", "b"]

    def test_block_len_counts_events_not_rows(self):
        block = PackedBlock()
        block.data.extend(range(ROW_STRIDE))
        assert block.rows() == 1
        assert len(block) == 0  # events is stamped at flush time
        block.events = 5
        assert len(block) == 5
        assert block.row(0) == tuple(range(ROW_STRIDE))


class TestShardPool:
    def test_stale_completion_token_does_not_poison_next_run(self):
        # Regression: a completion token left in _done by an abandoned run
        # used to satisfy the *next* run's wait, letting it return before
        # its own tasks finished.  Tokens are generation-tagged now.
        pool = ShardPool(2)
        try:
            pool._done.put((0, 0, None))  # stale token, older generation
            ran = []
            pool.run([lambda: ran.append(0), lambda: ran.append(1)])
            assert sorted(ran) == [0, 1]
        finally:
            pool.close()

    def test_mid_wait_stale_token_discarded(self):
        # A stale token arriving while run() is already collecting must be
        # skipped, not counted toward this run's completions.
        pool = ShardPool(2)
        try:
            ran = []

            def thunk0():
                pool._done.put((pool._generation - 1, 0, None))
                ran.append(0)

            pool.run([thunk0, lambda: ran.append(1)])
            assert sorted(ran) == [0, 1]
            assert pool._done.empty()
        finally:
            pool.close()

    def test_lowest_indexed_failure_wins(self):
        pool = ShardPool(3)
        try:
            def raiser(tag):
                def thunk():
                    raise ValueError(tag)
                return thunk

            with pytest.raises(ValueError, match="shard-1"):
                pool.run([lambda: None, raiser("shard-1"), raiser("shard-2")])
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = ShardPool(2)
        pool.run([lambda: None, lambda: None])
        pool.close()
        pool.close()  # second close must be a no-op, not a hang
        with pytest.raises(RuntimeError, match="closed ShardPool"):
            pool.run([lambda: None])

    def test_close_drains_leftover_tokens(self):
        pool = ShardPool(1)

        def fails():
            raise ValueError("x")

        with pytest.raises(ValueError):
            pool.run([fails])
        pool._done.put((pool._generation, 0, None))  # simulate a late token
        pool.close()
        assert pool._done.empty()


class TestRunMerging:
    def test_identical_accesses_merge_into_one_row(self):
        runtime, roi_id = make_runtime()
        runtime.roi_begin(roi_id)
        for time in range(5):
            access(runtime, time)
        block = runtime._block
        assert block.rows() == 1
        assert block.data[F_AUX] == 4
        assert block.data[F_TIME] == 0
        assert block.data[F_LAST] == 4
        runtime.roi_end(roi_id)
        runtime.finish()
        assert runtime.pipeline.events_seen == 5
        psec = runtime.psecs[roi_id]
        assert psec.total_accesses == 5
        (entry,) = psec.entries.values()
        assert entry.access_count == 5
        assert entry.first_time == 0
        assert entry.last_time == 4

    def test_different_offsets_do_not_merge(self):
        runtime, roi_id = make_runtime()
        runtime.roi_begin(roi_id)
        access(runtime, 0, obj=500, offset=0)
        access(runtime, 1, obj=500, offset=8)
        assert runtime._block.rows() == 2
        runtime.roi_end(roi_id)
        runtime.finish()

    def test_invocation_boundary_breaks_merging(self):
        # A new invocation changes the active-snapshot id in the row head,
        # so the fold still sees the fresh re-access (Rf/Wf) it needs.
        runtime, roi_id = make_runtime()
        runtime.roi_begin(roi_id)
        access(runtime, 0)
        runtime.roi_end(roi_id)
        runtime.roi_begin(roi_id)
        access(runtime, 1)
        assert runtime._block.rows() == 2
        runtime.roi_end(roi_id)
        runtime.finish()
        (entry,) = runtime.psecs[roi_id].entries.values()
        assert entry.access_count == 2

    def test_flush_resets_anchors_and_stamps_event_count(self):
        runtime, roi_id = make_runtime(batch_size=4)
        flushed = []
        push_block = runtime.pipeline.push_block
        runtime.pipeline.push_block = lambda block: (
            flushed.append((block.rows(), block.events)),
            push_block(block),
        )
        runtime.roi_begin(roi_id)
        for time in range(6):
            access(runtime, time)
        runtime.roi_end(roi_id)
        runtime.finish()
        # 6 identical events: one anchor row flushed at the 4-event batch
        # boundary, then a fresh anchor for the remaining 2.
        assert flushed == [(1, 4), (1, 2)]
        assert runtime.pipeline.events_seen == 6
        (entry,) = runtime.psecs[roi_id].entries.values()
        assert entry.access_count == 6
        assert entry.last_time == 5

    def test_event_budget_disables_merging(self):
        runtime, roi_id = make_runtime(
            resilience=ResiliencePolicy(max_events_per_roi=100, degrade=True)
        )
        runtime.roi_begin(roi_id)
        for time in range(5):
            access(runtime, time)
        assert runtime._block.rows() == 5
        runtime.roi_end(roi_id)
        runtime.finish()
        assert runtime.psecs[roi_id].total_accesses == 5
