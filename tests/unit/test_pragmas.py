"""Unit tests for pragma parsing."""

import pytest

from repro.errors import PragmaError
from repro.lang.pragmas import (
    CarmotRoi,
    OmpPragma,
    clause_summary,
    parse_pragma,
)


class TestCarmotPragmas:
    def test_bare_roi(self):
        p = parse_pragma("carmot roi")
        assert isinstance(p, CarmotRoi)
        assert p.abstraction is None and p.name is None

    @pytest.mark.parametrize(
        "abstraction", ["parallel_for", "task", "smart_pointers", "stats"]
    )
    def test_roi_with_abstraction(self, abstraction):
        p = parse_pragma(f"carmot roi abstraction({abstraction})")
        assert p.abstraction == abstraction

    def test_roi_with_name(self):
        p = parse_pragma("carmot roi name(hot_loop) abstraction(task)")
        assert p.name == "hot_loop"
        assert p.abstraction == "task"

    def test_unknown_abstraction_rejected(self):
        with pytest.raises(PragmaError):
            parse_pragma("carmot roi abstraction(gpu_offload)")

    def test_unknown_clause_rejected(self):
        with pytest.raises(PragmaError):
            parse_pragma("carmot roi speed(fast)")

    def test_missing_roi_keyword(self):
        with pytest.raises(PragmaError):
            parse_pragma("carmot region")


class TestOmpPragmas:
    def test_parallel_for_with_clauses(self):
        p = parse_pragma(
            "omp parallel for private(x, i) shared(a,b) firstprivate(s) "
            "lastprivate(t) reduction(+:sum)"
        )
        assert isinstance(p, OmpPragma)
        assert p.directive == "parallel for"
        assert p.private == ["x", "i"]
        assert p.shared == ["a", "b"]
        assert p.firstprivate == ["s"]
        assert p.lastprivate == ["t"]
        assert p.reductions == [("+", "sum")]

    def test_parallel_vs_parallel_for_disambiguation(self):
        assert parse_pragma("omp parallel").directive == "parallel"
        assert parse_pragma("omp parallel for").directive == "parallel for"
        assert parse_pragma("omp parallel sections").directive == "parallel sections"

    def test_simple_directives(self):
        for d in ("critical", "ordered", "barrier", "master", "section"):
            assert parse_pragma(f"omp {d}").directive == d

    def test_task_depend(self):
        p = parse_pragma("omp task depend(in: a, b) depend(out: c)")
        assert p.depend_in == ["a", "b"]
        assert p.depend_out == ["c"]

    def test_num_threads(self):
        p = parse_pragma("omp parallel for num_threads(8)")
        assert p.num_threads == 8

    def test_ordered_clause_on_for(self):
        p = parse_pragma("omp parallel for ordered")
        assert p.has_ordered_clause

    def test_reduction_multiple_vars(self):
        p = parse_pragma("omp parallel for reduction(max:hi, lo)")
        assert p.reductions == [("max", "hi"), ("max", "lo")]

    def test_bad_reduction_operator(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp parallel for reduction(/:x)")

    def test_bad_depend_kind(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp task depend(inout: x)")

    def test_unknown_directive(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp simd")

    def test_unknown_clause(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp parallel for collapse(2)")

    def test_clause_summary_is_sorted(self):
        p = parse_pragma("omp parallel for private(z, a) shared(m)")
        summary = clause_summary(p)
        assert summary["private"] == ["a", "z"]
        assert summary["shared"] == ["m"]


def test_unknown_family_rejected():
    with pytest.raises(PragmaError):
        parse_pragma("gcc unroll 4")
