"""Unit tests for the Reachability Graph and cycle detection."""

from hypothesis import given, strategies as st

from repro.runtime.reachability import ReachabilityGraph


def graph_with(edges, alloc_times=None):
    g = ReachabilityGraph()
    alloc_times = alloc_times or {}
    nodes = {n for e in edges for n in e}
    for node in sorted(nodes):
        g.add_node(node, True, alloc_times.get(node, node))
    for src, dst in edges:
        g.add_edge(src, dst, 0, 100)
    return g


class TestCycleDetection:
    def test_no_cycle_in_dag(self):
        g = graph_with([(1, 2), (2, 3), (1, 3)])
        assert g.find_cycles() == []

    def test_self_loop(self):
        g = graph_with([(1, 1)])
        cycles = g.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].nodes == (1,)

    def test_two_cycle(self):
        g = graph_with([(1, 2), (2, 1)])
        cycles = g.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].nodes == (1, 2)

    def test_long_cycle_like_nab(self):
        """Figure 9: molecule -> strand -> residue -> atom -> molecule."""
        g = graph_with([(1, 2), (2, 3), (3, 4), (4, 1)])
        cycles = g.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].nodes == (1, 2, 3, 4)

    def test_multiple_disjoint_cycles(self):
        g = graph_with([(1, 2), (2, 1), (3, 4), (4, 3), (5, 6)])
        assert len(g.find_cycles()) == 2

    def test_weak_suggestion_targets_oldest_node(self):
        # Node 2 is oldest (earliest first access).
        g = graph_with([(1, 2), (2, 3), (3, 1)],
                       alloc_times={1: 30, 2: 10, 3: 20})
        report = g.find_cycles()[0]
        assert report.weak_edge.dst == 2

    def test_freed_node_breaks_cycle(self):
        g = graph_with([(1, 2), (2, 1)])
        g.remove_node(2)
        assert g.find_cycles() == []

    def test_edge_overwrite_keeps_latest(self):
        g = ReachabilityGraph()
        for node in (1, 2, 3):
            g.add_node(node, True, node)
        g.add_edge(1, 2, 0, 10)
        g.add_edge(1, 3, 8, 20)
        assert set(g.successors(1)) == {2, 3}

    def test_reachable_from(self):
        g = graph_with([(1, 2), (2, 3), (4, 5)])
        assert g.reachable_from(1) == {1, 2, 3}
        assert g.reachable_from(4) == {4, 5}

    def test_nodes_added_implicitly_by_edges(self):
        g = ReachabilityGraph()
        g.add_edge(10, 20, 0, 5)
        assert set(g.nodes()) == {10, 20}


@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        max_size=60,
    )
)
def test_sccs_partition_nodes(edges):
    g = graph_with(edges) if edges else ReachabilityGraph()
    sccs = g.strongly_connected_components()
    flattened = [n for scc in sccs for n in scc]
    assert sorted(flattened) == sorted(g.nodes())
    assert len(flattened) == len(set(flattened))


@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1,
        max_size=40,
    )
)
def test_every_cycle_node_reaches_itself(edges):
    g = graph_with(edges)
    for report in g.find_cycles():
        for node in report.nodes:
            reachable = g.reachable_from(node) - {node}
            back = any(node in g.reachable_from(m) for m in reachable) or (
                node in g.successors(node)
            )
            assert back
