"""Unit tests for probe insertion and the CARMOT optimization toggles."""

import pytest

from repro.compiler import CarmotOptions, compile_carmot, compile_naive
from repro.compiler.driver import frontend
from repro.compiler.instrument import InstrumentationPlan, instrument_module
from repro.ir.instructions import Call, ProbeAccess, ProbeClassify, ProbeEscape
from repro.runtime.config import POLICIES, FULL_POLICY

SOURCE = """
int shared_total = 0;

int helper(int v) { return v * 2; }

int main() {
  int x = 1;
  int *p = (int*) malloc(16);
  for (int i = 0; i < 6; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    {
      p[i % 2] = helper(x) + i;
      shared_total += p[i % 2];
    }
  }
  free((char*) p);
  print_int(shared_total);
  return 0;
}
"""


def probes_of(module, kind):
    return [i for f in module.functions.values()
            for b in f.blocks for i in b.instrs if isinstance(i, kind)]


class TestNaivePlan:
    def test_every_access_probed(self):
        module = frontend(SOURCE, "t")
        report = instrument_module(
            module, InstrumentationPlan.naive(FULL_POLICY)
        )
        assert report.access_probes > 10
        assert report.suppressed_probes == 0

    def test_all_calls_gated(self):
        module = frontend(SOURCE, "t")
        instrument_module(module, InstrumentationPlan.naive(FULL_POLICY))
        calls = probes_of(module, Call)
        assert calls
        assert all(c.pin_gated for c in calls)

    def test_escape_probes_follow_policy(self):
        module = frontend(SOURCE, "t")
        instrument_module(
            module, InstrumentationPlan.naive(POLICIES["parallel_for"])
        )
        assert not probes_of(module, ProbeEscape)
        module2 = frontend(SOURCE, "t")
        instrument_module(module2, InstrumentationPlan.naive(FULL_POLICY))
        assert probes_of(module2, ProbeEscape)

    def test_smart_pointer_policy_skips_access_probes(self):
        module = frontend(SOURCE, "t")
        report = instrument_module(
            module, InstrumentationPlan.naive(POLICIES["smart_pointers"])
        )
        assert report.access_probes == 0
        assert probes_of(module, ProbeEscape)


class TestCarmotPlan:
    def test_suppresses_redundant_probes(self):
        program = compile_carmot(SOURCE, name="t")
        assert program.report.suppressed_probes > 0

    def test_clears_pin_gates(self):
        program = compile_carmot(SOURCE, name="t")
        assert program.report.pin_gates_cleared > 0
        # helper() is a user function: its gate must be gone.
        calls = [c for c in probes_of(program.module, Call)
                 if c.direct_target == "helper"]
        assert calls and not any(c.pin_gated for c in calls)

    def test_opts_disabled_means_more_probes(self):
        full = compile_carmot(SOURCE, name="t")
        none = compile_carmot(SOURCE, options=CarmotOptions.none(), name="t")
        assert none.report.access_probes > full.report.access_probes

    def test_each_option_toggle_keeps_semantics(self):
        import dataclasses

        expected, _ = compile_carmot(SOURCE, name="t").run()
        for field in dataclasses.fields(CarmotOptions):
            options = CarmotOptions(**{field.name: False})
            result, _ = compile_carmot(SOURCE, options=options,
                                       name="t").run()
            assert result.output == expected.output, field.name

    def test_each_option_never_increases_cost_when_enabled(self):
        import dataclasses

        base_cost, _ = compile_carmot(
            SOURCE, options=CarmotOptions.none(), name="t"
        ).run()
        for field in dataclasses.fields(CarmotOptions):
            options = CarmotOptions.none()
            options = dataclasses.replace(options, **{field.name: True})
            result, _ = compile_carmot(SOURCE, options=options,
                                       name="t").run()
            assert result.cost <= base_cost.cost * 1.02, field.name


class TestClassifyProbes:
    LOOPY = """
    float data[64];
    float out[64];
    int main() {
      for (int k = 0; k < 64; ++k) data[k] = float_of_int(k);
      for (int rep = 0; rep < 3; ++rep) {
        #pragma carmot roi abstraction(parallel_for)
        for (int i = 0; i < 64; ++i) {
          out[i] = data[i] * 2.0;
        }
      }
      return 0;
    }
    """

    def test_hoisted_classification_emitted(self):
        program = compile_carmot(self.LOOPY, name="t")
        assert program.report.classify_probes >= 0
        # The classification must match a naive profile exactly.
        _, carmot_rt = program.run()
        _, naive_rt = compile_naive(self.LOOPY, name="t").run()
        # Memory PSEs must agree exactly; variables may differ only by the
        # legitimately-promoted induction variable (opt 4).
        carmot_sets = {
            name: len([k for k in keys if k[0] == "mem"])
            for name, keys in carmot_rt.psecs[0].sets().items()
        }
        naive_sets = {
            name: len([k for k in keys if k[0] == "mem"])
            for name, keys in naive_rt.psecs[0].sets().items()
        }
        assert carmot_sets == naive_sets
