"""Concurrent multi-client safety of the artifact store.

The serve daemon shares one ``ArtifactStore`` root across worker threads
and client namespaces, so put/get/clear/verify/stats must tolerate any
interleaving: unique O_EXCL tempfiles (no two writers collide on a
scratch path), atomic publication, and eviction races treated as misses
— never an exception, never a torn read.
"""

import hashlib
import json
import threading

import pytest

from repro.session.store import (
    ArtifactStore,
    NamespaceError,
    validate_namespace,
)


def _key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@pytest.fixture()
def root(tmp_path):
    return tmp_path / "store"


class TestNamespaceValidation:
    @pytest.mark.parametrize("name", ["c0", "client-7", "A.b_c", "x" * 64])
    def test_valid(self, name):
        assert validate_namespace(name) == name

    @pytest.mark.parametrize("name", [
        "", ".", "..", "../escape", "a/b", "a\\b", ".hidden", "-lead",
        "x" * 65, "sp ace", "default",
    ])
    def test_rejected(self, name):
        with pytest.raises(NamespaceError):
            validate_namespace(name)

    def test_namespaced_store_partitions_disk(self, root):
        base = ArtifactStore(root)
        ns = ArtifactStore(root, namespace="c1")
        key = _key("shared")
        base.put(key, "base-payload", "ir")
        ns.put(key, "ns-payload", "ir")
        assert base.get(key) == "base-payload"
        assert ns.get(key) == "ns-payload"
        assert ArtifactStore(root).namespaces() == ["c1"]

    def test_maintenance_walks_all_partitions(self, root):
        ArtifactStore(root).put(_key("a"), "pa", "ir")
        ArtifactStore(root, namespace="c1").put(_key("b"), "pb", "profile")
        ArtifactStore(root, namespace="c2").put(_key("c"), "pc", "profile")
        stats = ArtifactStore(root).stats()
        assert stats.entries == 3
        assert stats.by_namespace["default"]["entries"] == 1
        assert stats.by_namespace["c1"]["entries"] == 1
        assert stats.by_namespace["c2"]["entries"] == 1
        report = ArtifactStore(root).verify()
        assert report["checked"] == 3
        assert set(report["by_namespace"]) == {"default", "c1", "c2"}
        assert ArtifactStore(root).clear() == 3


class TestConcurrentHammer:
    """Threads doing put/get/clear/verify/stats against one root."""

    N_THREADS = 8
    N_OPS = 60

    def test_hammer(self, root):
        errors = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(index: int) -> None:
            # Half the workers share the default partition, half use a
            # private namespace — both paths must survive interleaving.
            namespace = f"c{index % 2}" if index % 2 else None
            store = ArtifactStore(root, namespace=namespace)
            barrier.wait()
            try:
                for op in range(self.N_OPS):
                    key = _key(f"k{op % 7}")
                    store.put(key, f"payload-{index}-{op}", "profile")
                    got = store.get(key)
                    # A concurrent clear may turn the read into a miss;
                    # a hit must be one writer's complete payload.
                    if got is not None:
                        assert got.startswith("payload-")
                    if op % 13 == 0:
                        store.clear()
                    if op % 11 == 0:
                        report = store.verify()
                        assert report["checked"] >= report["evicted"]
                    if op % 9 == 0:
                        store.stats()
            except Exception as error:  # noqa: BLE001 — collect, don't die
                errors.append((index, repr(error)))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        # The store is intact afterwards: verify walks every partition
        # and finds only well-formed entries.
        report = ArtifactStore(root).verify()
        assert report["evicted"] == 0

    def test_put_race_single_key(self, root):
        """Many writers racing one key: last publication wins, every
        read observes one writer's payload in full, never interleaved
        bytes."""
        stores = [ArtifactStore(root) for _ in range(6)]
        barrier = threading.Barrier(len(stores))
        key = _key("hot")
        seen = []
        lock = threading.Lock()

        def writer(store, index):
            barrier.wait()
            for round_no in range(40):
                store.put(key, f"writer-{index}", "ir")
                got = store.get(key)
                with lock:
                    seen.append(got)

        threads = [threading.Thread(target=writer, args=(s, i))
                   for i, s in enumerate(stores)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(got is not None and got.startswith("writer-")
                   for got in seen)
        assert not list((ArtifactStore(root)._objects_dir() / key[:2])
                        .glob(".tmp-*")), "stray tempfiles left behind"

    def test_eviction_race_tolerated(self, root):
        """verify() racing clear() must not raise on entries vanishing
        mid-walk."""
        store = ArtifactStore(root)
        for i in range(50):
            store.put(_key(f"k{i}"), f"p{i}", "profile")
        stop = threading.Event()
        errors = []

        def clearer():
            while not stop.is_set():
                store.clear()
                for i in range(10):
                    store.put(_key(f"r{i}"), f"p{i}", "profile")

        def verifier():
            try:
                for _ in range(30):
                    store.verify()
                    store.stats()
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))
            finally:
                stop.set()

        t1 = threading.Thread(target=clearer)
        t2 = threading.Thread(target=verifier)
        t1.start()
        t2.start()
        t2.join()
        t1.join()
        assert errors == []

    def test_corrupt_namespaced_entry_evicted(self, root):
        store = ArtifactStore(root, namespace="c9")
        store.put(_key("good"), "good-payload", "ir")
        store.put(_key("bad"), "bad-payload", "ir")
        for entry in store._entry_files():
            doc = json.loads(entry.read_text())
            if doc["payload"] == "bad-payload":
                doc["payload"] = "tampered"
                entry.write_text(json.dumps(doc))
        report = ArtifactStore(root).verify()
        assert report["by_namespace"]["c9"] == {
            "checked": 2, "ok": 1, "evicted": 1,
        }
        assert store.get(_key("good")) == "good-payload"
        assert store.get(_key("bad")) is None
