"""Shared fixtures: keep the artifact cache out of the repo tree.

Session-backed entry points (the CLI, ``Session()``) default the artifact
store to ``$REPRO_CACHE_DIR`` or ``./.repro-cache``.  Tests must neither
litter the working tree nor share warm artifacts across test cases, so
every test gets a private store under its ``tmp_path``.
"""

import pytest

from repro.session.store import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "repro-cache"))
