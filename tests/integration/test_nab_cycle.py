"""Integration test: the Figure 9 reference cycle in the nab port (§5.2)."""

import pytest

from repro.abstractions import recommend, simulated_leak_with_cycles
from repro.compiler import compile_carmot
from repro.harness import nab_leak_experiment
from repro.workloads import workload


@pytest.fixture(scope="module")
def nab_run():
    nab = workload("nab")
    source = nab.source(nab.test_params, use_case="cycles")
    program = compile_carmot(source, name="nab")
    result, runtime = program.run()
    roi_id = next(rid for rid, roi in program.module.rois.items()
                  if roi.abstraction == "smart_pointers")
    return program, result, runtime, roi_id


class TestCycleDiscovery:
    def test_cycle_found(self, nab_run):
        _, _, runtime, roi_id = nab_run
        cycles = runtime.psecs[roi_id].reachability.find_cycles()
        assert len(cycles) == 1

    def test_cycle_spans_all_four_structures(self, nab_run):
        """molecule -> strand -> residue -> atom -> molecule: allocations
        from four different functions participate (Figure 9)."""
        _, _, runtime, roi_id = nab_run
        cycle = runtime.psecs[roi_id].reachability.find_cycles()[0]
        alloc_fns = set()
        for obj in cycle.nodes:
            meta = runtime.asmt.get(obj)
            assert meta is not None
            alloc_fns.add(meta.alloc_callstack[-1])
        assert {"newmolecule", "addstrand", "copyresidue",
                "newatom"} <= alloc_fns

    def test_weak_edge_targets_oldest_member(self, nab_run):
        """§3.2: break at the node with the oldest access time — the
        molecule, allocated first."""
        _, _, runtime, roi_id = nab_run
        cycle = runtime.psecs[roi_id].reachability.find_cycles()[0]
        target = runtime.asmt.get(cycle.weak_edge.dst)
        assert target.alloc_callstack[-1] == "newmolecule"

    def test_recommendation_renders(self, nab_run):
        _, _, runtime, roi_id = nab_run
        rec = recommend(runtime, roi_id)
        text = rec.render()
        assert "reference cycle" in text
        assert "weak pointer" in text

    def test_scratch_buffers_not_in_cycle(self, nab_run):
        _, _, runtime, roi_id = nab_run
        psec = runtime.psecs[roi_id]
        cycle_nodes = set(psec.reachability.find_cycles()[0].nodes)
        scratch = [
            obj for obj, meta in runtime.asmt.entries().items()
            if meta.kind == "heap" and obj not in cycle_nodes
        ]
        assert scratch  # the over-allocation exists and is separate


class TestLeakAccounting:
    def test_breaking_cycle_reclaims_memory(self, nab_run):
        _, _, runtime, roi_id = nab_run
        psec = runtime.psecs[roi_id]
        held = simulated_leak_with_cycles(psec, runtime.asmt)
        assert held > 0
        cycle = psec.reachability.find_cycles()[0]
        after = simulated_leak_with_cycles(
            psec, runtime.asmt,
            [(cycle.weak_edge.src, cycle.weak_edge.dst)],
        )
        assert after == 0

    def test_leak_report_shape(self):
        report = nab_leak_experiment()
        assert report.leaked_bytes_after < report.leaked_bytes_before
        assert report.still_held_after_fix == 0
        assert 0 < report.reduction_percent < 100
