"""Golden differential: the CLI is a byte-exact client of the service core.

Two contracts, per golden example and per subcommand variant:

1. **CLI == render(core.execute(request))** — every byte a subcommand
   prints (stdout, stderr, exit code) equals rendering the response
   document an in-process :class:`ServiceCore` returns for the same
   request.  The CLI command bodies are therefore pure formatters; any
   stray ``print`` in the orchestration path breaks this suite.
2. **digest identity** — the CLI-side response digest equals the service
   response digest (trivially, since both sides run the same core; the
   check documents the contract the serve bench leg gates end-to-end).

Plus a structural enforcement: ``cli.py`` may not reference the session
orchestration layer at all — no ``Session`` usage, no direct
profile/compile calls.
"""

import inspect
from pathlib import Path

import pytest

import repro.cli as cli_module
from repro.cli import main
from repro.service import (
    DisRequest,
    IrRequest,
    OverheadRequest,
    PsecRequest,
    RecommendRequest,
    RenderOptions,
    RunOptions,
    ServiceCore,
    render_response,
    response_digest,
)

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


@pytest.fixture(autouse=True)
def _run_from_repo_root(monkeypatch):
    monkeypatch.chdir(REPO)


def _example(name: str) -> str:
    return f"examples/{name}.mc"


def _case_matrix(name: str):
    """(argv, request, render options) per subcommand variant."""
    path = _example(name)
    source = (REPO / path).read_text()

    def req(cls, options=RunOptions(), **kwargs):
        return cls(source=source, name=path, options=options, **kwargs)

    return [
        (["recommend", path], req(RecommendRequest), RenderOptions()),
        (["recommend", path, "--json"], req(RecommendRequest),
         RenderOptions(json=True)),
        (["recommend", path, "--show-output"], req(RecommendRequest),
         RenderOptions(show_output=True)),
        (["psec", path], req(PsecRequest), RenderOptions()),
        (["psec", path, "--json"], req(PsecRequest),
         RenderOptions(json=True)),
        (["psec", path, "--cache-stats"], req(PsecRequest),
         RenderOptions(cache_stats=True)),
        (["psec", path, "--vm", "ir"],
         req(PsecRequest, RunOptions(vm="ir")), RenderOptions()),
        (["psec", path, "--prescreen", "safe"],
         req(PsecRequest, RunOptions(prescreen="safe")), RenderOptions()),
        (["overhead", path], req(OverheadRequest), RenderOptions()),
        (["overhead", path, "--json"], req(OverheadRequest),
         RenderOptions(json=True)),
        (["ir", path], req(IrRequest, mode="plain"), RenderOptions()),
        (["ir", path, "--mode", "carmot"], req(IrRequest, mode="carmot"),
         RenderOptions()),
        (["dis", path], req(DisRequest), RenderOptions()),
    ]


@pytest.mark.parametrize("name", EXAMPLES)
def test_cli_output_is_rendered_service_response(name, capsys, tmp_path,
                                                 monkeypatch):
    """Byte equality: subcommand output == render(core.execute(request)).

    The CLI runs against one cache directory and the reference core
    against another, so the comparison also covers cold-vs-cold and
    (within each side) warm runs; stage hits are meta and the pass-stats
    variants carry wall times, so those flags are exercised in the unit
    suites instead.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    core = ServiceCore(cache_dir=str(tmp_path / "core-cache"))
    for argv, request, render in _case_matrix(name):
        exit_code = main(argv)
        captured = capsys.readouterr()
        doc = core.execute(request)
        rendered = render_response(doc, render)
        assert captured.out == rendered.out, argv
        assert captured.err == rendered.err, argv
        assert exit_code == rendered.exit_code, argv


@pytest.mark.parametrize("name", EXAMPLES)
def test_response_digest_is_deterministic_per_example(name, tmp_path):
    """The digest the serve bench gates on: equal requests produce equal
    digests across independent cores, cold or warm."""
    path = _example(name)
    source = (REPO / path).read_text()
    request = PsecRequest(source=source, name=path)
    core_a = ServiceCore(cache_dir=str(tmp_path / "a"))
    core_b = ServiceCore(cache_dir=str(tmp_path / "b"))
    digests = {
        response_digest(core_a.execute(request)),  # cold
        response_digest(core_a.execute(request)),  # warm
        response_digest(core_b.execute(request)),  # cold, separate store
    }
    assert len(digests) == 1


def test_cli_has_no_session_orchestration():
    """Layer enforcement: command bodies route through ServiceCore only.

    The source may not name the session orchestration entry points —
    profiling/compiling from cli.py would bypass the service layer and
    silently fork the CLI and daemon code paths.
    """
    source = inspect.getsource(cli_module)
    assert "Session" not in source
    assert ".profile(" not in source
    assert ".compile(" not in source
    assert "CarmotRuntime" not in source
    # The store import is maintenance-only (the cache subcommand).
    assert "ArtifactStore" in source


def test_cli_error_path_matches_service_error_rendering(tmp_path, capsys,
                                                        monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "broken.mc"
    bad.write_text("int main( {")
    assert main(["psec", str(bad)]) == 1
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err.startswith("error: ")
