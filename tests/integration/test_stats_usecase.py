"""Integration test: the STATS Input-Output-State use case (§5.3).

The "authors' manual classification" for the demo kernel is written down
explicitly; CARMOT's generated classes must match it, and — like the paper's
finding of author misclassifications — a deliberately over-conservative
manual classification is shown to contain PSEs CARMOT proves unnecessary to
copy."""

import pytest

from repro.abstractions import generate_stats, recommend
from repro.compiler import compile_carmot

SOURCE = """
float weights[8];
float best = 1000000.0;
float last_probe = 0.0;

void anneal(int steps) {
  for (int s = 0; s < steps; ++s) {
    #pragma carmot roi abstraction(stats) name(state_dependence)
    {
      float probe = 0.0;
      for (int k = 0; k < 8; ++k) {
        probe += weights[k] * rand_float();
      }
      last_probe = probe;
      if (probe < best) {
        best = probe;
      }
    }
  }
}

int main() {
  rand_seed(5);
  for (int k = 0; k < 8; ++k) weights[k] = rand_float();
  anneal(12);
  print_float(best);
  return 0;
}
"""

#: What the STATS authors would write by hand for this kernel.
MANUAL_INPUT = {f"weights[{i}]" for i in range(8)}
MANUAL_OUTPUT = {"last_probe"}
MANUAL_STATE = {"best"}

#: An over-conservative manual classification (the kind of author
#: misclassification §5.3 reports): weights "might change", so it is put in
#: State, forcing unnecessary copies.
OVERCONSERVATIVE_STATE = MANUAL_STATE | MANUAL_INPUT


@pytest.fixture(scope="module")
def stats_rec():
    program = compile_carmot(SOURCE, name="stats_case")
    _, runtime = program.run()
    roi_id = next(rid for rid, roi in program.module.rois.items()
                  if roi.abstraction == "stats")
    return recommend(runtime, roi_id)


class TestGeneratedClasses:
    def test_input_class_matches_manual(self, stats_rec):
        assert set(stats_rec.input_class) == MANUAL_INPUT

    def test_output_class_matches_manual(self, stats_rec):
        assert set(stats_rec.output_class) == MANUAL_OUTPUT

    def test_state_class_matches_manual(self, stats_rec):
        assert set(stats_rec.state_class) == MANUAL_STATE

    def test_cloneables_become_locals(self, stats_rec):
        """probe and k live entirely within invocations: the extracted
        STATS function declares them locally so threads stay independent."""
        assert {"probe", "k"} <= set(stats_rec.localize)

    def test_finds_overconservative_misclassification(self, stats_rec):
        """CARMOT proves weights[] needs no State copies — the §5.3
        'misclassifications with no impact on correctness but extra
        unnecessary copies'."""
        unnecessary = OVERCONSERVATIVE_STATE - set(stats_rec.state_class)
        assert unnecessary == MANUAL_INPUT

    def test_render_lists_all_classes(self, stats_rec):
        text = stats_rec.render()
        assert "Input" in text and "Output" in text and "State" in text
