"""Golden equivalence: the pass-manager pipeline reproduces the legacy
compiler byte-for-byte.

The files under ``tests/golden/`` were captured from the pre-pass-manager
compiler (one monolithic ``apply_carmot``).  Three checks per example
program:

1. the instrumented CARMOT IR dump matches the golden dump exactly;
2. the legacy entry point (``compile_carmot``) and the named-pipeline
   path (``compile_pipeline(source, "carmot")``) emit identical IR;
3. the profiled PSEC output (text and JSON serializations) matches the
   golden captures exactly.
"""

import json
from pathlib import Path

import pytest

from repro.abstractions import describe_pse
from repro.cli import main
from repro.compiler import compile_carmot, compile_pipeline

REPO = Path(__file__).resolve().parents[2]
GOLDEN = REPO / "tests" / "golden"
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


def _example_path(name: str) -> str:
    # Golden files embed source locations relative to the repo root.
    return f"examples/{name}.mc"


def _source(name: str) -> str:
    return (REPO / _example_path(name)).read_text()


@pytest.fixture(autouse=True)
def _run_from_repo_root(monkeypatch):
    monkeypatch.chdir(REPO)


@pytest.mark.parametrize("name", EXAMPLES)
def test_instrumented_ir_matches_golden(name):
    program = compile_carmot(_source(name), name=_example_path(name))
    golden = (GOLDEN / f"{name}.carmot.ir").read_text()
    assert str(program.module) + "\n" == golden


@pytest.mark.parametrize("name", EXAMPLES)
def test_named_pipeline_matches_legacy_entry_point(name):
    source = _source(name)
    legacy = compile_carmot(source, name=_example_path(name))
    pipeline = compile_pipeline(source, "carmot", name=_example_path(name))
    assert str(pipeline.module) == str(legacy.module)
    assert pipeline.mode is legacy.mode
    assert pipeline.report.access_probes == legacy.report.access_probes
    assert pipeline.report.pin_gates == legacy.report.pin_gates


@pytest.mark.parametrize("name", EXAMPLES)
def test_psec_text_matches_golden(name, capsys):
    assert main(["psec", _example_path(name)]) == 0
    golden = (GOLDEN / f"{name}.psec.txt").read_text()
    assert capsys.readouterr().out == golden


@pytest.mark.parametrize("name", EXAMPLES)
def test_recommend_text_matches_golden(name, capsys):
    """The registry-driven recommendation stack renders the same bytes
    the pre-registry generators did (captured before the refactor)."""
    assert main(["recommend", _example_path(name)]) == 0
    golden = (GOLDEN / f"{name}.recommend.txt").read_text()
    assert capsys.readouterr().out == golden


@pytest.mark.parametrize("name", EXAMPLES)
def test_recommend_json_carries_role_evidence(name, capsys):
    """The versioned document adds role/container evidence and the
    role-driven hint recommendations on top of the unchanged rendering."""
    assert main(["recommend", _example_path(name), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    body = doc["body"]
    assert body["recommend_schema"] >= 1
    kinds = {rec["kind"]
             for roi in body["rois"] for rec in roi["recommendations"]}
    assert "privatization_hint" in kinds
    assert any(roi["roles"] for roi in body["rois"])


@pytest.mark.parametrize("name", EXAMPLES)
def test_psec_json_matches_golden(name):
    program = compile_carmot(_source(name), name=_example_path(name))
    _, runtime = program.run()
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        roi = program.module.rois[roi_id]
        out[roi.name] = {
            "invocations": psec.invocations,
            "sets": {
                set_name: sorted(str(describe_pse(k, psec, runtime.asmt))
                                 for k in keys)
                for set_name, keys in psec.sets().items()
            },
        }
    rendered = json.dumps(out, indent=2, sort_keys=True) + "\n"
    golden = (GOLDEN / f"{name}.psec.json").read_text()
    assert rendered == golden
