"""PSEC soundness across the whole benchmark suite.

The PSEC-specific optimizations must not change what PSEC *means*: on every
workload, the CARMOT build's classification must match the naive build's
for every PSE both track.  PSEs only the naive build reports must be
exactly the variables the selective mem2reg of §4.4.4 legitimately removed
(induction variables and locals never used in any ROI)."""

import pytest

from repro.compiler import compile_baseline, compile_carmot, compile_naive
from repro.workloads import ALL_WORKLOADS

FAST = [w for w in ALL_WORKLOADS if w.name not in ("canneal", "ep")]


def _canonical_sets(runtime, roi_id):
    """Classification keyed by human-resolvable PSE identity (object ids
    differ across builds because promoted allocas shift the counters)."""
    from repro.abstractions import describe_pse

    psec = runtime.psecs[roi_id]
    result = {}
    for key, entry in psec.entries.items():
        if not entry.letters:
            continue
        desc = describe_pse(key, psec, runtime.asmt)
        if key[0] == "var":
            canon = ("var", desc.storage, desc.name)
        else:
            canon = ("mem", desc.name, desc.alloc_loc)
        result[canon] = entry.letters
    return result



@pytest.mark.parametrize("workload", FAST, ids=lambda w: w.name)
def test_program_semantics_preserved(workload):
    source = workload.test_source("openmp")
    outputs = []
    for compiler in (compile_baseline, compile_naive, compile_carmot):
        result, _ = compiler(source, name=workload.name).run()
        outputs.append(result.output)
    assert outputs[0] == outputs[1] == outputs[2]


@pytest.mark.parametrize("workload", FAST, ids=lambda w: w.name)
def test_carmot_classification_matches_naive(workload):
    source = workload.test_source("openmp")
    _, naive_rt = compile_naive(source, name=workload.name).run()
    _, carmot_rt = compile_carmot(source, name=workload.name).run()
    for roi_id in carmot_rt.psecs:
        carmot_sets = _canonical_sets(carmot_rt, roi_id)
        naive_sets = _canonical_sets(naive_rt, roi_id)
        mismatches = [
            (canon, letters, naive_sets.get(canon))
            for canon, letters in carmot_sets.items()
            if canon in naive_sets and naive_sets[canon] != letters
        ]
        assert not mismatches, mismatches[:5]
        missing = [c for c in carmot_sets if c not in naive_sets]
        assert not missing, missing[:5]


@pytest.mark.parametrize("workload", FAST[:6], ids=lambda w: w.name)
def test_naive_only_pses_are_promoted_variables(workload):
    """What the CARMOT PSEC drops must be variables (mem2reg targets),
    never memory PSEs — memory dependences are always preserved."""
    source = workload.test_source("openmp")
    _, naive_rt = compile_naive(source, name=workload.name).run()
    _, carmot_rt = compile_carmot(source, name=workload.name).run()
    for roi_id in naive_rt.psecs:
        naive_sets = _canonical_sets(naive_rt, roi_id)
        carmot_sets = _canonical_sets(carmot_rt, roi_id)
        for canon in naive_sets:
            if canon in carmot_sets:
                continue
            assert canon[0] == "var", (
                f"memory PSE {canon} lost by the optimized build"
            )


@pytest.mark.parametrize("workload", FAST[:6], ids=lambda w: w.name)
def test_psec_invariants_hold(workload):
    source = workload.test_source("openmp")
    _, runtime = compile_carmot(source, name=workload.name).run()
    for psec in runtime.psecs.values():
        psec.check_invariants()
