"""Differential cache tests: a cached profile must be indistinguishable
from a recomputed one — across every event encoding, under fault
injection and budgets, and through the CLI.

Each case runs the same program three ways: cold (populating the store),
warm (every stage hits), and live (``enabled=False`` / ``--no-cache``).
All three must agree byte-for-byte on the serialized profile and, at the
CLI level, on stdout.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.resilience import FaultPlan, parse_budget_spec
from repro.session import Session

SOURCE = """
int work(int n) {
  int i, x, acc;
  acc = 0;
  #pragma carmot roi abstraction(parallel_for)
  for (i = 0; i < n; ++i) {
    x = i * 3;
    acc = acc + x;
  }
  return acc;
}
int main() { print_int(work(40)); return 0; }
"""

#: The three runtime event encodings the differential suite must cover.
ENCODINGS = {
    "object": {"event_encoding": "object"},
    "packed": {"event_encoding": "packed"},
    "packed_sharded": {"event_encoding": "packed", "pipeline_shards": 2},
}

BUDGET = "steps=5000000,heap=1048576,depth=256,retries=2,degrade=1"
FAULTS = "seed=42;crash@1;drop@3"


def _resilient_kwargs():
    spec = parse_budget_spec(BUDGET)
    return {
        "budgets": spec.vm,
        "resilience": spec.runtime,
        "fault_plan": FaultPlan.parse(FAULTS),
        "batch_size": 8,
    }


@pytest.mark.parametrize("encoding", sorted(ENCODINGS))
def test_cached_profile_matches_recomputed(tmp_path, encoding):
    kwargs = ENCODINGS[encoding]
    cached = Session(cache_dir=str(tmp_path / "store"))
    cold = cached.profile(SOURCE, "carmot", **kwargs)
    warm = cached.profile(SOURCE, "carmot", **kwargs)
    live = Session(enabled=False).profile(SOURCE, "carmot", **kwargs)
    assert warm.cached and not cold.cached
    assert cold.payload == warm.payload == live.payload


@pytest.mark.parametrize("encoding", sorted(ENCODINGS))
def test_cached_profile_matches_under_faults_and_budgets(tmp_path, encoding):
    kwargs = dict(ENCODINGS[encoding], **_resilient_kwargs())
    cached = Session(cache_dir=str(tmp_path / "store"))
    cold = cached.profile(SOURCE, "carmot", **kwargs)
    warm = cached.profile(SOURCE, "carmot", **kwargs)
    live = Session(enabled=False).profile(SOURCE, "carmot", **kwargs)
    assert warm.cached
    assert cold.payload == warm.payload == live.payload
    # The degradation report survives the round trip: a degraded cold run
    # must read back as degraded, not silently healthy.
    assert warm.runtime.degraded == live.runtime.degraded


def test_encodings_share_compile_but_not_profile(tmp_path):
    session = Session(cache_dir=str(tmp_path / "store"))
    session.profile(SOURCE, "carmot", **ENCODINGS["object"])
    packed = session.profile(SOURCE, "carmot", **ENCODINGS["packed"])
    assert packed.stages == {"frontend": "hit", "pipeline": "hit",
                             "codegen": "hit", "profile": "miss"}


# -- the CLI as a cache client ----------------------------------------------

@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "work.mc"
    path.write_text(SOURCE)
    return str(path)


def _cli(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestCliCaching:
    def test_psec_output_identical_cold_warm_nocache(
            self, source_file, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "store")]
        cold = _cli(capsys, ["psec", source_file] + cache)
        warm = _cli(capsys, ["psec", source_file] + cache)
        live = _cli(capsys, ["psec", source_file, "--no-cache"])
        assert cold == warm == live

    def test_recommend_identical_under_faults(
            self, source_file, tmp_path, capsys):
        argv = ["recommend", source_file, "--budget", BUDGET,
                "--fault-plan", FAULTS, "--batch-size", "8",
                "--cache-dir", str(tmp_path / "store")]
        assert _cli(capsys, argv) == _cli(capsys, argv)

    def test_cache_stats_reports_stages(self, source_file, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "store")]
        main(["psec", source_file] + cache)
        capsys.readouterr()
        assert main(["psec", source_file, "--cache-stats"] + cache) == 0
        err = capsys.readouterr().err
        assert "cache: frontend=hit pipeline=hit codegen=hit profile=hit" \
            in err

    def test_corrupt_entry_recomputes_identically(
            self, source_file, tmp_path, capsys):
        store = tmp_path / "store"
        cache = ["--cache-dir", str(store)]
        fresh = _cli(capsys, ["psec", source_file] + cache)
        for path in (store / "objects").rglob("*.json"):
            path.write_text(path.read_text()[:40])
        assert _cli(capsys, ["psec", source_file] + cache) == fresh

    def test_cache_subcommands(self, source_file, tmp_path, capsys):
        store = tmp_path / "store"
        cache = ["--cache-dir", str(store)]
        _cli(capsys, ["psec", source_file] + cache)

        out = _cli(capsys, ["cache", "stats"] + cache)
        assert "entries" in out and "ir" in out and "profile" in out

        assert main(["cache", "verify"] + cache) == 0

        entries = list((store / "objects").rglob("*.json"))
        entries[0].write_text("{broken")
        assert main(["cache", "verify"] + cache) == 1
        capsys.readouterr()

        _cli(capsys, ["cache", "clear"] + cache)
        assert list((store / "objects").rglob("*.json")) == []

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"
