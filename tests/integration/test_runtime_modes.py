"""Runtime pipeline modes and multi-run merging.

The threaded batching pipeline (§4.6) must produce exactly the PSEC the
deterministic mode produces; multi-run merging must follow the §4.2 rules
on real profiles."""

import pytest

from repro.compiler import compile_carmot, compile_naive
from repro.runtime import merge_psecs
from repro.vm import run_module
from repro.workloads import workload

SOURCE = workload("cg").test_source("openmp")


def _run_with(program, **config_kwargs):
    runtime, hooks = program.make_runtime(**config_kwargs)
    run_module(program.module, hooks=hooks)
    return runtime


class TestThreadedPipeline:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_threaded_matches_deterministic(self, workers):
        program = compile_carmot(SOURCE, name="cg")
        deterministic = _run_with(program, threaded=False, batch_size=64)
        threaded = _run_with(program, threaded=True, batch_size=64,
                             worker_count=workers)
        for roi_id, expected in deterministic.psecs.items():
            actual = threaded.psecs[roi_id]
            assert actual.invocations == expected.invocations
            assert set(actual.entries) == set(expected.entries)
            for key, entry in expected.entries.items():
                assert actual.entries[key].letters == entry.letters, key

    def test_small_batches_match_large(self):
        program = compile_carmot(SOURCE, name="cg")
        small = _run_with(program, batch_size=2)
        large = _run_with(program, batch_size=65536)
        for roi_id, expected in small.psecs.items():
            actual = large.psecs[roi_id]
            for key, entry in expected.entries.items():
                assert actual.entries[key].letters == entry.letters


class TestMultiRunMerge:
    def test_merging_identical_runs_is_idempotent_on_letters(self):
        program = compile_carmot(SOURCE, name="cg")
        first = _run_with(program)
        second = _run_with(program)
        for roi_id in first.psecs:
            merged = merge_psecs(first.psecs[roi_id], second.psecs[roi_id])
            merged.check_invariants()
            for key, entry in first.psecs[roi_id].entries.items():
                if entry.letters:
                    assert merged.classification_of(key) == entry.letters

    def test_merged_invocations_accumulate(self):
        program = compile_carmot(SOURCE, name="cg")
        first = _run_with(program)
        second = _run_with(program)
        for roi_id in first.psecs:
            merged = merge_psecs(first.psecs[roi_id], second.psecs[roi_id])
            assert merged.invocations == (
                first.psecs[roi_id].invocations
                + second.psecs[roi_id].invocations
            )


class TestProfilingDeterminism:
    def test_repeated_runs_identical(self):
        program = compile_naive(SOURCE, name="cg")
        a = _run_with(program)
        b = _run_with(program)
        for roi_id in a.psecs:
            sets_a = {k: sorted(map(str, v))
                      for k, v in a.psecs[roi_id].sets().items()}
            sets_b = {k: sorted(map(str, v))
                      for k, v in b.psecs[roi_id].sets().items()}
            assert sets_a == sets_b
