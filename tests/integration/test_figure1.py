"""Integration test: the paper's Figure 1 worked example (§2.2).

Expected end-to-end behaviour: a and b are shared (Input only), x and i are
private (x Cloneable, i the privatized induction variable), y lands in the
Transfer set and — because its update is a division, which is not an OpenMP
reduction operator — its statement must be wrapped in critical/ordered."""

import pytest

from repro.abstractions import recommend
from repro.compiler import compile_baseline, compile_carmot, compile_naive

FIGURE1 = """
int work(int a, int b) {
  int i, x, y;
  y = 42;
  for (i = 0; i < 10; ++i) {
    #pragma carmot roi abstraction(parallel_for)
    {
      x = i / (a + b);
      y /= a * x + b;
    }
  }
  return y;
}
int main() { print_int(work(3, 4)); return 0; }
"""


@pytest.fixture(scope="module")
def carmot_run():
    program = compile_carmot(FIGURE1, name="fig1")
    result, runtime = program.run()
    return program, result, runtime


def _names(psec, keys):
    return sorted(
        psec.entries[k].var.name for k in keys
        if psec.entries[k].var is not None
    )


class TestClassification:
    def test_a_b_input_only(self, carmot_run):
        _, _, runtime = carmot_run
        psec = runtime.psecs[0]
        sets = psec.sets()
        assert {"a", "b"} <= set(_names(psec, sets["input"]))
        for name in ("a", "b"):
            assert name not in _names(psec, sets["output"])
            assert name not in _names(psec, sets["transfer"])

    def test_x_cloneable(self, carmot_run):
        _, _, runtime = carmot_run
        sets = runtime.psecs[0].sets()
        assert "x" in _names(runtime.psecs[0], sets["cloneable"])

    def test_y_transfer_input_output(self, carmot_run):
        """y follows ε -Rf-> I -Wn-> IO -Rf-> TIO exactly as §4.1 traces."""
        _, _, runtime = carmot_run
        psec = runtime.psecs[0]
        y_keys = [k for k, e in psec.entries.items()
                  if e.var is not None and e.var.name == "y"]
        assert len(y_keys) == 1
        assert psec.classification_of(y_keys[0]) == frozenset("TIO")

    def test_i_promoted_out_of_psec(self, carmot_run):
        """Opt 4 promotes the loop-governing induction variable (§4.4.4)."""
        _, _, runtime = carmot_run
        psec = runtime.psecs[0]
        names = {e.var.name for e in psec.entries.values()
                 if e.var is not None}
        assert "i" not in names


class TestRecommendation:
    def test_pragma_text(self, carmot_run):
        _, _, runtime = carmot_run
        rec = recommend(runtime, 0)
        assert rec.pragma_text() == (
            "#pragma omp parallel for private(i, x) shared(a, b) ordered"
        )

    def test_y_needs_manual_synchronization(self, carmot_run):
        _, _, runtime = carmot_run
        rec = recommend(runtime, 0)
        assert not rec.reductions  # division is not reducible
        assert [a.pse_name for a in rec.ordered] == ["y"]

    def test_no_lastprivate(self, carmot_run):
        """x is dead after the loop: private, not lastprivate (§2.2)."""
        _, _, runtime = carmot_run
        rec = recommend(runtime, 0)
        assert rec.lastprivate == []
        assert rec.firstprivate == []


class TestBuildEquivalence:
    def test_all_builds_agree_on_output(self):
        results = []
        for compiler in (compile_baseline, compile_naive, compile_carmot):
            result, _ = compiler(FIGURE1, name="fig1").run()
            results.append((result.output, result.return_value))
        assert results[0] == results[1] == results[2]

    def test_carmot_cheaper_than_naive(self):
        naive, _ = compile_naive(FIGURE1, name="fig1").run()
        carmot, _ = compile_carmot(FIGURE1, name="fig1").run()
        assert carmot.cost < naive.cost / 2

    def test_naive_and_carmot_sets_agree(self):
        _, naive_rt = compile_naive(FIGURE1, name="fig1").run()
        _, carmot_rt = compile_carmot(FIGURE1, name="fig1").run()
        naive_by_name = {
            e.var.name: e.letters
            for e in naive_rt.psecs[0].entries.values()
            if e.var is not None and e.letters
        }
        for entry in carmot_rt.psecs[0].entries.values():
            if entry.var is None or not entry.letters:
                continue
            assert naive_by_name[entry.var.name] == entry.letters
