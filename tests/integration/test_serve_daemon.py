"""Integration tests for the ``repro serve`` daemon.

Each test boots a real daemon (asyncio Unix-socket server in a thread)
and talks to it with :class:`ServiceClient` — the exact transport the
``repro request`` subcommand and the serve bench leg use.
"""

import asyncio
import threading

import pytest

from repro.service import (
    PsecRequest,
    RecommendRequest,
    ServiceClient,
    ServiceCore,
    response_digest,
)
from repro.service.client import ServiceUnavailable, wait_for_daemon
from repro.service.daemon import ServeDaemon

ROI_SOURCE = """
int main() {
    int a[8];
    int sum;
    sum = 0;
    for (int r = 0; r < 4; ++r) {
        #pragma carmot roi abstraction(parallel_for)
        {
            for (int i = 0; i < 8; ++i) {
                a[i] = a[i] + r;
                sum = sum + a[i];
            }
        }
    }
    print_int(sum);
    return 0;
}
"""

#: A slower subject for queue-pressure tests: enough iterations that a
#: request occupies its worker for a visible slice.
SLOW_SOURCE = """
int main() {
    int sum;
    sum = 0;
    #pragma carmot roi abstraction(parallel_for)
    {
        for (int i = 0; i < 2000; ++i) {
            sum = sum + i % 17;
        }
    }
    print_int(sum);
    return 0;
}
"""


class _Daemon:
    """Context manager running one ServeDaemon in a background thread."""

    def __init__(self, tmp_path, **kwargs):
        self.socket_path = str(tmp_path / "serve.sock")
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        self.daemon = ServeDaemon(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.run()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        wait_for_daemon(self.socket_path)
        return self

    def __exit__(self, *exc_info):
        if self.thread.is_alive():
            try:
                with ServiceClient(self.socket_path) as client:
                    client.shutdown()
            except ServiceUnavailable:
                pass
            self.thread.join(timeout=10)

    def client(self, namespace=None):
        return ServiceClient(self.socket_path, namespace=namespace)


class TestServeBasics:
    def test_ping_and_stats(self, tmp_path):
        with _Daemon(tmp_path) as server:
            with server.client() as client:
                pong = client.ping()
                assert pong["ok"] and pong["kind"] == "ping"
                stats = client.stats()["body"]
                assert stats["requests"]["total"] == 0
                assert stats["workers"] == 4

    def test_response_matches_in_process_core(self, tmp_path):
        request = PsecRequest(source=ROI_SOURCE, name="daemon")
        oracle = ServiceCore(cache_dir=str(tmp_path / "oracle"))
        expected = response_digest(oracle.execute(request))
        with _Daemon(tmp_path) as server:
            with server.client(namespace="c0") as client:
                doc = client.request(request)
        assert doc["ok"]
        assert response_digest(doc) == expected
        assert doc["meta"]["serve"]["namespace"] == "c0"

    def test_unknown_kind_yields_error_envelope(self, tmp_path):
        with _Daemon(tmp_path) as server:
            with server.client() as client:
                doc = client.call({"kind": "transmogrify"})
        assert doc["ok"] is False
        assert "unknown request kind" in doc["error"]["message"]

    def test_invalid_namespace_rejected(self, tmp_path):
        request = PsecRequest(source=ROI_SOURCE, name="daemon")
        with _Daemon(tmp_path) as server:
            with server.client(namespace=None) as client:
                doc = client.call(
                    {**request.to_doc(), "namespace": "../../etc"}
                )
        assert doc["ok"] is False
        assert "invalid namespace" in doc["error"]["message"]

    def test_toolchain_error_does_not_kill_daemon(self, tmp_path):
        with _Daemon(tmp_path) as server:
            with server.client() as client:
                bad = client.request(
                    PsecRequest(source="int main( {", name="broken")
                )
                assert bad["ok"] is False
                # The daemon survives and serves the next request.
                good = client.request(
                    PsecRequest(source=ROI_SOURCE, name="daemon")
                )
                assert good["ok"] is True


class TestServeConcurrency:
    N_CLIENTS = 8

    def test_concurrent_clients_digest_identical(self, tmp_path):
        """The acceptance floor: 8 concurrent clients, mixed kinds, every
        response byte-equivalent (digest) to the in-process core."""
        requests = [
            PsecRequest(source=ROI_SOURCE, name="daemon"),
            RecommendRequest(source=ROI_SOURCE, name="daemon"),
        ]
        oracle_core = ServiceCore(cache_dir=str(tmp_path / "oracle"))
        oracle = [response_digest(oracle_core.execute(r)) for r in requests]

        with _Daemon(tmp_path) as server:
            barrier = threading.Barrier(self.N_CLIENTS)
            failures = []

            def run_client(index):
                try:
                    with server.client(namespace=f"c{index}") as client:
                        barrier.wait()
                        for request, expected in zip(requests, oracle):
                            doc = client.request(request)
                            if not doc.get("ok"):
                                failures.append((index, doc.get("error")))
                            elif response_digest(doc) != expected:
                                failures.append((index, "digest mismatch"))
                except Exception as error:  # noqa: BLE001
                    failures.append((index, repr(error)))

            threads = [threading.Thread(target=run_client, args=(i,))
                       for i in range(self.N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert failures == []

            with server.client() as client:
                stats = client.stats()["body"]
            assert stats["requests"]["completed"] \
                == self.N_CLIENTS * len(requests)
            assert stats["requests"]["errors"] == 0
            # Each namespace is an isolated partition: every client's
            # first request misses, its second hits the shared profile.
            assert stats["stage_hits"]["profile"]["miss"] == self.N_CLIENTS
            assert stats["stage_hits"]["profile"]["hit"] == self.N_CLIENTS
            assert sorted(stats["store"]["by_namespace"]) \
                == [f"c{i}" for i in range(self.N_CLIENTS)]

    def test_shed_policy_answers_overloaded(self, tmp_path):
        """Past the queue bound the shed policy returns the canonical
        overloaded envelope instead of parking the request."""
        with _Daemon(tmp_path, workers=1, queue_bound=1,
                     queue_policy="shed") as server:
            n = 6
            barrier = threading.Barrier(n)
            outcomes = []
            lock = threading.Lock()

            def run_client(index):
                request = PsecRequest(source=SLOW_SOURCE,
                                      name=f"slow{index}")
                with server.client(namespace=f"c{index}") as client:
                    barrier.wait()
                    doc = client.request(request)
                    with lock:
                        if doc.get("ok"):
                            outcomes.append("ok")
                        else:
                            outcomes.append(doc["error"]["type"])

            threads = [threading.Thread(target=run_client, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert "ok" in outcomes, outcomes
            assert "overloaded" in outcomes, outcomes
            assert set(outcomes) <= {"ok", "overloaded"}

            with server.client() as client:
                stats = client.stats()["body"]
            assert stats["requests"]["overloaded"] == \
                outcomes.count("overloaded")

    def test_block_policy_never_sheds(self, tmp_path):
        with _Daemon(tmp_path, workers=1, queue_bound=0,
                     queue_policy="block") as server:
            n = 4
            results = []
            lock = threading.Lock()

            def run_client(index):
                request = PsecRequest(source=SLOW_SOURCE, name="slow")
                with server.client(namespace=f"c{index}") as client:
                    doc = client.request(request)
                    with lock:
                        results.append(doc["ok"])

            threads = [threading.Thread(target=run_client, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == [True] * n


class TestServeLifecycle:
    def test_shutdown_drains_and_removes_socket(self, tmp_path):
        server = _Daemon(tmp_path)
        with server:
            with server.client() as client:
                doc = client.shutdown()
            assert doc["ok"] and doc["kind"] == "shutdown"
            server.thread.join(timeout=10)
            assert not server.thread.is_alive()
        import os
        assert not os.path.exists(server.socket_path)

    def test_requests_after_shutdown_are_overloaded(self, tmp_path):
        """A draining daemon sheds new work with the canonical envelope
        (clients see 'server overloaded', exit code 2 semantics)."""
        with _Daemon(tmp_path, workers=1) as server:
            hold = server.client(namespace="c0").connect()
            try:
                # Park one slow request so the daemon is still draining
                # when the shutdown lands.
                slow_doc = {
                    **PsecRequest(source=SLOW_SOURCE, name="slow").to_doc(),
                    "namespace": "c0",
                }
                from repro.service.wire import write_frame_sync
                write_frame_sync(hold._sock, slow_doc)
                with server.client() as control:
                    control.shutdown()
                refused = None
                try:
                    with server.client(namespace="c1") as late:
                        refused = late.request(
                            PsecRequest(source=ROI_SOURCE, name="late")
                        )
                except (ServiceUnavailable, OSError):
                    pass  # connection refused or reset: equally refused
                if refused is not None:
                    assert refused["ok"] is False
                    assert refused["error"]["type"] == "overloaded"
                # The parked request still completes (drain semantics).
                from repro.service.wire import read_frame_sync
                finished = read_frame_sync(hold._sock)
                assert finished is not None and finished["ok"]
            finally:
                hold.close()

    def test_client_reports_missing_daemon(self, tmp_path):
        with pytest.raises(ServiceUnavailable, match="cannot connect"):
            ServiceClient(str(tmp_path / "nope.sock")).connect()
