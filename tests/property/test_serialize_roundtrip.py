"""Round-trip properties of the versioned IR and profile serializers.

The artifact cache is only sound if serialization is a *normal form*:

- ``serialize(deserialize(serialize(m)))`` must equal ``serialize(m)``
  byte-for-byte, for every build mode (byte-identity);
- digests must not depend on process state — two interpreters with
  different hash seeds must agree (digest stability);
- a deserialized profile must preserve PSEC set membership *exactly* —
  a single element migrating between sets would silently change
  recommendations served from cache.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_baseline, compile_carmot, compile_naive
from repro.compiler.driver import frontend
from repro.ir.serialize import (
    deserialize_module,
    module_digest,
    serialize_module,
)
from repro.runtime.psec import SET_NAMES
from repro.runtime.psec_json import (
    deserialize_profile,
    psec_sets_digest,
    serialize_profile,
)

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]
BUILDS = {
    "plain": lambda src, name: frontend(src, name),
    "baseline": lambda src, name: compile_baseline(src, name).module,
    "naive": lambda src, name: compile_naive(src, name=name).module,
    "carmot": lambda src, name: compile_carmot(src, name=name).module,
}


def _source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


# -- IR byte-identity --------------------------------------------------------

@pytest.mark.parametrize("example", EXAMPLES)
@pytest.mark.parametrize("build", sorted(BUILDS))
def test_ir_roundtrip_is_byte_identical(example, build):
    module = BUILDS[build](_source(example), example)
    text = serialize_module(module)
    again = serialize_module(deserialize_module(text))
    assert again == text


@pytest.mark.parametrize("example", EXAMPLES)
def test_ir_roundtrip_preserves_rendering(example):
    module = compile_carmot(_source(example), name=example).module
    restored = deserialize_module(serialize_module(module))
    assert str(restored) == str(module)
    assert module_digest(restored) == module_digest(module)


@settings(max_examples=25, deadline=None)
@given(
    bound=st.integers(1, 12),
    step=st.integers(1, 4),
    seed_val=st.integers(-40, 40),
    op=st.sampled_from(["+", "-", "*", "&", "^"]),
)
def test_generated_programs_roundtrip(bound, step, seed_val, op):
    source = f"""
    int main() {{
      int i, acc;
      acc = {seed_val if seed_val >= 0 else f"(0 - {-seed_val})"};
      #pragma carmot roi abstraction(parallel_for)
      for (i = 0; i < {bound}; i = i + {step}) {{
        acc = acc {op} i;
      }}
      print_int(acc);
      return 0;
    }}
    """
    for build in ("plain", "carmot"):
        module = BUILDS[build](source, "gen")
        text = serialize_module(module)
        assert serialize_module(deserialize_module(text)) == text


# -- digest stability across processes ---------------------------------------

_DIGEST_SCRIPT = """
import sys
from repro.compiler import compile_carmot
from repro.ir.serialize import module_digest
source = open(sys.argv[1]).read()
print(module_digest(compile_carmot(source, name="stable").module))
"""


def test_module_digest_stable_across_process_hash_seeds(tmp_path):
    script = tmp_path / "digest.py"
    script.write_text(_DIGEST_SCRIPT)
    digests = set()
    for seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=str(REPO / "src"))
        out = subprocess.run(
            [sys.executable, str(script),
             str(REPO / "examples" / "roi_loop.mc")],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, f"digest varies with hash seed: {digests}"


# -- profile round-trip ------------------------------------------------------

def _profiled(example):
    program = compile_carmot(_source(example), name=example)
    result, runtime = program.run()
    return result, runtime


@pytest.mark.parametrize("example", EXAMPLES)
def test_profile_roundtrip_is_byte_identical(example):
    result, runtime = _profiled(example)
    text = serialize_profile(runtime, result)
    profile = deserialize_profile(text, runtime.module)
    assert serialize_profile(profile, profile.result) == text


@pytest.mark.parametrize("example", EXAMPLES)
def test_profile_roundtrip_preserves_set_membership(example):
    result, runtime = _profiled(example)
    profile = deserialize_profile(
        serialize_profile(runtime, result), runtime.module
    )
    assert set(profile.psecs) == set(runtime.psecs)
    for roi, live in runtime.psecs.items():
        restored = profile.psecs[roi].sets()
        for set_name in SET_NAMES:
            assert restored[set_name] == live.sets()[set_name], \
                f"{example} roi {roi}: {set_name} membership changed"
    assert psec_sets_digest(profile.psecs) == psec_sets_digest(runtime.psecs)
