"""Differential testing: the packed encoding against the object oracle.

The object event encoding is kept as the differential-testing oracle for
the packed hot path: for the three golden example programs, for seeded
random loop-shaped event streams (including heavily run-merged ones), and
under fault plans and event budgets, the packed encoding — deterministic
drain and sharded fold alike — must produce byte-identical PSEC output
and identical degradation reports.
"""

import json
from pathlib import Path

import pytest

from repro.abstractions import describe_pse
from repro.compiler import compile_carmot
from repro.harness.bench import (
    _STREAM_SHAPES,
    _digest,
    _make_stream,
    _replay_object,
    _replay_packed,
    _resolve_ops,
    _stream_runtime,
)
from repro.resilience import FaultPlan, ResiliencePolicy

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


def _example_source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


def _psec_json(program, runtime) -> str:
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        roi = program.module.rois[roi_id]
        out[roi.name] = {
            "invocations": psec.invocations,
            "total_accesses": psec.total_accesses,
            "use_records": psec.use_records,
            "sets": {
                set_name: sorted(str(describe_pse(k, psec, runtime.asmt))
                                 for k in keys)
                for set_name, keys in psec.sets().items()
            },
        }
    return json.dumps(out, indent=2, sort_keys=True)


def _entry_state(runtime):
    """Full per-entry observable state, not just the four sets."""
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        out[roi_id] = (
            psec.total_accesses,
            psec.use_records,
            psec.invocations,
            {
                str(key): (
                    entry.letters, entry.access_count, entry.first_time,
                    entry.last_time, entry.forced,
                    sorted(map(str, entry.uses)),
                )
                for key, entry in psec.entries.items()
            },
        )
    return out


@pytest.mark.parametrize("name", EXAMPLES)
def test_golden_examples_identical_across_encodings(name):
    source = _example_source(name)
    outputs = {}
    for encoding, shards in (("object", 0), ("packed", 0), ("packed", 2)):
        program = compile_carmot(source, name=f"examples/{name}.mc")
        result, runtime = program.run(event_encoding=encoding,
                                      pipeline_shards=shards)
        outputs[(encoding, shards)] = (result.output,
                                       _psec_json(program, runtime))
    assert outputs[("object", 0)] == outputs[("packed", 0)]
    assert outputs[("object", 0)] == outputs[("packed", 2)]


@pytest.mark.parametrize("shape", sorted(_STREAM_SHAPES))
@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_random_streams_identical_across_encodings(shape, seed):
    """Seeded loop-shaped streams (the scalar_loop shape exercises heavy
    run merging; array_walk exercises the unmerged full path)."""
    ops, vars_by_obj, locs, callstacks = _make_stream(seed, 4000, shape)
    states = []
    for encoding, shards in (("object", 0), ("packed", 0), ("packed", 3)):
        runtime = _stream_runtime(encoding, batch_size=128, shards=shards)
        resolved = _resolve_ops(
            ops, vars_by_obj, locs, callstacks,
            runtime if encoding == "packed" else None,
        )
        replay = _replay_packed if encoding == "packed" else _replay_object
        replay(runtime, resolved, 250)
        states.append((_digest(runtime), _entry_state(runtime)))
    assert states[0] == states[1]
    assert states[0] == states[2]


def _run_example(name, encoding, **kwargs):
    program = compile_carmot(_example_source(name),
                             name=f"examples/{name}.mc")
    _, runtime = program.run(event_encoding=encoding, **kwargs)
    return program, runtime


@pytest.mark.parametrize("name", EXAMPLES)
def test_fault_plan_degradation_identical_across_encodings(name):
    """Faults target batch sequence numbers, so this also pins the
    batch-boundary parity of the two encodings: run merging counts events,
    not rows, when filling a batch."""
    def run(encoding):
        program, runtime = _run_example(
            name, encoding, batch_size=16,
            fault_plan=FaultPlan.parse("seed=7;crash@1;drop@2;slow@3:100"),
            resilience=ResiliencePolicy(max_retries=1, degrade=True,
                                        max_queue_batches=4),
        )
        return runtime.degradation.to_json(), _psec_json(program, runtime)

    report_object, psec_object = run("object")
    report_packed, psec_packed = run("packed")
    assert report_object == report_packed
    assert psec_object == psec_packed


@pytest.mark.parametrize("name", ["roi_loop", "anneal_stats"])
def test_event_budget_identical_across_encodings(name):
    def run(encoding):
        program, runtime = _run_example(
            name, encoding, batch_size=16,
            resilience=ResiliencePolicy(max_events_per_roi=20, degrade=True),
        )
        return runtime.degradation.to_json(), _psec_json(program, runtime)

    assert run("object") == run("packed")
