"""Differential testing: hybrid static+dynamic PSEC against fully-dynamic.

The prescreen contract (DESIGN.md §14) promises that a build with
``--prescreen safe|aggressive`` produces **identical Sets** to the
fully-dynamic build — the static verdicts are only admissible because
they are indistinguishable from profiling.  This suite holds the hybrid
build to that promise across the golden examples, seeded random ROI
programs, both execution engines, every packed-batch drain, and fault
plans whose retries force exact replay.
"""

import tempfile
from pathlib import Path

import pytest

from repro.compiler import CarmotOptions, compile_carmot
from repro.resilience import FaultPlan, ResiliencePolicy
from repro.runtime.psec_json import psec_sets_digest
from repro.session import Session
from tests.helpers.progen import random_roi_program

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]
MODES = ["safe", "aggressive"]


def _example_source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


def _profile(source: str, name: str, mode: str = "off", **run_kwargs):
    options = CarmotOptions() if mode == "off" \
        else CarmotOptions(prescreen=mode)
    program = compile_carmot(source, name=name, options=options)
    result, runtime = program.run(**run_kwargs)
    return program, result, runtime


def _state(result, runtime):
    # Instruction/cost totals legitimately differ (stripped probes are
    # instructions the hybrid build never executes); the contract is the
    # program result and the Sets.
    return (result.output, result.access_counts,
            psec_sets_digest(runtime.psecs))


# -- golden examples, both engines --------------------------------------------


@pytest.mark.parametrize("name", EXAMPLES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("vm", ["ir", "bytecode"])
def test_golden_examples_sets_identical(name, mode, vm):
    source = _example_source(name)
    _, off_res, off_rt = _profile(source, name, vm=vm)
    _, hyb_res, hyb_rt = _profile(source, name, mode, vm=vm)
    assert _state(off_res, off_rt) == _state(hyb_res, hyb_rt)


@pytest.mark.parametrize("mode", MODES)
def test_golden_prescreen_actually_strips(mode):
    """Non-vacuity: on the loop kernels the prescreen must prove facts
    and eliminate access events, not trivially agree by doing nothing."""
    for name in ("roi_loop", "stencil_calls"):
        source = _example_source(name)
        program, _, off_rt = _profile(source, name)
        hybrid, _, hyb_rt = _profile(source, name, mode)
        facts = hybrid.module.static_facts
        assert facts is not None and len(facts) > 0
        assert hybrid.report.static_suppressed_probes > 0
        assert hyb_rt.stats.access_events < off_rt.stats.access_events
        assert hyb_rt.stats.static_probe_events > 0


# -- seeded random ROI programs -----------------------------------------------


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("mode", MODES)
def test_random_roi_programs_sets_identical(seed, mode):
    source = random_roi_program(seed)
    name = f"rand_roi{seed}"
    _, off_res, off_rt = _profile(source, name)
    _, hyb_res, hyb_rt = _profile(source, name, mode)
    assert _state(off_res, off_rt) == _state(hyb_res, hyb_rt)


@pytest.mark.parametrize("seed", range(4))
def test_random_roi_programs_across_engines(seed):
    """The hybrid build itself must stay engine-independent: probe.static
    dispatch and note resolution agree between tree-walk and bytecode."""
    source = random_roi_program(50 + seed)
    states = {}
    for vm in ("ir", "bytecode"):
        _, res, rt = _profile(source, f"rand_roi{seed}", "aggressive",
                              vm=vm)
        states[vm] = _state(res, rt)
    assert states["ir"] == states["bytecode"]


# -- drains -------------------------------------------------------------------


@pytest.mark.parametrize("drain", ["inproc", "threads", "procs"])
@pytest.mark.parametrize("mode", MODES)
def test_drains_sets_identical(drain, mode):
    source = _example_source("roi_loop")
    kwargs = dict(event_encoding="packed", pipeline_shards=2, drain=drain)
    _, off_res, off_rt = _profile(source, "roi_loop", **kwargs)
    _, hyb_res, hyb_rt = _profile(source, "roi_loop", mode, **kwargs)
    assert _state(off_res, off_rt) == _state(hyb_res, hyb_rt)


# -- fault plans --------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_faulted_runs_sets_identical(mode):
    """Deterministic faults (crashed and slow batches, bounded retries)
    hit both builds the same way: Sets and the degradation report must
    stay byte-identical between hybrid and fully-dynamic."""
    kwargs = dict(
        event_encoding="packed", batch_size=16,
        fault_plan=FaultPlan.parse("seed=9;crash@1;slow@2:100"),
        resilience=ResiliencePolicy(max_retries=2, degrade=True),
    )
    source = _example_source("roi_loop")
    _, off_res, off_rt = _profile(source, "roi_loop", **kwargs)
    _, hyb_res, hyb_rt = _profile(source, "roi_loop", mode, **kwargs)
    assert _state(off_res, off_rt) == _state(hyb_res, hyb_rt)
    # Non-vacuity: the dynamic run really was faulted (and recovered).
    # The reports themselves may differ — stripping probes changes batch
    # counts, so seq-targeted faults can miss the hybrid stream — but
    # every surviving record must have folded to complete Sets.
    import json
    off_report = json.loads(off_rt.degradation.to_json())
    assert off_report["records"]
    for report in (off_report, json.loads(hyb_rt.degradation.to_json())):
        assert all(r["sets_complete"] for r in report["records"])


# -- session cache ------------------------------------------------------------


def test_static_facts_artifact_round_trip():
    """Warm sessions load the static-facts sidecar from the store; the
    warm profile is byte-identical to the cold one and the prescreen
    stage reports a hit."""
    source = _example_source("roi_loop")
    options = CarmotOptions(prescreen="aggressive")
    with tempfile.TemporaryDirectory(prefix="repro-prescreen-") as cache:
        session = Session(cache_dir=cache)
        cold = session.profile(source, options=options, name="roi_loop")
        warm = session.profile(source, options=options, name="roi_loop")
    assert cold.stages["prescreen"] == "miss"
    assert warm.stages["prescreen"] == "hit"
    assert warm.stages["profile"] == "hit"
    assert cold.payload == warm.payload


def test_missing_sidecar_demotes_pipeline_to_miss():
    """Evicting the prescreen artifact must force a pipeline recompute,
    never serve a probe.static module without its facts."""
    import json

    source = _example_source("roi_loop")
    options = CarmotOptions(prescreen="safe")
    with tempfile.TemporaryDirectory(prefix="repro-prescreen-") as cache:
        session = Session(cache_dir=cache)
        session.compile(source, options=options, name="roi_loop")
        removed = 0
        for path in Path(cache, "objects").rglob("*.json"):
            if json.loads(path.read_text()).get("kind") == "prescreen":
                path.unlink()
                removed += 1
        assert removed == 1
        again = session.compile(source, options=options, name="roi_loop")
        assert again.stages["pipeline"] == "miss"
        assert again.stages["prescreen"] == "miss"
        facts = again.program.module.static_facts
        assert facts is not None and len(facts) > 0
