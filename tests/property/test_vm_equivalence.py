"""Differential testing: the bytecode engine against the tree-walk oracle.

The IR tree-walk is kept as the differential oracle for the register
bytecode: on the golden examples (both event encodings), on seeded
random MiniC programs, and under fault plans and execution budgets, both
engines must produce byte-identical profiles, equal run results, and the
same failure at the same virtual step.
"""

from pathlib import Path

import pytest

from repro.compiler import (
    CarmotOptions,
    compile_baseline,
    compile_carmot,
    compile_naive,
)
from repro.errors import BudgetExceeded
from repro.resilience import FaultPlan, ResiliencePolicy
from repro.resilience.budgets import ExecutionBudgets
from repro.runtime.psec_json import serialize_profile
from tests.helpers.progen import (
    random_pointer_chase_program as _random_pointer_chase_program,
)
from tests.helpers.progen import random_program as _random_program
from tests.helpers.progen import random_roi_program as _random_roi_program

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


def _example_source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


def _run_state(result):
    return (result.output, result.cost, result.instructions,
            result.access_counts)


# -- golden examples ----------------------------------------------------------


@pytest.mark.parametrize("name", EXAMPLES)
@pytest.mark.parametrize("encoding", ["object", "packed"])
def test_golden_examples_identical_across_engines(name, encoding):
    payloads = {}
    for vm in ("ir", "bytecode"):
        program = compile_carmot(_example_source(name), name=name)
        result, runtime = program.run(vm=vm, event_encoding=encoding)
        payloads[vm] = (serialize_profile(runtime, result),
                        _run_state(result))
    assert payloads["ir"] == payloads["bytecode"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_naive_mode_identical_across_engines(name):
    payloads = {}
    for vm in ("ir", "bytecode"):
        program = compile_naive(_example_source(name), name=name)
        result, runtime = program.run(vm=vm)
        payloads[vm] = (serialize_profile(runtime, result),
                        _run_state(result))
    assert payloads["ir"] == payloads["bytecode"]


# -- seeded random programs (generator shared via tests.helpers.progen) -------


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_identical_across_engines(seed):
    source = _random_program(seed)
    program = compile_baseline(source, name=f"rand{seed}")
    ir = program.run(vm="ir")[0]
    bc = program.run(vm="bytecode")[0]
    assert _run_state(ir) == _run_state(bc)


@pytest.mark.parametrize("seed", range(4))
def test_random_programs_unoptimized_pipeline(seed):
    """The naive pipeline skips mem2reg — every local stays an alloca, so
    this leg exercises the load/store/addr opcodes the optimized builds
    mostly promote away."""
    source = _random_program(100 + seed)
    payloads = {}
    for vm in ("ir", "bytecode"):
        program = compile_naive(source, "stats", name=f"rand{seed}")
        result, runtime = program.run(vm=vm)
        payloads[vm] = (serialize_profile(runtime, result),
                        _run_state(result))
    assert payloads["ir"] == payloads["bytecode"]


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("encoding", ["object", "packed"])
def test_pointer_chase_identical_across_engines(seed, encoding):
    """The pointer-chase family: every iteration's heap access depends
    on the previous iteration's load, so the chased container carries
    Transfer state — the data-dependent addressing path both engines
    must profile identically."""
    source = _random_pointer_chase_program(seed)
    payloads = {}
    for vm in ("ir", "bytecode"):
        program = compile_carmot(source, name=f"chase{seed}")
        result, runtime = program.run(vm=vm, event_encoding=encoding)
        payloads[vm] = (serialize_profile(runtime, result),
                        _run_state(result))
    assert payloads["ir"] == payloads["bytecode"]
    assert any(key[0] == "mem" and "T" in entry.letters
               for psec in runtime.psecs.values()
               for key, entry in psec.entries.items())


# -- tier-2 re-entry: quickening must stay observationally invisible ----------


@pytest.mark.parametrize("seed", range(12))
def test_tier2_reentry_identical_across_engines(seed):
    """Every seeded program goes through tier-2 twice in the same
    process: cold (fusion only — quickening happens as functions are
    first entered) and re-entered (the whole execution stream is already
    quickened).  Both runs must match the tree-walk oracle exactly."""
    source = _random_program(seed)
    program = compile_baseline(source, name=f"requick{seed}")
    oracle = _run_state(program.run(vm="ir")[0])
    cold = _run_state(program.run(vm="bytecode")[0])
    warm = _run_state(program.run(vm="bytecode")[0])
    assert cold == oracle
    assert warm == oracle


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("prescreen", ["off", "aggressive"])
def test_tier2_reentry_instrumented_profiles(seed, prescreen):
    """Cold and re-entered tier-2 runs of instrumented ROI programs —
    with and without the aggressive static prescreen — produce the same
    serialized profile as the tree-walk oracle."""
    source = _random_roi_program(seed)
    program = compile_carmot(source, name=f"requick{seed}",
                             options=CarmotOptions(prescreen=prescreen))

    def run(vm):
        result, runtime = program.run(vm=vm)
        return (serialize_profile(runtime, result), _run_state(result))

    oracle = run("ir")
    assert run("bytecode") == oracle  # cold: fused, quickens on entry
    assert run("bytecode") == oracle  # warm: fully quickened stream


@pytest.mark.parametrize("seed", [0, 3])
def test_tier2_reentry_procs_drain_exit_fault(seed):
    """Tier-2 under the crash-tolerant process drain with an injected
    worker exit: the replayed batches see the same event stream whether
    the producer ran fused/quickened or tree-walk, cold or re-entered."""
    source = _random_roi_program(seed)
    program = compile_carmot(source, name=f"requick_procs{seed}")

    def run(vm):
        result, runtime = program.run(
            vm=vm, event_encoding="packed", batch_size=16,
            pipeline_shards=2, drain="procs",
            fault_plan=FaultPlan.parse("seed=3;exit@1"),
            resilience=ResiliencePolicy(max_retries=2),
        )
        return (runtime.degradation.to_json(),
                serialize_profile(runtime, result), _run_state(result))

    oracle = run("ir")
    assert run("bytecode") == oracle
    assert run("bytecode") == oracle


# -- resilience: faults and budgets -------------------------------------------


@pytest.mark.parametrize("name", EXAMPLES)
def test_fault_plan_degradation_identical_across_engines(name):
    def run(vm):
        program = compile_carmot(_example_source(name), name=name)
        result, runtime = program.run(
            vm=vm, batch_size=16,
            fault_plan=FaultPlan.parse("seed=7;crash@1;drop@2;slow@3:100"),
            resilience=ResiliencePolicy(max_retries=1, degrade=True,
                                        max_queue_batches=4),
        )
        return (runtime.degradation.to_json(),
                serialize_profile(runtime, result), _run_state(result))

    assert run("ir") == run("bytecode")


@pytest.mark.parametrize("name", ["roi_loop", "anneal_stats"])
def test_event_budget_identical_across_engines(name):
    def run(vm):
        program = compile_carmot(_example_source(name), name=name)
        result, runtime = program.run(
            vm=vm, batch_size=16,
            resilience=ResiliencePolicy(max_events_per_roi=20, degrade=True),
        )
        return (runtime.degradation.to_json(),
                serialize_profile(runtime, result), _run_state(result))

    assert run("ir") == run("bytecode")


@pytest.mark.parametrize("max_steps", [10, 100, 1000, 5000])
def test_step_budget_trips_at_the_same_virtual_step(max_steps):
    source = _random_program(0)
    program = compile_baseline(source, name="budget")
    budgets = ExecutionBudgets(max_steps=max_steps)
    outcomes = {}
    for vm in ("ir", "bytecode"):
        try:
            result = program.run(vm=vm, budgets=budgets)[0]
            outcomes[vm] = ("completed", _run_state(result))
        except BudgetExceeded as err:
            outcomes[vm] = ("budget", str(err))
    assert outcomes["ir"] == outcomes["bytecode"]


def test_recursion_budget_identical_across_engines():
    source = """
    int spin(int d) {
        if (d <= 0) { return 0; }
        return 1 + spin(d - 1);
    }
    int main() { print_int(spin(500)); return 0; }
    """
    program = compile_baseline(source, name="deep")
    budgets = ExecutionBudgets(max_recursion_depth=64)
    messages = {}
    for vm in ("ir", "bytecode"):
        with pytest.raises(BudgetExceeded) as excinfo:
            program.run(vm=vm, budgets=budgets)
        messages[vm] = str(excinfo.value)
    assert messages["ir"] == messages["bytecode"]
    assert "recursion depth" in messages["ir"]


def test_instruction_counts_agree_with_trace_length():
    """One dispatch per trace line, and both engines land on the same
    final instruction count even though phi runs fold into one dispatch
    on the bytecode side."""
    import io

    from repro.vm.interpreter import run_module

    program = compile_baseline(_random_program(1), name="trace")
    counts = {}
    for vm in ("ir", "bytecode"):
        stream = io.StringIO()
        result = run_module(program.module, vm=vm, trace_stream=stream)
        counts[vm] = (result.instructions, bool(stream.getvalue()))
    assert counts["ir"][0] == counts["bytecode"][0]
    assert counts["ir"][1] and counts["bytecode"][1]
