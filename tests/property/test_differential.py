"""Differential testing: generated MiniC programs vs a Python oracle, and
the -O3 analogue vs the unoptimized build.

Hypothesis generates small integer expression trees and loop programs; the
VM's result must match direct Python evaluation, and every optimization
level must agree with every other."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_baseline, compile_carmot, compile_naive
from repro.compiler.driver import frontend
from repro.vm import run_module


# -- expression generation ---------------------------------------------------

def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(-50, 50).map(lambda v: (str(v) if v >= 0
                                                else f"(0 - {-v})", v)),
            st.sampled_from([("va", 7), ("vb", -3), ("vc", 11)]),
        )
    sub = _exprs(depth - 1)

    def combine(pair):
        (ltxt, lval), op, (rtxt, rval) = pair
        if op == "+":
            return (f"({ltxt} + {rtxt})", lval + rval)
        if op == "-":
            return (f"({ltxt} - {rtxt})", lval - rval)
        if op == "*":
            return (f"({ltxt} * {rtxt})", lval * rval)
        if op == "<":
            return (f"({ltxt} < {rtxt})", 1 if lval < rval else 0)
        if op == "&":
            return (f"({ltxt} & {rtxt})", lval & rval)
        if op == "^":
            return (f"({ltxt} ^ {rtxt})", lval ^ rval)
        raise AssertionError(op)

    return st.tuples(sub, st.sampled_from("+-*<&^"), sub).map(combine)


@settings(max_examples=60, deadline=None)
@given(_exprs(3))
def test_expression_evaluation_matches_python(pair):
    text, expected = pair
    source = f"""
    int main() {{
      int va = 7; int vb = 0 - 3; int vc = 11;
      int result = {text};
      print_int(result);
      return 0;
    }}
    """
    result = run_module(frontend(source, "fuzz"))
    assert result.output == [str(expected)]


@settings(max_examples=30, deadline=None)
@given(_exprs(3))
def test_o3_agrees_with_unoptimized(pair):
    text, expected = pair
    source = f"""
    int compute(int va, int vb, int vc) {{ return {text}; }}
    int main() {{
      print_int(compute(7, 0 - 3, 11));
      return 0;
    }}
    """
    plain = run_module(frontend(source, "fuzz"))
    optimized, _ = compile_baseline(source, "fuzz").run()
    assert plain.output == optimized.output == [str(expected)]


# -- loop program generation ----------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    trip=st.integers(1, 12),
    stride=st.integers(1, 3),
    init=st.integers(-5, 5),
    update=st.sampled_from(["acc += i", "acc -= i * 2", "acc += arr[i % 8]",
                            "acc ^= i", "arr[i % 8] += 1"]),
    guard=st.booleans(),
)
def test_loop_programs_consistent_across_builds(trip, stride, init, update,
                                                guard):
    body = f"if (i % 2 == 0) {{ {update}; }}" if guard else f"{update};"
    source = f"""
    int arr[8];
    int main() {{
      for (int k = 0; k < 8; ++k) arr[k] = k;
      int acc = {init if init >= 0 else f"0 - {-init}"};
      for (int i = 0; i < {trip * stride}; i = i + {stride}) {{
        #pragma carmot roi abstraction(parallel_for)
        {{ {body} }}
      }}
      print_int(acc);
      print_int(arr[3]);
      return 0;
    }}
    """
    outputs = []
    for compiler in (compile_baseline, compile_naive, compile_carmot):
        result, runtime = compiler(source, name="fuzzloop").run()
        outputs.append(result.output)
        if runtime is not None:
            for psec in runtime.psecs.values():
                psec.check_invariants()
    assert outputs[0] == outputs[1] == outputs[2]
