"""Differential testing: the serve daemon against the tree-walk oracle.

Seeded random ROI programs (shared generator in ``tests.helpers.progen``)
are submitted to a live ``repro serve`` daemon running the bytecode
engine; an in-process :class:`ServiceCore` running the IR tree-walk is
the oracle.  The PSEC ``sets_digest`` and the full response digest must
agree — the daemon transport, its thread pool, its cache namespaces, and
the vm tier may not perturb a single characterized byte.
"""

import asyncio
import threading

import pytest

from repro.service import (
    PsecRequest,
    RecommendRequest,
    RunOptions,
    ServiceClient,
    ServiceCore,
    response_digest,
)
from repro.service.client import wait_for_daemon
from repro.service.daemon import ServeDaemon
from tests.helpers.progen import random_roi_program

SEEDS = range(6)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One daemon shared by the whole module (cold start is the point of
    a daemon; per-seed isolation comes from per-seed program names)."""
    root = tmp_path_factory.mktemp("serve-prop")
    socket_path = str(root / "serve.sock")
    server = ServeDaemon(socket_path, cache_dir=str(root / "cache"),
                         workers=2, queue_bound=0, queue_policy="block")
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    wait_for_daemon(socket_path)
    yield socket_path
    with ServiceClient(socket_path) as client:
        client.shutdown()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """Tree-walk oracle core on its own store."""
    root = tmp_path_factory.mktemp("serve-oracle")
    return ServiceCore(cache_dir=str(root / "cache"))


@pytest.mark.parametrize("seed", SEEDS)
def test_daemon_psec_matches_tree_walk_oracle(seed, daemon, oracle):
    """PSEC through the daemon (bytecode vm) == in-process tree-walk."""
    source = random_roi_program(seed)
    name = f"serveprop{seed}"
    expected = oracle.execute(
        PsecRequest(source=source, name=name, options=RunOptions(vm="ir"))
    )
    request = PsecRequest(source=source, name=name,
                          options=RunOptions(vm="bytecode"))
    with ServiceClient(daemon, namespace=f"s{seed}") as client:
        served = client.request(request)
        warm = client.request(request)
    assert served["ok"], served.get("error")
    assert served["body"]["sets_digest"] == expected["body"]["sets_digest"]
    assert response_digest(served) == response_digest(expected)
    # A warm resubmission replays the cached artifacts bit-for-bit.
    assert warm["meta"]["stages"]["profile"] == "hit"
    assert response_digest(warm) == response_digest(expected)


@pytest.mark.parametrize("seed", [0, 3])
def test_daemon_recommend_matches_oracle(seed, daemon, oracle):
    source = random_roi_program(seed)
    name = f"serveprop{seed}"  # same namespace+name: rides the psec cache
    expected = oracle.execute(
        RecommendRequest(source=source, name=name,
                         options=RunOptions(vm="ir"))
    )
    with ServiceClient(daemon, namespace=f"s{seed}") as client:
        served = client.request(
            RecommendRequest(source=source, name=name,
                             options=RunOptions(vm="bytecode"))
        )
    assert served["ok"], served.get("error")
    assert response_digest(served) == response_digest(expected)


def test_concurrent_seeds_keep_digests_independent(daemon, oracle):
    """All seeds in flight at once, each in its own namespace — responses
    must match their per-seed oracle, never a neighbour's."""
    cases = []
    for seed in SEEDS:
        source = random_roi_program(seed)
        name = f"serveprop{seed}"
        expected = oracle.execute(
            PsecRequest(source=source, name=name,
                        options=RunOptions(vm="ir"))
        )
        cases.append((seed, source, name, response_digest(expected)))

    failures = []
    barrier = threading.Barrier(len(cases))

    def run_case(seed, source, name, expected_digest):
        try:
            request = PsecRequest(source=source, name=name,
                                  options=RunOptions(vm="bytecode"))
            with ServiceClient(daemon, namespace=f"s{seed}") as client:
                barrier.wait()
                served = client.request(request)
            if not served.get("ok"):
                failures.append((seed, served.get("error")))
            elif response_digest(served) != expected_digest:
                failures.append((seed, "digest mismatch"))
        except Exception as error:  # noqa: BLE001
            failures.append((seed, repr(error)))

    threads = [threading.Thread(target=run_case, args=case)
               for case in cases]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert failures == []
