"""Property: DegradationReport serialization is canonical — independent
of the arrival order (and thread interleaving) of its records.

The threaded pipeline and the multi-process drain supervisor both append
records from whatever order failures happen to surface in; the report's
contract is that ``to_dict()``/``to_json()`` erase that nondeterminism.
"""

import json
import random
import threading

import pytest

from repro.resilience.degradation import (
    ACTION_CONSERVATIVE,
    ACTION_FALLBACK,
    ACTION_RETRIED,
    DegradationRecord,
    DegradationReport,
)


def _records(seed: int, n: int):
    rng = random.Random(seed)
    kinds = ["worker_crash", "drop", "shed", "worker_lost", "event-budget"]
    actions = [ACTION_RETRIED, ACTION_CONSERVATIVE, ACTION_FALLBACK]
    return [
        DegradationRecord(
            batch_seq=rng.randrange(-1, 40),
            kind=rng.choice(kinds),
            rois=tuple(sorted(rng.sample(range(4), rng.randint(0, 3)))),
            events=rng.randrange(0, 500),
            action=rng.choice(actions),
            sets_complete=rng.random() < 0.5,
            use_callstacks_complete=rng.random() < 0.5,
            detail=f"detail-{rng.randrange(6)}",
        )
        for _ in range(n)
    ]


def _fill_concurrently(report: DegradationReport, records, n_threads: int,
                       seed: int) -> None:
    """Each thread adds a disjoint slice, interleaved at random."""
    slices = [records[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads)
    rng = random.Random(seed)
    delays = [[rng.random() * 0.0005 for _ in chunk] for chunk in slices]

    def writer(chunk, waits):
        barrier.wait()
        for record, wait in zip(chunk, waits):
            threading.Event().wait(wait)
            report.add(record)

    threads = [
        threading.Thread(target=writer, args=(chunk, waits))
        for chunk, waits in zip(slices, delays)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@pytest.mark.parametrize("seed", [0, 7, 42, 1234])
def test_concurrent_writers_serialize_canonically(seed):
    records = _records(seed, 60)

    # Oracle: sequential insertion in generated order.
    sequential = DegradationReport()
    for record in records:
        sequential.add(record)

    # Same records shuffled and raced across writer threads.
    shuffled = list(records)
    random.Random(seed + 1).shuffle(shuffled)
    concurrent = DegradationReport()
    _fill_concurrently(concurrent, shuffled, n_threads=4, seed=seed)

    assert concurrent.to_json() == sequential.to_json()
    assert concurrent.to_dict() == sequential.to_dict()
    payload = json.loads(concurrent.to_json())
    assert len(payload["records"]) == len(records)


def test_serialization_is_stable_across_repeats():
    records = _records(3, 30)
    outputs = set()
    for trial in range(5):
        shuffled = list(records)
        random.Random(trial).shuffle(shuffled)
        report = DegradationReport()
        _fill_concurrently(report, shuffled, n_threads=3, seed=trial)
        outputs.add(report.to_json())
    assert len(outputs) == 1


def test_records_sorted_by_stable_key():
    report = DegradationReport()
    late = DegradationRecord(batch_seq=9, kind="drop", rois=(1,), events=5,
                             action=ACTION_CONSERVATIVE, sets_complete=False,
                             use_callstacks_complete=False)
    early = DegradationRecord(batch_seq=2, kind="worker_lost", rois=(0,),
                              events=0, action=ACTION_FALLBACK,
                              sets_complete=True,
                              use_callstacks_complete=True)
    report.add(late)
    report.add(early)
    assert [r.batch_seq for r in report.records()] == [2, 9]
    assert json.loads(report.to_json())["records"][0]["kind"] == "worker_lost"
