"""Differential testing: the multi-process drain against the oracles.

The crash-recovery contract (DESIGN.md §13) promises that ``--drain
procs`` is observably identical to the in-process fold for every stream
shape and fault plan: worker kills that recover leave no trace in the
PSEC output or the degradation report, and shed/dropped/crashed batches
degrade byte-identically to the single-threaded engine.
"""

import json
from pathlib import Path

import pytest

from repro.abstractions import describe_pse
from repro.compiler import compile_carmot
from repro.harness.bench import (
    _STREAM_SHAPES,
    _digest,
    _make_stream,
    _replay_packed,
    _resolve_ops,
    _stream_runtime,
)
from repro.resilience import FaultPlan, ResiliencePolicy

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


def _example_source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


def _psec_json(program, runtime) -> str:
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        roi = program.module.rois[roi_id]
        out[roi.name] = {
            "invocations": psec.invocations,
            "total_accesses": psec.total_accesses,
            "use_records": psec.use_records,
            "sets": {
                set_name: sorted(str(describe_pse(k, psec, runtime.asmt))
                                 for k in keys)
                for set_name, keys in psec.sets().items()
            },
        }
    return json.dumps(out, indent=2, sort_keys=True)


def _entry_state(runtime):
    out = {}
    for roi_id, psec in sorted(runtime.psecs.items()):
        out[roi_id] = (
            psec.total_accesses,
            psec.use_records,
            psec.invocations,
            {
                str(key): (
                    entry.letters, entry.access_count, entry.first_time,
                    entry.last_time, entry.forced,
                    sorted(map(str, entry.uses)),
                )
                for key, entry in psec.entries.items()
            },
        )
    return out


@pytest.mark.parametrize("name", EXAMPLES)
def test_golden_examples_identical_under_proc_drain(name):
    source = _example_source(name)
    outputs = {}
    for drain in ("inproc", "procs"):
        program = compile_carmot(source, name=f"examples/{name}.mc")
        result, runtime = program.run(event_encoding="packed",
                                      pipeline_shards=2, drain=drain)
        outputs[drain] = (result.output, _psec_json(program, runtime))
    assert outputs["inproc"] == outputs["procs"]


@pytest.mark.parametrize("shape", sorted(_STREAM_SHAPES))
@pytest.mark.parametrize("seed", [0, 1234])
def test_random_streams_identical_under_proc_drain(shape, seed):
    ops, vars_by_obj, locs, callstacks = _make_stream(seed, 3000, shape)
    states = []
    for drain in ("inproc", "procs"):
        runtime = _stream_runtime("packed", batch_size=128, shards=2,
                                  drain=drain)
        resolved = _resolve_ops(ops, vars_by_obj, locs, callstacks, runtime)
        _replay_packed(runtime, resolved, 250)
        states.append((_digest(runtime), _entry_state(runtime)))
    assert states[0] == states[1]


@pytest.mark.parametrize("shape", sorted(_STREAM_SHAPES))
@pytest.mark.parametrize("plan", ["seed=5;exit@1", "seed=5;exit@1;exit@3"])
def test_worker_kills_recover_to_identical_streams(shape, plan):
    ops, vars_by_obj, locs, callstacks = _make_stream(99, 3000, shape)
    states = []
    reports = []
    for drain, fault_plan in (("inproc", None), ("procs", plan)):
        runtime = _stream_runtime(
            "packed", batch_size=128, shards=2, drain=drain,
            fault_plan=fault_plan,
            resilience=ResiliencePolicy(max_retries=3),
        )
        resolved = _resolve_ops(ops, vars_by_obj, locs, callstacks, runtime)
        _replay_packed(runtime, resolved, 250)
        states.append((_digest(runtime), _entry_state(runtime)))
        reports.append(runtime.degradation.to_json())
    assert states[0] == states[1]
    # Recovered kills are not degradation: both reports are empty.
    assert reports[0] == reports[1]
    assert not json.loads(reports[1])["degraded"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_fault_plan_degradation_identical_under_proc_drain(name):
    """Crashed/dropped batches degrade byte-identically whether the fold
    runs in-process or in supervised worker processes (conservative
    letters are forced worker-side for degraded batches)."""
    def run(drain):
        program = compile_carmot(_example_source(name),
                                 name=f"examples/{name}.mc")
        _, runtime = program.run(
            event_encoding="packed", batch_size=16, pipeline_shards=2,
            drain=drain,
            fault_plan=FaultPlan.parse("seed=7;crash@1;drop@2;slow@3:100"),
            resilience=ResiliencePolicy(max_retries=1, degrade=True,
                                        max_queue_batches=4),
        )
        return runtime.degradation.to_json(), _psec_json(program, runtime)

    assert run("inproc") == run("procs")


def test_retry_exhaustion_still_byte_identical():
    """A persistent kill past the retry budget absorbs the shard into the
    master: the PSEC bytes must not change, only the degradation report
    gains the canonical fallback record."""
    ops, vars_by_obj, locs, callstacks = _make_stream(7, 2000, "mixed_loop")
    states = []
    for drain, fault_plan in (("inproc", None), ("procs", "seed=7;exit@2!")):
        runtime = _stream_runtime(
            "packed", batch_size=128, shards=2, drain=drain,
            fault_plan=fault_plan,
            resilience=ResiliencePolicy(max_retries=1),
        )
        resolved = _resolve_ops(ops, vars_by_obj, locs, callstacks, runtime)
        _replay_packed(runtime, resolved, 250)
        states.append((_digest(runtime), _entry_state(runtime)))
    assert states[0] == states[1]
