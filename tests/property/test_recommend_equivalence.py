"""Differential testing of the recommendation document.

A warm (cache-served) RecommendationDoc must be byte-identical to the
cold one that populated the store — across both runtime event encodings,
both execution engines, and through the service core — and a live
(cache-disabled) doc must match both.  Selection and registry state fold
into the cache key, so distinct selections never alias.
"""

import json
from pathlib import Path

import pytest

from repro.service import RecommendRequest, RunOptions, ServiceCore
from repro.service.core import response_digest
from repro.session import Session
from tests.helpers.progen import (
    random_pointer_chase_program,
    random_roi_program,
)

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = ["roi_loop", "stencil_calls", "anneal_stats"]


def _example_source(name: str) -> str:
    return (REPO / "examples" / f"{name}.mc").read_text()


def _canon(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _doc(session, source, name, recommenders=None, **kwargs):
    profiled = session.profile(source, "carmot", name=name, **kwargs)
    doc, stage = session.recommend_doc(profiled, recommenders=recommenders)
    return doc, stage


@pytest.mark.parametrize("name", EXAMPLES)
@pytest.mark.parametrize("encoding", ["object", "packed"])
@pytest.mark.parametrize("vm", ["ir", "bytecode"])
def test_warm_doc_byte_identical_to_cold(tmp_path, name, encoding, vm):
    source = _example_source(name)
    session = Session(cache_dir=str(tmp_path / "store"))
    kwargs = {"vm": vm, "event_encoding": encoding}
    cold, cold_stage = _doc(session, source, name, **kwargs)
    warm, warm_stage = _doc(session, source, name, **kwargs)
    live, live_stage = _doc(Session(enabled=False), source, name, **kwargs)
    assert (cold_stage, warm_stage, live_stage) == ("miss", "hit", "miss")
    assert _canon(cold) == _canon(warm) == _canon(live)


@pytest.mark.parametrize("name", ["roi_loop"])
def test_docs_agree_across_engines_and_encodings(tmp_path, name):
    """Four cold paths — {ir, bytecode} x {object, packed} — produce the
    same document bytes: the doc depends on the Sets, not on how the
    runtime observed them."""
    source = _example_source(name)
    docs = set()
    for vm in ("ir", "bytecode"):
        for encoding in ("object", "packed"):
            session = Session(
                cache_dir=str(tmp_path / f"{vm}-{encoding}"))
            doc, _ = _doc(session, source, name, vm=vm,
                          event_encoding=encoding)
            docs.add(_canon(doc))
    assert len(docs) == 1


@pytest.mark.parametrize("seed", range(4))
def test_random_roi_programs_warm_equals_cold(tmp_path, seed):
    source = random_roi_program(seed)
    session = Session(cache_dir=str(tmp_path / "store"))
    cold, _ = _doc(session, source, f"rand{seed}")
    warm, stage = _doc(session, source, f"rand{seed}")
    assert stage == "hit"
    assert _canon(cold) == _canon(warm)


@pytest.mark.parametrize("seed", range(3))
def test_pointer_chase_docs_report_carried_dependence(tmp_path, seed):
    """The pointer-chase family's chased container must surface as a
    carried dependence in the role evidence, identically warm and cold."""
    source = random_pointer_chase_program(seed)
    session = Session(cache_dir=str(tmp_path / "store"))
    cold, _ = _doc(session, source, f"chase{seed}")
    warm, stage = _doc(session, source, f"chase{seed}")
    assert stage == "hit"
    assert _canon(cold) == _canon(warm)
    verdicts = {c["verdict"]
                for roi in cold["rois"] for c in roi["containers"]}
    assert "carried-dependence" in verdicts


def test_selection_changes_the_cache_key_not_the_primary(tmp_path):
    source = _example_source("roi_loop")
    session = Session(cache_dir=str(tmp_path / "store"))
    default, _ = _doc(session, source, "roi_loop")
    paper, stage = _doc(session, source, "roi_loop", recommenders="paper")
    assert stage == "miss"  # different selection, different key
    assert default["recommenders"] != paper["recommenders"]
    assert default["rois"][0]["rendered"] == paper["rois"][0]["rendered"]


@pytest.mark.parametrize("name", ["roi_loop", "anneal_stats"])
def test_service_responses_digest_identical_warm_and_cold(tmp_path, name):
    """Through the service core: a cache-served recommend response hashes
    identically to the live one (the body digest ignores meta/stages)."""
    source = _example_source(name)
    core = ServiceCore(cache_dir=str(tmp_path / "store"))
    request = RecommendRequest(source=source, name=name)
    cold = core.execute(request)
    warm = core.execute(request)
    live = core.execute(RecommendRequest(
        source=source, name=name, options=RunOptions(no_cache=True)))
    assert cold["meta"]["stages"]["recommend"] == "miss"
    assert warm["meta"]["stages"]["recommend"] == "hit"
    digests = {response_digest(doc) for doc in (cold, warm, live)}
    assert len(digests) == 1
