"""Shared test helpers (not themselves test modules)."""
