"""Thin shim over :mod:`repro.workloads.fuzz` (the generators' public
home since the recommendation refactor).  Kept so existing suites —
and muscle memory — can keep importing ``helpers.progen``."""

from repro.workloads.fuzz import (  # noqa: F401
    random_pointer_chase_program,
    random_program,
    random_roi_program,
)
