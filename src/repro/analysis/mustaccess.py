"""Must-already-accessed data-flow analysis (optimization 1, §4.4).

For each load/store inside an ROI region, decide whether the PSE it touches
*must* already have been accessed (for loads) or written (for stores) since
the beginning of the current ROI invocation, on every path.  If so the
probe is redundant:

- a subsequent read (Rn) never changes any FSA state;
- a subsequent write (Wn) only matters from state I, i.e. before the first
  write — so a write probe is redundant once a write is guaranteed.

PSEs are identified syntactically: the address must be the very same alloca
result or global reference.  Derived addresses (pointer arithmetic) cannot
be proven to repeat and generate nothing (GEN = ∅), exactly the "proved to
always access the same PSE" restriction of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.ir.instructions import Instr, Load, Store
from repro.ir.module import Block, Function
from repro.ir.values import GlobalRef, Temp, Value
from repro.analysis.dataflow import ForwardMustProblem
from repro.analysis.regions import RoiRegion


def pse_key_of_address(function: Function, addr: Value) -> Optional[Tuple]:
    """Syntactic PSE identity of an address, or None if unprovable."""
    if isinstance(addr, GlobalRef):
        return ("global", addr.name)
    if isinstance(addr, Temp):
        # Alloca results are the only temps that *are* stable addresses.
        for instr in function.entry.instrs:
            result = instr.result
            if result is addr:
                from repro.ir.instructions import Alloca

                if isinstance(instr, Alloca):
                    return ("alloca", function.name, addr.name)
                return None
    return None


@dataclass
class MustAccessResult:
    """Per-(block, index) sets of PSEs guaranteed accessed/written before."""

    accessed_before: Dict[Tuple[Block, int], FrozenSet]
    written_before: Dict[Tuple[Block, int], FrozenSet]

    def load_is_redundant(self, function: Function, block: Block, index: int,
                          instr: Load) -> bool:
        key = pse_key_of_address(function, instr.ptr)
        if key is None:
            return False
        before = self.accessed_before.get((block, index))
        return before is not None and key in before

    def store_is_redundant(self, function: Function, block: Block, index: int,
                           instr: Store) -> bool:
        key = pse_key_of_address(function, instr.ptr)
        if key is None:
            return False
        before = self.written_before.get((block, index))
        return before is not None and key in before


def analyze_must_access(function: Function, region: RoiRegion) -> MustAccessResult:
    """Run the two must-sets (accessed, written) over the ROI region."""
    alloca_cache: Dict[str, Optional[Tuple]] = {}

    def key_of(addr: Value) -> Optional[Tuple]:
        if isinstance(addr, Temp):
            if addr.name not in alloca_cache:
                alloca_cache[addr.name] = pse_key_of_address(function, addr)
            return alloca_cache[addr.name]
        return pse_key_of_address(function, addr)

    accessed_before: Dict[Tuple[Block, int], FrozenSet] = {}
    written_before: Dict[Tuple[Block, int], FrozenSet] = {}

    def make_transfer(track_writes_only: bool, results: Dict):
        def transfer(block: Block, in_set: FrozenSet) -> FrozenSet:
            span = region.spans.get(block)
            current = set(in_set)
            if span is None:
                return frozenset(current)
            start, end = span
            for index in range(start, end):
                instr = block.instrs[index]
                if isinstance(instr, (Load, Store)):
                    results[(block, index)] = frozenset(current)
                if isinstance(instr, Store):
                    key = key_of(instr.ptr)
                    if key is not None:
                        current.add(key)
                elif isinstance(instr, Load) and not track_writes_only:
                    key = key_of(instr.ptr)
                    if key is not None:
                        current.add(key)
            return frozenset(current)

        return transfer

    blocks = region.blocks
    entries = {region.begin_block}
    problem = ForwardMustProblem(
        function, blocks, entries, make_transfer(False, accessed_before)
    )
    problem.solve()
    # The recorded per-instruction snapshots above were taken during solving;
    # re-run the transfer once more with the final IN sets for determinism.
    in_sets, _ = problem.solve()
    accessed_before.clear()
    transfer = make_transfer(False, accessed_before)
    for block in blocks:
        in_set = in_sets.get(block)
        if in_set is not None:
            transfer(block, in_set)

    problem_w = ForwardMustProblem(
        function, blocks, entries, make_transfer(True, written_before)
    )
    in_sets_w, _ = problem_w.solve()
    written_before.clear()
    transfer_w = make_transfer(True, written_before)
    for block in blocks:
        in_set = in_sets_w.get(block)
        if in_set is not None:
            transfer_w(block, in_set)

    return MustAccessResult(accessed_before, written_before)
