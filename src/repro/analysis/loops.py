"""Natural-loop discovery and loop-trip-count pattern matching.

The aggregation and fixed-classification optimizations (§4.4.2/§4.4.3) need
to know, for an ROI wrapping a loop body: the loop's blocks, its preheader
(the unique out-of-loop predecessor of the header, where hoisted probes
go), and — for contiguous-PSE aggregation — a simple symbolic trip count
(`0 <= i < bound`, step +1) recognisable from the lowered `for` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.ir.instructions import BinOp, Branch, Load, Store
from repro.ir.module import Block, Function
from repro.ir.values import Const, Temp, Value
from repro.analysis.dominators import DominatorInfo


@dataclass
class Loop:
    header: Block
    blocks: Set[Block]
    latches: List[Block]
    preheader: Optional[Block]

    def contains(self, block: Block) -> bool:
        return block in self.blocks

    @property
    def exits(self) -> List[Block]:
        result = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in result:
                    result.append(succ)
        return result


@dataclass
class TripCount:
    """A recognised ``for (i = start; i < bound; ++i)`` trip pattern.

    ``bound`` is either a constant int or the address value whose load
    yields the bound (a re-loadable scalar variable).
    """

    induction_alloca: Value  # address of the induction variable's slot
    start: int
    bound_const: Optional[int]
    bound_addr: Optional[Value]

    @property
    def constant_trips(self) -> Optional[int]:
        if self.bound_const is None:
            return None
        return max(0, self.bound_const - self.start)


def find_loops(function: Function,
               dom: Optional[DominatorInfo] = None) -> List[Loop]:
    """All natural loops, innermost-last, via back-edge detection."""
    dom = dom or DominatorInfo(function)
    back_edges: List[Tuple[Block, Block]] = []
    for block in function.blocks:
        for succ in block.successors():
            if dom.dominates(succ, block):
                back_edges.append((block, succ))
    loops_by_header: Dict[Block, Loop] = {}
    preds = function.predecessors()
    for latch, header in back_edges:
        body: Set[Block] = {header}
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in body:
                continue
            body.add(block)
            stack.extend(preds.get(block, ()))
        loop = loops_by_header.get(header)
        if loop is None:
            loop = Loop(header, body, [latch], None)
            loops_by_header[header] = loop
        else:
            loop.blocks |= body
            loop.latches.append(latch)
    for loop in loops_by_header.values():
        outside = [p for p in preds.get(loop.header, ())
                   if p not in loop.blocks]
        if len(outside) == 1:
            loop.preheader = outside[0]
    result = list(loops_by_header.values())
    result.sort(key=lambda l: len(l.blocks), reverse=True)
    return result


def innermost_loop_containing(loops: List[Loop], block: Block) -> Optional[Loop]:
    best: Optional[Loop] = None
    for loop in loops:
        if loop.contains(block):
            if best is None or len(loop.blocks) < len(best.blocks):
                best = loop
    return best


def match_trip_count(function: Function, loop: Loop,
                     induction_alloca: Optional[Value]) -> Optional[TripCount]:
    """Recognise the canonical lowered ``for`` pattern.

    Looks for a header of the form::

        %v   = load <ind_slot>
        %cmp = lt %v, <bound>
        br %cmp, body, exit

    with a constant 0 store to the slot in the preheader side.  ``bound``
    may be a constant or a load of a scalar slot.
    """
    header = loop.header
    branch = header.terminator
    if not isinstance(branch, Branch):
        return None
    cmp_instr = None
    for instr in header.instrs:
        if isinstance(instr, BinOp) and instr.result is branch.cond:
            cmp_instr = instr
    if cmp_instr is None or cmp_instr.op not in ("lt", "le"):
        return None
    load_instr = None
    for instr in header.instrs:
        if isinstance(instr, Load) and instr.result is cmp_instr.lhs:
            load_instr = instr
    if load_instr is None:
        return None
    slot = load_instr.ptr
    if induction_alloca is not None and slot is not induction_alloca:
        return None
    start = _find_constant_store(function, loop, slot)
    if start is None:
        return None
    bound = cmp_instr.rhs
    extra = 1 if cmp_instr.op == "le" else 0
    if isinstance(bound, Const) and isinstance(bound.value, int):
        return TripCount(slot, start, bound.value + extra, None)
    if isinstance(bound, Temp):
        # Accept "load of a scalar slot" bounds: find the defining load in
        # the header (the bound is re-loadable at the aggregation site).
        for instr in header.instrs:
            if isinstance(instr, Load) and instr.result is bound:
                if extra:
                    return None  # re-loaded `<=` bounds are not worth it
                return TripCount(slot, start, None, instr.ptr)
    return None


def _find_constant_store(function: Function, loop: Loop,
                         slot: Value) -> Optional[int]:
    """The constant initial value stored to ``slot`` before the loop."""
    candidates: List[int] = []
    for block in function.blocks:
        if block in loop.blocks:
            continue
        for instr in block.instrs:
            if isinstance(instr, Store) and instr.ptr is slot:
                if isinstance(instr.value, Const) and isinstance(
                    instr.value.value, int
                ):
                    candidates.append(instr.value.value)
                else:
                    return None
    if len(candidates) == 1:
        return candidates[0]
    return None
