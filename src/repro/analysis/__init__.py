"""Static analyses: dominators, data-flow, loops, alias, call graph, PDG."""

from repro.analysis.alias import PointsTo
from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import BackwardMayProblem, ForwardMustProblem
from repro.analysis.dominators import DominatorInfo
from repro.analysis.liveness import locals_read_after_region
from repro.analysis.loops import (
    Loop,
    TripCount,
    find_loops,
    innermost_loop_containing,
    match_trip_count,
)
from repro.analysis.mustaccess import (
    MustAccessResult,
    analyze_must_access,
    pse_key_of_address,
)
from repro.analysis.pdg import MemoryDependences, address_taken_allocas
from repro.analysis.regions import RoiRegion, all_roi_regions, find_roi_region

__all__ = [
    "PointsTo", "CallGraph", "BackwardMayProblem", "ForwardMustProblem",
    "DominatorInfo", "locals_read_after_region", "Loop", "TripCount",
    "find_loops", "innermost_loop_containing", "match_trip_count",
    "MustAccessResult", "analyze_must_access", "pse_key_of_address",
    "MemoryDependences", "address_taken_allocas", "RoiRegion",
    "all_roi_regions", "find_roi_region",
]
