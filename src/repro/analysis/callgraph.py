"""Complete call graph (§4.4.5).

"Complete" in the paper's sense: the *absence* of an edge (f, g) proves f
cannot invoke g.  Direct calls contribute exact edges; indirect calls are
resolved through the points-to sets of their function-pointer operands,
falling back to "every address-taken function" when the points-to set is
empty.  Builtin (precompiled) targets are tracked separately so the
Pin-reduction optimization can reason about them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from repro.ir.instructions import Call
from repro.ir.module import Module
from repro.analysis.alias import PointsTo


class CallGraph:
    def __init__(self, module: Module, points_to: PointsTo) -> None:
        self.module = module
        self.points_to = points_to
        self.callees: Dict[str, Set[str]] = defaultdict(set)
        self.callers: Dict[str, Set[str]] = defaultdict(set)
        self.calls_builtin: Dict[str, Set[str]] = defaultdict(set)
        self._build()

    def _build(self) -> None:
        for function in self.module.functions.values():
            fn = function.name
            self.callees.setdefault(fn, set())
            for block in function.blocks:
                for instr in block.instrs:
                    if not isinstance(instr, Call):
                        continue
                    direct = instr.direct_target
                    if direct is not None and direct not in self.module.functions:
                        self.calls_builtin[fn].add(direct)
                        continue
                    for target in self.points_to.call_targets(fn, instr):
                        self.callees[fn].add(target)
                        self.callers[target].add(fn)
                    if direct is None and self.points_to.may_reach_builtin(
                        fn, instr
                    ):
                        self.calls_builtin[fn].add("<indirect>")

    def transitive_callers(self, roots: List[str]) -> Set[str]:
        """All functions that can be on the callstack when any root starts:
        the roots themselves plus every (transitive) caller."""
        result: Set[str] = set()
        stack = [r for r in roots if r in self.module.functions]
        while stack:
            fn = stack.pop()
            if fn in result:
                continue
            result.add(fn)
            stack.extend(self.callers.get(fn, ()))
        return result

    def transitive_callees(self, roots: List[str]) -> Set[str]:
        result: Set[str] = set()
        stack = [r for r in roots if r in self.module.functions]
        while stack:
            fn = stack.pop()
            if fn in result:
                continue
            result.add(fn)
            stack.extend(self.callees.get(fn, ()))
        return result

    def may_reach_precompiled(self, function_name: str) -> bool:
        """Can execution starting in ``function_name`` reach builtin code?"""
        for fn in self.transitive_callees([function_name]):
            if self.calls_builtin.get(fn):
                return True
        return False
