"""Read-after-region analysis.

Refines the FSA's conservative Output assumption (§4.1): the FSA assumes
every PSE written in an ROI is read outside it, because CARMOT does not
profile non-ROI code.  At compile time, however, a *local variable* whose
value is provably never read after the region (for loop-body ROIs: after
the enclosing loop) cannot really be an output — which is how Figure 1's
``x`` and ``i`` become ``private`` instead of ``lastprivate`` (§2.2).

Globals, address-taken locals, and heap PSEs are never refined: code the
compiler cannot see may read them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import Alloca, Load, RoiEnd
from repro.ir.module import Block, Function
from repro.ir.values import Temp
from repro.analysis.loops import Loop, find_loops, innermost_loop_containing
from repro.analysis.pdg import address_taken_allocas
from repro.analysis.regions import RoiRegion


def locals_read_after_region(
    function: Function,
    region: RoiRegion,
    is_loop_body: bool,
) -> Set[int]:
    """uids of local/param variables that may be read after the region.

    Address-taken locals are always included (a stored-away pointer can be
    read anywhere).  For loop-body ROIs the "after" horizon starts at the
    enclosing loop's exit edges — reads by the loop's own header/step
    machinery (the induction variable) do not count as escaping the region.
    """
    taken = address_taken_allocas(function)
    var_of_alloca: Dict[str, int] = {}
    always: Set[int] = set()
    for instr in function.entry.instrs:
        if isinstance(instr, Alloca) and instr.var is not None:
            var_of_alloca[instr.result.name] = instr.var.uid
            if instr.result.name in taken:
                always.add(instr.var.uid)

    start_points = _after_points(function, region, is_loop_body)
    reachable = _instructions_from(function, start_points)
    result = set(always)
    for instr in reachable:
        if isinstance(instr, Load) and isinstance(instr.ptr, Temp):
            uid = var_of_alloca.get(instr.ptr.name)
            if uid is not None:
                result.add(uid)
    return result


def _after_points(
    function: Function, region: RoiRegion, is_loop_body: bool
) -> List[Tuple[Block, int]]:
    if is_loop_body:
        loops = find_loops(function)
        loop = innermost_loop_containing(loops, region.begin_block)
        if loop is not None:
            return [(exit_block, 0) for exit_block in loop.exits]
    return [(block, index + 1) for block, index in region.end_sites]


def _instructions_from(
    function: Function, points: List[Tuple[Block, int]]
) -> List:
    seen_blocks: Set[Block] = set()
    result: List = []
    work: List[Tuple[Block, int]] = list(points)
    while work:
        block, start = work.pop()
        if start == 0:
            if block in seen_blocks:
                continue
            seen_blocks.add(block)
        result.extend(block.instrs[start:])
        for succ in block.successors():
            if succ not in seen_blocks:
                work.append((succ, 0))
    return result
