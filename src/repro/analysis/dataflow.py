"""A small generic data-flow framework (forward/backward, union/intersect).

The PSEC-specific analyses (must-already-accessed of §4.4.1, liveness for
the Output refinement) instantiate this solver; it is deliberately the
classic worklist algorithm over basic blocks.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.ir.module import Block, Function

#: TOP for intersection problems is "the universal set", represented as None.
SetOrTop = Optional[FrozenSet]


def meet_union(values: Iterable[FrozenSet]) -> FrozenSet:
    result: FrozenSet = frozenset()
    for value in values:
        result |= value
    return result


def meet_intersection(values: Iterable[SetOrTop]) -> SetOrTop:
    result: SetOrTop = None
    for value in values:
        if value is None:
            continue
        result = value if result is None else (result & value)
    return result


class ForwardMustProblem:
    """Forward intersection ("must") data-flow over a block subset.

    ``blocks`` restricts propagation (predecessors outside the subset are
    ignored — exactly the "do not follow blocks that leave the ROI" rule of
    §4.4.1).  ``entries`` are the blocks whose IN is forced to ``frozenset()``
    (nothing accessed yet).  ``transfer(block, in_set)`` returns OUT.
    """

    def __init__(
        self,
        function: Function,
        blocks: Iterable[Block],
        entries: Iterable[Block],
        transfer: Callable[[Block, FrozenSet], FrozenSet],
    ) -> None:
        self.function = function
        self.blocks = set(blocks)
        self.entries = set(entries)
        self.transfer = transfer

    def solve(self) -> Tuple[Dict[Block, SetOrTop], Dict[Block, SetOrTop]]:
        preds = self.function.predecessors()
        in_sets: Dict[Block, SetOrTop] = {b: None for b in self.blocks}
        out_sets: Dict[Block, SetOrTop] = {b: None for b in self.blocks}
        worklist = list(self.blocks)
        while worklist:
            block = worklist.pop()
            relevant = [p for p in preds.get(block, ()) if p in self.blocks]
            if block in self.entries:
                new_in: SetOrTop = frozenset()
                if relevant:
                    merged = meet_intersection(out_sets[p] for p in relevant)
                    # An entry reached both fresh and around a loop keeps
                    # only what every path guarantees: nothing.
                    new_in = frozenset()
            else:
                new_in = meet_intersection(out_sets[p] for p in relevant)
            if new_in is None:
                continue  # unreachable so far
            new_out = self.transfer(block, new_in)
            if new_in != in_sets[block] or new_out != out_sets[block]:
                in_sets[block] = new_in
                out_sets[block] = new_out
                for succ in block.successors():
                    if succ in self.blocks:
                        worklist.append(succ)
        return in_sets, out_sets


class BackwardMayProblem:
    """Backward union ("may") data-flow over whole functions (liveness)."""

    def __init__(
        self,
        function: Function,
        transfer: Callable[[Block, FrozenSet], FrozenSet],
    ) -> None:
        self.function = function
        self.transfer = transfer

    def solve(self) -> Tuple[Dict[Block, FrozenSet], Dict[Block, FrozenSet]]:
        blocks = self.function.blocks
        in_sets: Dict[Block, FrozenSet] = {b: frozenset() for b in blocks}
        out_sets: Dict[Block, FrozenSet] = {b: frozenset() for b in blocks}
        preds = self.function.predecessors()
        worklist = list(blocks)
        while worklist:
            block = worklist.pop()
            new_out = meet_union(in_sets[s] for s in block.successors())
            new_in = self.transfer(block, new_out)
            if new_out != out_sets[block] or new_in != in_sets[block]:
                out_sets[block] = new_out
                in_sets[block] = new_in
                worklist.extend(preds.get(block, ()))
        return in_sets, out_sets
