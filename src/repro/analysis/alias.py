"""Flow-insensitive, field-insensitive Andersen-style points-to analysis.

This is the memory alias analysis underpinning the complete call graph
(§4.4.5), the memory-dependence queries of the fixed-classification
optimization (§4.4.3), and Pin-gate reduction (§4.4.6): indirect calls are
resolved through the points-to sets of function-pointer values.

Abstract objects:

- ``("alloca", fn, temp)`` — one per static alloca;
- ``("global", name)`` — one per global;
- ``("heap", fn, line)`` — one per malloc/calloc call site;
- ``("func", name)`` — functions (for function pointers).

The analysis is a standard inclusion-constraint worklist solve with one
content variable per abstract object.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import (
    AddrOffset,
    Alloca,
    Call,
    Cast,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value

AbstractObject = Tuple  # see module docstring
VarKey = Tuple[str, str]  # (function, temp name) or ("<obj>", object key)


class PointsTo:
    """Points-to solution with alias and call-target queries."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._pts: Dict[object, Set[AbstractObject]] = defaultdict(set)
        self._copy_edges: Dict[object, Set[object]] = defaultdict(set)
        self._loads: List[Tuple[object, object]] = []   # dst ⊇ *(src)
        self._stores: List[Tuple[object, object]] = []  # *(dst) ⊇ src
        self._indirect_calls: List[Tuple[str, Call]] = []
        self._returns: Dict[str, List[object]] = defaultdict(list)
        self._address_taken_funcs: Set[str] = set()
        self._build()
        self._solve()

    # -- constraint generation -------------------------------------------

    def _var(self, fn: str, value: Value) -> Optional[object]:
        if isinstance(value, Temp):
            return (fn, value.name)
        if isinstance(value, GlobalRef):
            return ("<addr>", ("global", value.name))
        if isinstance(value, FunctionRef):
            return ("<addr>", ("func", value.name))
        if isinstance(value, Const):
            return None
        return None

    def _seed(self, key: object) -> None:
        if isinstance(key, tuple) and key[0] == "<addr>":
            self._pts[key].add(key[1])

    def _content(self, obj: AbstractObject) -> object:
        return ("<content>", obj)

    def _build(self) -> None:
        for function in self.module.functions.values():
            fn = function.name
            for block in function.blocks:
                for instr in block.instrs:
                    self._constrain(fn, instr)

    def _constrain(self, fn: str, instr) -> None:
        kind = type(instr)
        if kind is Alloca:
            self._pts[(fn, instr.result.name)].add(("alloca", fn,
                                                    instr.result.name))
        elif kind is AddrOffset or kind is Cast:
            src = self._var(fn, instr.base if kind is AddrOffset else instr.value)
            if src is not None:
                self._seed(src)
                self._copy_edges[src].add((fn, instr.result.name))
        elif kind is Phi:
            for value in instr.incomings.values():
                src = self._var(fn, value)
                if src is not None:
                    self._seed(src)
                    self._copy_edges[src].add((fn, instr.result.name))
        elif kind is Load:
            src = self._var(fn, instr.ptr)
            if src is not None:
                self._seed(src)
                self._loads.append(((fn, instr.result.name), src))
        elif kind is Store:
            dst = self._var(fn, instr.ptr)
            src = self._var(fn, instr.value)
            if dst is not None and src is not None:
                self._seed(dst)
                self._seed(src)
                self._stores.append((dst, src))
            if isinstance(instr.value, FunctionRef):
                self._address_taken_funcs.add(instr.value.name)
        elif kind is Ret:
            if instr.value is not None:
                src = self._var(fn, instr.value)
                if src is not None:
                    self._seed(src)
                    self._returns[fn].append(src)
        elif kind is Call:
            self._constrain_call(fn, instr)

    def _constrain_call(self, fn: str, instr: Call) -> None:
        for arg in instr.args:
            if isinstance(arg, FunctionRef):
                self._address_taken_funcs.add(arg.name)
        target = instr.direct_target
        if target is None:
            self._indirect_calls.append((fn, instr))
            return
        if isinstance(instr.callee, FunctionRef) and instr.callee.is_builtin:
            if target in ("malloc", "calloc") and instr.result is not None:
                self._pts[(fn, instr.result.name)].add(
                    ("heap", fn, instr.loc.line if instr.loc else 0)
                )
            return
        self._bind_call(fn, instr, target)

    def _bind_call(self, fn: str, instr: Call, target: str) -> None:
        callee = self.module.functions.get(target)
        if callee is None:
            return
        for index, arg in enumerate(instr.args):
            src = self._var(fn, arg)
            if src is not None:
                self._seed(src)
                self._copy_edges[src].add((target, f"arg{index}"))
        if instr.result is not None:
            for src in self._returns.get(target, ()):
                self._copy_edges[src].add((fn, instr.result.name))

    # -- solving ------------------------------------------------------------

    def _solve(self) -> None:
        bound_indirect: Set[Tuple[int, str]] = set()
        changed = True
        while changed:
            changed = False
            # Copy edges.
            worklist = [k for k in list(self._pts) if self._pts[k]]
            while worklist:
                key = worklist.pop()
                pts = self._pts[key]
                for dst in self._copy_edges.get(key, ()):
                    before = len(self._pts[dst])
                    self._pts[dst] |= pts
                    if len(self._pts[dst]) != before:
                        worklist.append(dst)
                        changed = True
            # Loads and stores through contents.
            for dst, src in self._loads:
                for obj in self._pts.get(src, ()):
                    content = self._content(obj)
                    if not self._pts[content] <= self._pts[dst]:
                        self._pts[dst] |= self._pts[content]
                        changed = True
            for dst, src in self._stores:
                for obj in self._pts.get(dst, ()):
                    content = self._content(obj)
                    if not self._pts[src] <= self._pts[content]:
                        self._pts[content] |= self._pts[src]
                        changed = True
            # Newly resolved indirect calls.
            for fn, instr in self._indirect_calls:
                callee_key = self._var(fn, instr.callee)
                if callee_key is None:
                    continue
                for obj in list(self._pts.get(callee_key, ())):
                    if obj[0] == "func":
                        mark = (id(instr), obj[1])
                        if mark not in bound_indirect:
                            bound_indirect.add(mark)
                            self._bind_call(fn, instr, obj[1])
                            changed = True

    # -- queries -------------------------------------------------------------

    def points_to(self, fn: str, value: Value) -> FrozenSet[AbstractObject]:
        key = self._var(fn, value)
        if key is None:
            if isinstance(value, GlobalRef):
                return frozenset({("global", value.name)})
            return frozenset()
        if isinstance(key, tuple) and key[0] == "<addr>":
            return frozenset({key[1]})
        return frozenset(self._pts.get(key, ()))

    def may_alias(self, fn_a: str, a: Value, fn_b: str, b: Value) -> bool:
        """May the addresses ``a`` and ``b`` point into the same object?

        Empty points-to sets (unknown provenance) answer True, keeping the
        analysis conservative.
        """
        pts_a = self.points_to(fn_a, a)
        pts_b = self.points_to(fn_b, b)
        if not pts_a or not pts_b:
            return True
        return bool(pts_a & pts_b)

    def call_targets(self, fn: str, instr: Call) -> List[str]:
        """Possible user-function targets of a call.

        For indirect calls with empty points-to information, every
        address-taken function is a candidate (completeness requirement of
        §4.4.5).
        """
        direct = instr.direct_target
        if direct is not None:
            return [direct] if direct in self.module.functions else []
        pts = self.points_to(fn, instr.callee)
        targets = sorted(obj[1] for obj in pts if obj[0] == "func")
        if not targets:
            targets = sorted(
                self._address_taken_funcs & set(self.module.functions)
            )
        return targets

    def may_reach_builtin(self, fn: str, instr: Call) -> bool:
        """May this call (possibly indirectly) invoke precompiled code?"""
        if isinstance(instr.callee, FunctionRef):
            return instr.callee.is_builtin
        pts = self.points_to(fn, instr.callee)
        if not pts:
            return True  # unknown target: must keep the Pin gate
        return any(obj[0] == "func" and obj[1] not in self.module.functions
                   for obj in pts)
