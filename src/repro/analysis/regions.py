"""ROI region extraction: which instructions lie inside an ROI, statically.

ROIs are single-entry single-exit by construction (§3.1): lowering emits one
``roi.begin`` per ROI and ``roi.end`` on every exit path.  The region of an
ROI is the set of instruction spans between its begin and its ends; the
optimization passes iterate these spans to decide what to (de)instrument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.instructions import Instr, RoiBegin, RoiEnd
from repro.ir.module import Block, Function, Module


@dataclass
class RoiRegion:
    """Static extent of one ROI inside its function.

    ``spans`` maps block -> (start_index, end_index) half-open instruction
    ranges that belong to the ROI.  ``begin_block`` holds the (unique)
    ``roi.begin`` site; ``end_sites`` all ``roi.end`` sites.
    """

    roi_id: int
    function: Function
    spans: Dict[Block, Tuple[int, int]]
    begin_block: Block
    begin_index: int
    end_sites: List[Tuple[Block, int]]

    def instructions(self) -> Iterator[Tuple[Block, int, Instr]]:
        for block, (start, end) in self.spans.items():
            for index in range(start, end):
                yield block, index, block.instrs[index]

    def contains(self, block: Block, index: int) -> bool:
        span = self.spans.get(block)
        return span is not None and span[0] <= index < span[1]

    @property
    def blocks(self) -> Set[Block]:
        return set(self.spans)


def find_roi_region(function: Function, roi_id: int) -> Optional[RoiRegion]:
    """Walk forward from ``roi.begin`` to the matching ``roi.end`` sites."""
    begin: Optional[Tuple[Block, int]] = None
    for block in function.blocks:
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, RoiBegin) and instr.roi_id == roi_id:
                begin = (block, index)
                break
        if begin:
            break
    if begin is None:
        return None
    begin_block, begin_index = begin
    spans: Dict[Block, Tuple[int, int]] = {}
    end_sites: List[Tuple[Block, int]] = []
    # Worklist of (block, start_index): instructions from start_index until
    # a roi.end (exclusive of markers) belong to the region.
    worklist: List[Tuple[Block, int]] = [(begin_block, begin_index + 1)]
    seen: Set[Tuple[Block, int]] = set()
    while worklist:
        block, start = worklist.pop()
        if (block, start) in seen:
            continue
        seen.add((block, start))
        end = len(block.instrs)
        terminated_by_end = False
        for index in range(start, len(block.instrs)):
            instr = block.instrs[index]
            if isinstance(instr, RoiEnd) and instr.roi_id == roi_id:
                end = index
                end_sites.append((block, index))
                terminated_by_end = True
                break
        old = spans.get(block)
        if old is not None:
            merged = (min(old[0], start), max(old[1], end))
            if merged == old:
                continue
            spans[block] = merged
        else:
            spans[block] = (start, end)
        if not terminated_by_end:
            for succ in block.successors():
                worklist.append((succ, 0))
    return RoiRegion(
        roi_id=roi_id,
        function=function,
        spans=spans,
        begin_block=begin_block,
        begin_index=begin_index,
        end_sites=end_sites,
    )


def all_roi_regions(module: Module) -> Dict[int, RoiRegion]:
    regions: Dict[int, RoiRegion] = {}
    for roi_id, info in module.rois.items():
        function = module.functions.get(info.function)
        if function is None:
            continue
        region = find_roi_region(function, roi_id)
        if region is not None:
            regions[roi_id] = region
    return regions
