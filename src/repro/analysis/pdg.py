"""Memory-dependence queries (the PDG slice CARMOT's optimizations use).

The fixed-classification optimization (§4.4.3) asks one question of the
PDG: *does this store have an incoming memory-dependence edge whose source
is inside the ROI?* — equivalently, may any in-ROI load read the PSE this
store writes.  We answer it with the points-to analysis plus a careful
treatment of precompiled (builtin) code, which can read memory the compiler
cannot see: if the ROI contains a memory-touching builtin call, only
never-address-taken allocas are provably safe from it.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro import builtins_spec
from repro.ir.instructions import (
    AddrOffset,
    Alloca,
    Call,
    Cast,
    Load,
    Phi,
    Store,
)
from repro.ir.module import Function
from repro.ir.values import FunctionRef, Temp, Value
from repro.analysis.alias import PointsTo
from repro.analysis.regions import RoiRegion


def address_taken_allocas(function: Function) -> Set[str]:
    """Alloca result temps whose address flows anywhere beyond direct
    loads/stores — pointer arithmetic, calls, stores *of* the address, phi.

    A never-address-taken alloca is invisible to callees and builtins; it is
    also exactly the promotability condition of mem2reg.
    """
    alloca_names = {
        instr.result.name
        for instr in function.entry.instrs
        if isinstance(instr, Alloca)
    }
    taken: Set[str] = set()

    def mark(value: Value) -> None:
        if isinstance(value, Temp) and value.name in alloca_names:
            taken.add(value.name)

    from repro.ir.instructions import ProbeAccess, ProbeClassify, ProbeEscape

    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, Load):
                continue  # load *through* the slot is fine
            if isinstance(instr, Store):
                mark(instr.value)  # storing the address escapes it
                continue
            if isinstance(instr, (ProbeAccess, ProbeClassify)):
                continue  # probes observe the slot, they do not escape it
            if isinstance(instr, ProbeEscape):
                mark(instr.value)  # the stored pointer value still escapes
                continue
            for operand in instr.operands():
                mark(operand)
    return taken


class MemoryDependences:
    """Per-function memory-dependence oracle over one ROI region."""

    def __init__(self, function: Function, region: RoiRegion,
                 points_to: PointsTo) -> None:
        self.function = function
        self.region = region
        self.points_to = points_to
        self._taken = address_taken_allocas(function)
        self._region_loads: List[Load] = []
        self._region_has_memory_builtin = False
        self._region_has_user_call = False
        for _, _, instr in region.instructions():
            if isinstance(instr, Load):
                self._region_loads.append(instr)
            elif isinstance(instr, Call):
                self._classify_call(instr)

    def _classify_call(self, instr: Call) -> None:
        target = instr.direct_target
        if target is not None and target in builtins_spec.BUILTINS:
            if builtins_spec.BUILTINS[target].touches_memory:
                self._region_has_memory_builtin = True
            return
        self._region_has_user_call = True

    def _safe_from_opaque_code(self, addr: Value) -> bool:
        return (isinstance(addr, Temp)
                and addr.name not in self._taken
                and any(isinstance(i, Alloca) and i.result is addr
                        for i in self.function.entry.instrs))

    def store_unread_in_roi(self, store: Store) -> bool:
        """True when no in-ROI read (visible or opaque) may see this store's
        PSE — the §4.4.3 condition for forcing the Output classification."""
        if self._region_has_user_call or self._region_has_memory_builtin:
            if not self._safe_from_opaque_code(store.ptr):
                return False
        fn = self.function.name
        for load in self._region_loads:
            if self.points_to.may_alias(fn, store.ptr, fn, load.ptr):
                return False
        return True

    def load_invariant_in_roi(self, load: Load,
                              region_stores: Optional[List[Store]] = None
                              ) -> bool:
        """True when no in-ROI write may touch this load's PSE — the
        §4.4.3 condition for forcing the Input classification."""
        if self._region_has_user_call or self._region_has_memory_builtin:
            if not self._safe_from_opaque_code(load.ptr):
                return False
        if region_stores is None:
            region_stores = [
                instr for _, _, instr in self.region.instructions()
                if isinstance(instr, Store)
            ]
        fn = self.function.name
        for store in region_stores:
            if self.points_to.may_alias(fn, load.ptr, fn, store.ptr):
                return False
        return True
