"""Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

Used by mem2reg (φ placement), the natural-loop finder, and the compile-time
classification optimization (dominance checks for "store executes on every
ROI invocation").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.module import Block, Function


class DominatorInfo:
    """Immediate dominators, dominance queries, and dominance frontiers."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._rpo = _reverse_postorder(function)
        self._rpo_index = {b: i for i, b in enumerate(self._rpo)}
        self._preds = function.predecessors()
        self.idom: Dict[Block, Optional[Block]] = {}
        self._compute_idoms()
        self._children: Dict[Block, List[Block]] = {b: [] for b in self._rpo}
        for block, parent in self.idom.items():
            if parent is not None and parent is not block:
                self._children[parent].append(block)
        self.frontier: Dict[Block, Set[Block]] = {}
        self._compute_frontiers()

    def _compute_idoms(self) -> None:
        entry = self.function.entry
        self.idom = {b: None for b in self._rpo}
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self._rpo:
                if block is entry:
                    continue
                preds = [p for p in self._preds[block]
                         if self.idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom[block] is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: Block, b: Block) -> Block:
        while a is not b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = self.idom[a]  # type: ignore[assignment]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = self.idom[b]  # type: ignore[assignment]
        return a

    def _compute_frontiers(self) -> None:
        self.frontier = {b: set() for b in self._rpo}
        for block in self._rpo:
            preds = [p for p in self._preds[block] if self.idom.get(p) is not None]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block]:
                    self.frontier[runner].add(block)
                    runner = self.idom[runner]  # type: ignore[assignment]

    # -- queries --------------------------------------------------------------

    def dominates(self, a: Block, b: Block) -> bool:
        """Does ``a`` dominate ``b``?"""
        runner: Optional[Block] = b
        entry = self.function.entry
        while runner is not None:
            if runner is a:
                return True
            if runner is entry:
                return False
            runner = self.idom.get(runner)
        return False

    def children(self, block: Block) -> List[Block]:
        return self._children.get(block, [])

    @property
    def reverse_postorder(self) -> List[Block]:
        return list(self._rpo)


def _reverse_postorder(function: Function) -> List[Block]:
    seen: Set[Block] = set()
    order: List[Block] = []
    stack: List[tuple] = [(function.entry, iter(function.entry.successors()))]
    seen.add(function.entry)
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order
