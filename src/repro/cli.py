"""Command-line interface: ``python -m repro <file.mc> [options]``.

Mirrors how a programmer invokes CARMOT: point it at a source file whose
ROIs carry ``#pragma carmot roi`` annotations, and it profiles one
execution and prints the recommendation for every ROI.

Subcommands:

- ``recommend`` (default) — profile and print abstraction recommendations;
- ``psec``      — print the raw Sets of every ROI;
- ``overhead``  — compare baseline/naive/CARMOT cost on the program;
- ``ir``        — dump the (optionally instrumented) IR;
- ``dis``       — disassemble the lowered register bytecode (fused sites
  marked; ``--quicken-report`` additionally runs the program and reports
  the runtime-quickened sites);
- ``serve``     — long-lived profiling daemon on a Unix socket
  (``--stats``/``--shutdown`` talk to a running daemon);
- ``request``   — send one request to a running daemon and print the
  response exactly as the local subcommand would;
- ``bench``     — runtime hot-path benchmark, writes ``BENCH_runtime.json``;
- ``cache``     — artifact-cache maintenance (stats/clear/verify).

Every profiling subcommand is a thin client of the service layer
(:mod:`repro.service`): the command body builds a typed request, executes
it through :class:`~repro.service.ServiceCore` (or ships it to a daemon
via :class:`~repro.service.ServiceClient`), and renders the response
document with the pure formatters in :mod:`repro.service.format`.  The
CLI and a daemon client are therefore the same code path by construction
— the bytes printed are a function of the response document alone.

Unchanged source + pipeline + runtime config loads IR and PSECs from the
artifact cache instead of recompiling and re-running the VM.
``--no-cache`` forces every stage live; ``--cache-dir`` (or
``$REPRO_CACHE_DIR``) relocates the store from the default
``.repro-cache/``.  Cached and live runs print byte-identical output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._version import __version__
from repro.compiler import PRESCREEN_MODES
from repro.errors import ReproError
from repro.service import (
    REQUEST_KINDS,
    DisRequest,
    IrRequest,
    OverheadRequest,
    PsecRequest,
    RecommendRequest,
    Rendered,
    RenderOptions,
    RunOptions,
    ServiceClient,
    ServiceCore,
    render_response,
)
from repro.session import ArtifactStore


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _emit(rendered: Rendered) -> int:
    if rendered.out:
        sys.stdout.write(rendered.out)
    if rendered.err:
        sys.stderr.write(rendered.err)
    return rendered.exit_code


def _build_request(kind: str, args: argparse.Namespace, source: str):
    """The typed service request for one subcommand invocation."""
    options = RunOptions.from_args(args)
    common = {"source": source, "name": args.file, "options": options}
    if kind == "ir":
        return IrRequest(mode=getattr(args, "mode", None) or "plain",
                         **common)
    if kind == "dis":
        return DisRequest(
            mode=getattr(args, "mode", None) or "carmot",
            quicken_report=getattr(args, "quicken_report", False),
            **common,
        )
    return {
        "recommend": RecommendRequest,
        "psec": PsecRequest,
        "overhead": OverheadRequest,
    }[kind](**common)


def _cmd_execute(args: argparse.Namespace) -> int:
    """Shared body of recommend/psec/overhead/ir/dis: build the request,
    execute it in-process, render the response document."""
    source = _read(args.file)
    request = _build_request(args.kind, args, source)
    core = ServiceCore(cache_dir=getattr(args, "cache_dir", None))
    doc = core.execute(request)
    return _emit(render_response(doc, RenderOptions.from_args(args)))


def _cmd_request(args: argparse.Namespace) -> int:
    """Like ``_cmd_execute``, over a serve daemon's socket instead of
    in-process — same request document, same renderer, same bytes."""
    source = _read(args.file)
    request = _build_request(args.kind, args, source)
    with ServiceClient(args.socket, namespace=args.namespace,
                       timeout=args.timeout) as client:
        doc = client.request(request)
    return _emit(render_response(doc, RenderOptions.from_args(args)))


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.stats:
        with ServiceClient(args.socket) as client:
            doc = client.stats()
        print(json.dumps(doc["body"], indent=2, sort_keys=True))
        return 0
    if args.shutdown:
        with ServiceClient(args.socket) as client:
            doc = client.shutdown()
        body = doc["body"]
        print(f"daemon draining {body['draining']} in-flight request(s); "
              f"served {body['served']} total")
        return 0

    import asyncio

    from repro.service.daemon import ServeDaemon

    daemon = ServeDaemon(
        socket_path=args.socket,
        cache_dir=getattr(args, "cache_dir", None),
        workers=args.workers,
        queue_bound=args.queue,
        queue_policy=args.queue_policy,
    )

    def announce(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        asyncio.run(daemon.run(announce=announce))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ArtifactStore.open(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = store.stats()
        print(f"cache dir : {store.root}")
        print(f"entries   : {stats.entries}")
        print(f"bytes     : {stats.payload_bytes}")
        for kind in sorted(stats.by_kind):
            print(f"  {kind:8s}: {stats.by_kind[kind]}")
        for name in sorted(stats.by_namespace):
            ns = stats.by_namespace[name]
            print(f"namespace {name}: {ns['entries']} entr(ies), "
                  f"{ns['payload_bytes']} bytes")
        print(f"session   : {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.evicted_corrupt} corrupt entr(ies) evicted")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entr(ies) from {store.root}")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"checked {report['checked']} entr(ies): {report['ok']} ok, "
              f"{report['evicted']} corrupt (evicted)")
        for name in sorted(report["by_namespace"]):
            ns = report["by_namespace"][name]
            print(f"  {name}: {ns['checked']} checked, {ns['ok']} ok, "
                  f"{ns['evicted']} evicted")
        return 0 if report["evicted"] == 0 else 1
    raise ReproError(f"unknown cache action {args.action!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import render_bench, run_bench

    report = run_bench(quick=args.quick, seed=args.seed,
                       min_speedup=args.min_speedup, shards=args.shards,
                       vm_min_speedup=args.vm_min_speedup,
                       proc_min_speedup=args.proc_min_speedup,
                       serve_min_speedup=args.serve_min_speedup)
    print(render_bench(report))
    if args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out}")
    return 0 if report["checks"]["passed"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CARMOT reproduction: PSEC profiling of MiniC programs",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--abstraction", default=None,
                       choices=["parallel_for", "task", "smart_pointers",
                                "stats"],
                       help="override the abstraction named in the pragma")
        p.add_argument(
            "--recommenders", default=None, metavar="SELECTION",
            help="recommender selection à la --passes, e.g. 'roles', "
                 "'paper,reduction_hint' or 'all,-stats' (aliases: paper, "
                 "roles, all; '-name' removes a recommender; default "
                 "'roles' adds the role-driven hints to the JSON document "
                 "without changing the rendered recommendation)",
        )
        p.add_argument("--entry", default="main")
        p.add_argument(
            "--budget", default=None, metavar="SPEC",
            help="execution budgets and resilience policy, e.g. "
                 "'steps=5000000,heap=1048576,depth=256,"
                 "events-per-roi=20000,retries=2,degrade=1'",
        )
        p.add_argument(
            "--fault-plan", default=None, metavar="PLAN",
            help="deterministic fault injection, e.g. "
                 "'seed=42;crash@3;drop@5;slow@7:250' "
                 "(combine with --budget retries=...,degrade=1 to observe "
                 "degraded-mode recovery)",
        )
        p.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="pipeline batch size (smaller values create more batches "
                 "— useful with --fault-plan, whose faults target batch "
                 "sequence numbers)",
        )
        p.add_argument(
            "--event-encoding", default=None,
            choices=["object", "packed"],
            help="runtime event encoding (default: packed for CARMOT "
                 "builds, object — the differential oracle — otherwise)",
        )
        p.add_argument(
            "--pipeline-shards", type=int, default=None, metavar="N",
            help="fold packed batches on N shards keyed by object id "
                 "(0/1 = the deterministic single-threaded drain)",
        )
        p.add_argument(
            "--drain", default=None,
            choices=["inproc", "threads", "procs"],
            help="packed-batch drain: in-process flat fold, shard threads, "
                 "or supervised worker processes over shared-memory rings "
                 "with crash recovery (implies --event-encoding packed; "
                 "combine with --fault-plan 'exit@N' and --budget "
                 "'retries=...' to exercise worker-kill replay)",
        )
        p.add_argument(
            "--vm", default="bytecode", choices=["bytecode", "ir"],
            help="execution engine: the register-bytecode dispatch loop "
                 "(default) or the IR tree-walk differential oracle; both "
                 "produce identical profiles",
        )
        p.add_argument(
            "--prescreen", default="off", choices=list(PRESCREEN_MODES),
            help="hybrid static+dynamic PSEC: prove Set membership at "
                 "compile time and strip the probes — 'safe' claims "
                 "non-escaping scalar locals, 'aggressive' additionally "
                 "claims induction-walked array elements; the profile is "
                 "identical (at Sets level) to the fully-dynamic run",
        )
        p.add_argument(
            "--passes", default=None, metavar="PIPELINE",
            help="explicit pass pipeline à la LLVM's -passes=, e.g. "
                 "'carmot,-pin-reduction' or 'selective-mem2reg,instrument' "
                 "(aliases: carmot, naive, baseline; '-name' removes a pass)",
        )
        p.add_argument(
            "--print-pass-stats", action="store_true",
            help="print per-pass wall time, analysis cache hits/misses, "
                 "and IR deltas for the compilation pipeline (implies "
                 "--no-cache: the report only exists on a live compile)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="artifact cache location (default: $REPRO_CACHE_DIR or "
                 "./.repro-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="run every stage live; do not read or write the cache",
        )
        p.add_argument(
            "--cache-stats", action="store_true",
            help="report per-stage cache hit/miss on stderr",
        )

    def tracing(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", action="store_true",
            help="stream an execution trace to stderr — one line per "
                 "opcode (bytecode VM) or per IR instruction (tree-walk); "
                 "implies --no-cache (the trace only exists on a live run)",
        )

    rec = sub.add_parser("recommend", help="print recommendations (default)")
    common(rec)
    tracing(rec)
    rec.add_argument("--show-output", action="store_true")
    rec.add_argument(
        "--json", action="store_true",
        help="print the structured service response document instead of "
             "the human rendering",
    )
    rec.set_defaults(func=_cmd_execute, kind="recommend")

    psec = sub.add_parser("psec", help="print the raw PSEC sets")
    common(psec)
    tracing(psec)
    psec.add_argument(
        "--json", action="store_true",
        help="print the canonical sets-level JSON document (the "
             "psec_sets_digest material) instead of the human listing — "
             "byte-identical across runs with identical Sets",
    )
    psec.set_defaults(func=_cmd_execute, kind="psec")

    over = sub.add_parser("overhead", help="baseline/naive/carmot cost")
    common(over)
    over.add_argument(
        "--json", action="store_true",
        help="print the structured service response document instead of "
             "the human rendering",
    )
    over.set_defaults(func=_cmd_execute, kind="overhead")

    ir = sub.add_parser("ir", help="dump IR")
    common(ir)
    ir.add_argument("--mode", default="plain",
                    choices=["plain", "baseline", "naive", "carmot"])
    ir.set_defaults(func=_cmd_execute, kind="ir")

    dis = sub.add_parser(
        "dis", help="disassemble the lowered register bytecode"
    )
    common(dis)
    dis.add_argument("--mode", default="carmot",
                     choices=["baseline", "naive", "carmot"],
                     help="pipeline to lower before disassembling "
                          "(default: carmot, the instrumented build)")
    dis.add_argument(
        "--quicken-report", action="store_true",
        help="run the program on the bytecode engine first and annotate "
             "every site the interpreter quickened (the listing itself "
             "stays canonical: quickened code never leaves the execution "
             "stream)",
    )
    dis.set_defaults(func=_cmd_execute, kind="dis")

    serve = sub.add_parser(
        "serve",
        help="profiling daemon on a Unix socket (length-prefixed JSON)",
        epilog="The daemon multiplexes concurrent requests onto one "
               "artifact store; clients pick a --namespace for an "
               "isolated cache partition.  Past the queue bound the "
               "'shed' policy answers with a canonical overloaded "
               "response (clients exit 2); 'block' parks requests until "
               "a worker frees up.  --stats and --shutdown talk to an "
               "already-running daemon on the same socket.",
    )
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="Unix socket path to listen on (or to query "
                            "with --stats/--shutdown)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache location (default: "
                            "$REPRO_CACHE_DIR or ./.repro-cache)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker threads executing requests (default 4)")
    serve.add_argument("--queue", type=int, default=16, metavar="N",
                       help="admission bound on queued requests "
                            "(0 = unbounded; default 16)")
    serve.add_argument("--queue-policy", default="shed",
                       choices=["block", "shed"],
                       help="past the bound: park new requests (block) or "
                            "answer overloaded immediately (shed, default)")
    serve.add_argument("--stats", action="store_true",
                       help="print a running daemon's metrics as JSON")
    serve.add_argument("--shutdown", action="store_true",
                       help="ask a running daemon to drain and exit")
    serve.set_defaults(func=_cmd_serve)

    req = sub.add_parser(
        "request",
        help="send one request to a running serve daemon",
        epilog="Output is byte-identical to running the same subcommand "
               "locally: both render the same service response document.",
    )
    req.add_argument("kind", choices=list(REQUEST_KINDS),
                     help="which subcommand to run remotely")
    common(req)
    tracing(req)
    req.add_argument("--socket", required=True, metavar="PATH",
                     help="Unix socket of the serve daemon")
    req.add_argument("--namespace", default=None, metavar="NAME",
                     help="cache namespace on the daemon's store "
                          "(isolated partition per client)")
    req.add_argument("--timeout", type=float, default=60.0, metavar="S",
                     help="socket timeout in seconds (default 60)")
    req.add_argument("--json", action="store_true",
                     help="print the structured response document "
                          "(psec: the canonical sets-level document)")
    req.add_argument("--show-output", action="store_true")
    req.add_argument("--mode", default=None,
                     choices=["plain", "baseline", "naive", "carmot"],
                     help="ir/dis pipeline mode (defaults: ir=plain, "
                          "dis=carmot)")
    req.add_argument("--quicken-report", action="store_true",
                     help="dis only: annotate runtime-quickened sites")
    req.set_defaults(func=_cmd_request)

    bench = sub.add_parser(
        "bench",
        help="runtime hot-path benchmark (packed vs object encodings)",
        epilog="Gates: --min-speedup covers the packed-vs-object stream "
               "legs; --vm-min-speedup (default 3.5) covers the "
               "vm_dispatch leg — the tier-2 bytecode engine vs the IR "
               "tree-walk oracle, with byte-identical PSEC digests "
               "required and fused_sites/quickened_ops/dequicken_count "
               "reported on the vm_tier2 line; --proc-min-speedup covers "
               "the packed_procs drain leg (report-only by default); "
               "--serve-min-speedup gates warm vs cold sustained req/s "
               "through the serve daemon, with response digests required "
               "identical to the in-process service core. "
               "Every stream leg of the JSON report embeds its drain "
               "meta (workers, batches, respawns, replays).",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller streams and one workload (CI smoke)")
    bench.add_argument("--seed", type=int, default=1234)
    bench.add_argument("--shards", type=int, default=2,
                       help="shard count for the packed_sharded leg")
    bench.add_argument("--min-speedup", type=float, default=3.0,
                       metavar="X",
                       help="fail unless the best packed-vs-object stream "
                            "speedup reaches X (and all digests match)")
    bench.add_argument("--vm-min-speedup", type=float, default=3.5,
                       metavar="X",
                       help="fail unless the tier-2 bytecode VM beats the "
                            "IR tree-walk by X on the dispatch workload "
                            "(with byte-identical PSEC digests); default "
                            "3.5 — pass a lower floor on noisy shared "
                            "runners")
    bench.add_argument("--proc-min-speedup", type=float, default=0.0,
                       metavar="X",
                       help="fail unless the packed_procs leg beats the "
                            "in-process fold by X (0 = report-only; the "
                            "gate is skipped automatically on single-core "
                            "hosts — digest equality and crash recovery "
                            "are always enforced)")
    bench.add_argument("--serve-min-speedup", type=float, default=3.0,
                       metavar="X",
                       help="fail unless warm daemon requests sustain X "
                            "the cold req/s under concurrent clients "
                            "(digest identity vs the in-process core is "
                            "always enforced)")
    bench.add_argument("--out", default="BENCH_runtime.json", metavar="PATH",
                       help="write the JSON report here ('-' = stdout only)")
    bench.set_defaults(func=_cmd_bench)

    cache = sub.add_parser(
        "cache", help="artifact cache maintenance (stats/clear/verify)"
    )
    cache.add_argument("action", choices=["stats", "clear", "verify"],
                       help="stats: entries/bytes per kind and namespace; "
                            "clear: delete all entries; verify: re-hash "
                            "and evict corrupt entries, per namespace")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache location (default: "
                            "$REPRO_CACHE_DIR or ./.repro-cache)")
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Default subcommand: treat `repro foo.mc` as `repro recommend foo.mc`.
    known = {"recommend", "psec", "overhead", "ir", "dis", "serve",
             "request", "bench", "cache", "-h", "--help", "--version"}
    if argv and argv[0] not in known:
        argv.insert(0, "recommend")
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
