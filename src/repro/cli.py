"""Command-line interface: ``python -m repro <file.mc> [options]``.

Mirrors how a programmer invokes CARMOT: point it at a source file whose
ROIs carry ``#pragma carmot roi`` annotations, and it profiles one
execution and prints the recommendation for every ROI.

Subcommands:

- ``recommend`` (default) — profile and print abstraction recommendations;
- ``psec``      — print the raw Sets of every ROI;
- ``overhead``  — compare baseline/naive/CARMOT cost on the program;
- ``ir``        — dump the (optionally instrumented) IR;
- ``dis``       — disassemble the lowered register bytecode (fused sites
  marked; ``--quicken-report`` additionally runs the program and reports
  the runtime-quickened sites);
- ``bench``     — runtime hot-path benchmark, writes ``BENCH_runtime.json``;
- ``cache``     — artifact-cache maintenance (stats/clear/verify).

``recommend``, ``psec``, and ``ir`` are thin clients of the session layer
(:mod:`repro.session`): unchanged source + pipeline + runtime config loads
IR and PSECs from the artifact cache instead of recompiling and re-running
the VM.  ``--no-cache`` forces every stage live; ``--cache-dir`` (or
``$REPRO_CACHE_DIR``) relocates the store from the default
``.repro-cache/``.  Cached and live runs print byte-identical output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._version import __version__
from repro.abstractions import describe_pse, recommend
from repro.compiler import PRESCREEN_MODES, CarmotOptions, CompiledProgram
from repro.errors import ReproError
from repro.passes.registry import parse_pipeline
from repro.resilience import FaultPlan, parse_budget_spec
from repro.runtime.psec_json import psec_sets_digest, psec_sets_doc
from repro.session import ArtifactStore, Session


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _run_kwargs(args: argparse.Namespace):
    """Translate --budget/--fault-plan flags into program.run() kwargs."""
    kwargs = {}
    if getattr(args, "budget", None):
        spec = parse_budget_spec(args.budget)
        kwargs["budgets"] = spec.vm
        kwargs["resilience"] = spec.runtime
    if getattr(args, "fault_plan", None):
        kwargs["fault_plan"] = FaultPlan.parse(args.fault_plan)
    if getattr(args, "batch_size", None) is not None:
        kwargs["batch_size"] = args.batch_size
    if getattr(args, "event_encoding", None):
        kwargs["event_encoding"] = args.event_encoding
    if getattr(args, "pipeline_shards", None) is not None:
        kwargs["pipeline_shards"] = args.pipeline_shards
    if getattr(args, "drain", None):
        kwargs["drain"] = args.drain
        if args.drain in ("threads", "procs"):
            encoding = kwargs.get("event_encoding")
            if encoding is None:
                # threads/procs fold packed batches; imply the encoding
                # the same way --pipeline-shards examples document it.
                kwargs["event_encoding"] = "packed"
            elif encoding != "packed":
                raise ReproError(
                    f"--drain {args.drain} folds packed batches and "
                    f"cannot combine with --event-encoding {encoding}"
                )
    return kwargs


def _print_degradation(runtime) -> None:
    if runtime is not None and runtime.degraded:
        print(f"degraded run — {runtime.degradation.summary()}",
              file=sys.stderr)


def _session_for(args: argparse.Namespace) -> Session:
    """The artifact-backed session for this invocation.

    ``--no-cache`` runs everything live; so does ``--print-pass-stats``,
    whose per-pass timing report only exists on a live compile, and
    ``--trace``, whose execution trace only exists when the VM actually
    runs (a profile cache hit would skip it).
    """
    enabled = not getattr(args, "no_cache", False) \
        and not getattr(args, "print_pass_stats", False) \
        and not getattr(args, "trace", False)
    return Session(cache_dir=getattr(args, "cache_dir", None),
                   enabled=enabled)


def _carmot_options(args: argparse.Namespace) -> Optional[CarmotOptions]:
    """CarmotOptions from CLI flags, or None when every flag is at its
    default (so cache keys match pre-flag invocations).  ``--prescreen``
    is the only option-level flag; the session expands the ``carmot``
    alias from these options, which is what puts the ``prescreen`` pass
    into the pipeline."""
    mode = getattr(args, "prescreen", "off") or "off"
    if mode == "off":
        return None
    return CarmotOptions(prescreen=mode)


def _profiling_pipeline(args: argparse.Namespace) -> str:
    """The pipeline text for recommend/psec: full CARMOT by default, an
    explicit ``--passes`` pipeline when given (must instrument)."""
    if getattr(args, "passes", None):
        names = parse_pipeline(args.passes)
        if "instrument" not in names and "naive-instrument" not in names:
            raise ReproError(
                f"pipeline {args.passes!r} has no instrumenter; append "
                "'instrument' (or 'naive-instrument') to profile"
            )
        return args.passes
    return "carmot"


def _print_cache_stages(args: argparse.Namespace, stages) -> None:
    if getattr(args, "cache_stats", False):
        summary = " ".join(f"{k}={v}" for k, v in stages.items())
        print(f"cache: {summary}", file=sys.stderr)


def _print_tier2_stats(program: CompiledProgram) -> None:
    """Codegen fusion + runtime quickening counters, one greppable line.

    Fusion is a canonical-stream property; quickened/dequickened counts
    are only non-zero once the execution streams have been warmed (i.e.
    after the program ran on the bytecode engine).
    """
    from repro.vm.bytecode import fused_site_counts, quickened_op_count

    bc = getattr(program, "bytecode", None) \
        or getattr(program.module, "_bytecode", None)
    if bc is None:
        return
    fused = fused_site_counts(bc)
    print(f"tier2: fused_sites={fused['total']} "
          f"(cmp_br={fused['cmp_br']} load_bin={fused['load_bin']} "
          f"bin_store={fused['bin_store']} "
          f"probe_access={fused['probe_access']}) "
          f"quickened_ops={quickened_op_count(bc)} "
          f"dequicken_count={bc.dequicken_count}")


def _maybe_print_pass_stats(args: argparse.Namespace,
                            program: CompiledProgram) -> None:
    if getattr(args, "print_pass_stats", False) \
            and program.pass_report is not None:
        print(program.pass_report.render())
        _print_tier2_stats(program)
        print()


def _profile(args: argparse.Namespace, source: str):
    """Session-backed compile+profile shared by recommend/psec."""
    session = _session_for(args)
    profiled = session.profile(
        source, _profiling_pipeline(args), abstraction=args.abstraction,
        options=_carmot_options(args),
        name=args.file, entry=args.entry, vm=args.vm,
        trace=getattr(args, "trace", False), **_run_kwargs(args),
    )
    _maybe_print_pass_stats(args, profiled.program)
    _print_cache_stages(args, profiled.stages)
    return profiled


def _cmd_recommend(args: argparse.Namespace) -> int:
    source = _read(args.file)
    profiled = _profile(args, source)
    program, result, runtime = \
        profiled.program, profiled.result, profiled.runtime
    _print_degradation(runtime)
    if args.show_output:
        print("program output:", " ".join(result.output))
    if not program.module.rois:
        print("no #pragma carmot roi annotations found", file=sys.stderr)
        return 1
    for roi_id, roi in sorted(program.module.rois.items()):
        abstraction = args.abstraction or roi.abstraction
        if abstraction is None:
            print(f"ROI {roi.name}: no abstraction requested; skipping")
            continue
        print(recommend(runtime, roi_id, abstraction).render())
        print()
    return 0


def _cmd_psec(args: argparse.Namespace) -> int:
    source = _read(args.file)
    profiled = _profile(args, source)
    program, runtime = profiled.program, profiled.runtime
    _print_degradation(runtime)
    if getattr(args, "json", False):
        # Canonical sets-level document: exactly the psec_sets_digest
        # material plus ROI names/invocations, so two invocations with
        # identical Sets print byte-identical JSON (the CI prescreen
        # smoke job byte-diffs hybrid vs fully-dynamic output).
        sets_doc = psec_sets_doc(runtime.psecs)
        doc = {
            "sets_digest": psec_sets_digest(runtime.psecs),
            "rois": {
                str(roi_id): {
                    "name": program.module.rois[roi_id].name,
                    "invocations": runtime.psecs[roi_id].invocations,
                    "sets": sets_doc[str(roi_id)],
                }
                for roi_id in sorted(runtime.psecs)
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for roi_id, psec in sorted(runtime.psecs.items()):
        roi = program.module.rois[roi_id]
        status = " [degraded: " + ", ".join(psec.degradation_reasons) + "]" \
            if psec.degraded else ""
        print(f"ROI {roi.name} ({roi.loc}) — {psec.invocations} "
              f"invocations{status}")
        for set_name, keys in psec.sets().items():
            names = sorted(
                str(describe_pse(k, psec, runtime.asmt)) for k in keys
            )
            print(f"  {set_name:9s}: {', '.join(names) or '-'}")
        if psec.reachability.edge_count:
            cycles = psec.reachability.find_cycles()
            print(f"  reachability: {psec.reachability.node_count} nodes, "
                  f"{psec.reachability.edge_count} edges, "
                  f"{len(cycles)} cycle(s)")
        print()
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    source = _read(args.file)
    kwargs = _run_kwargs(args)
    session = _session_for(args)
    # Baseline builds have no profile artifact (nothing but a RunResult);
    # the compile is still cached, the VM run is live.
    base_compile = session.compile(source, "baseline", name=args.file)
    base, _ = base_compile.program.run(
        entry=args.entry, budgets=kwargs.get("budgets"), vm=args.vm)
    naive, _ = _leg(session, args, source, "naive", kwargs)
    # --passes swaps out the CARMOT leg of the comparison; --prescreen
    # only steers this leg (naive has no plan to prescreen).
    carmot, _ = _leg(session, args, source, _profiling_pipeline(args),
                     kwargs, options=_carmot_options(args))
    print(f"baseline cost : {base.cost}")
    print(f"naive         : {naive.cost}  ({naive.cost / base.cost:.1f}x)")
    print(f"carmot        : {carmot.cost}  ({carmot.cost / base.cost:.1f}x)")
    print(f"gap           : {naive.cost / carmot.cost:.1f}x")
    return 0


def _leg(session: Session, args: argparse.Namespace, source: str,
         pipeline: str, kwargs, options: Optional[CarmotOptions] = None):
    """One instrumented leg of the overhead comparison, profile-cached."""
    profiled = session.profile(
        source, pipeline, abstraction=args.abstraction, name=args.file,
        options=options, entry=args.entry, vm=args.vm, **kwargs,
    )
    _maybe_print_pass_stats(args, profiled.program)
    return profiled.result, profiled.runtime


def _cmd_ir(args: argparse.Namespace) -> int:
    source = _read(args.file)
    session = _session_for(args)
    if getattr(args, "passes", None):
        # An explicit pipeline overrides --mode.
        pipeline: Optional[str] = args.passes
    elif args.mode in ("baseline", "naive", "carmot"):
        pipeline = args.mode
    else:
        pipeline = None  # plain: frontend only
    if pipeline is None:
        module, _, _ = session.frontend(source, args.file)
    else:
        compiled = session.compile(source, pipeline, args.abstraction,
                                   options=_carmot_options(args),
                                   name=args.file)
        _maybe_print_pass_stats(args, compiled.program)
        _print_cache_stages(args, compiled.stages)
        module = compiled.program.module
    print(module)
    return 0


def _cmd_dis(args: argparse.Namespace) -> int:
    from repro.vm.bytecode import dequicken_module, disassemble

    source = _read(args.file)
    session = _session_for(args)
    pipeline = args.passes if getattr(args, "passes", None) else args.mode
    compiled = session.compile(source, pipeline, args.abstraction,
                               options=_carmot_options(args), name=args.file)
    program = compiled.program
    stages = dict(compiled.stages)
    stages["codegen"] = session.codegen(program, compiled.ir_digest)
    _maybe_print_pass_stats(args, program)
    _print_cache_stages(args, stages)
    bytecode = program.bytecode
    if args.quicken_report:
        # Run once on the bytecode engine so quickenable sites are
        # rewritten, disassemble with the report markers, then restore
        # the canonical execution streams.  The listing itself always
        # renders the canonical stream — it is byte-identical before
        # and after the run.
        try:
            program.run(vm="bytecode", entry=args.entry,
                        **_run_kwargs(args))
        except ReproError as error:
            print(f"note: run aborted ({error}); quickening still "
                  f"reflects every function that was entered",
                  file=sys.stderr)
        print(disassemble(bytecode, quicken_report=True))
        dequicken_module(bytecode)
    else:
        print(disassemble(bytecode))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ArtifactStore.open(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = store.stats()
        print(f"cache dir : {store.root}")
        print(f"entries   : {stats.entries}")
        print(f"bytes     : {stats.payload_bytes}")
        for kind in sorted(stats.by_kind):
            print(f"  {kind:8s}: {stats.by_kind[kind]}")
        print(f"session   : {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.evicted_corrupt} corrupt entr(ies) evicted")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entr(ies) from {store.root}")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"checked {report['checked']} entr(ies): {report['ok']} ok, "
              f"{report['evicted']} corrupt (evicted)")
        return 0 if report["evicted"] == 0 else 1
    raise ReproError(f"unknown cache action {args.action!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import render_bench, run_bench

    report = run_bench(quick=args.quick, seed=args.seed,
                       min_speedup=args.min_speedup, shards=args.shards,
                       vm_min_speedup=args.vm_min_speedup,
                       proc_min_speedup=args.proc_min_speedup)
    print(render_bench(report))
    if args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out}")
    return 0 if report["checks"]["passed"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CARMOT reproduction: PSEC profiling of MiniC programs",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--abstraction", default=None,
                       choices=["parallel_for", "task", "smart_pointers",
                                "stats"],
                       help="override the abstraction named in the pragma")
        p.add_argument("--entry", default="main")
        p.add_argument(
            "--budget", default=None, metavar="SPEC",
            help="execution budgets and resilience policy, e.g. "
                 "'steps=5000000,heap=1048576,depth=256,"
                 "events-per-roi=20000,retries=2,degrade=1'",
        )
        p.add_argument(
            "--fault-plan", default=None, metavar="PLAN",
            help="deterministic fault injection, e.g. "
                 "'seed=42;crash@3;drop@5;slow@7:250' "
                 "(combine with --budget retries=...,degrade=1 to observe "
                 "degraded-mode recovery)",
        )
        p.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="pipeline batch size (smaller values create more batches "
                 "— useful with --fault-plan, whose faults target batch "
                 "sequence numbers)",
        )
        p.add_argument(
            "--event-encoding", default=None,
            choices=["object", "packed"],
            help="runtime event encoding (default: packed for CARMOT "
                 "builds, object — the differential oracle — otherwise)",
        )
        p.add_argument(
            "--pipeline-shards", type=int, default=None, metavar="N",
            help="fold packed batches on N shards keyed by object id "
                 "(0/1 = the deterministic single-threaded drain)",
        )
        p.add_argument(
            "--drain", default=None,
            choices=["inproc", "threads", "procs"],
            help="packed-batch drain: in-process flat fold, shard threads, "
                 "or supervised worker processes over shared-memory rings "
                 "with crash recovery (implies --event-encoding packed; "
                 "combine with --fault-plan 'exit@N' and --budget "
                 "'retries=...' to exercise worker-kill replay)",
        )
        p.add_argument(
            "--vm", default="bytecode", choices=["bytecode", "ir"],
            help="execution engine: the register-bytecode dispatch loop "
                 "(default) or the IR tree-walk differential oracle; both "
                 "produce identical profiles",
        )
        p.add_argument(
            "--prescreen", default="off", choices=list(PRESCREEN_MODES),
            help="hybrid static+dynamic PSEC: prove Set membership at "
                 "compile time and strip the probes — 'safe' claims "
                 "non-escaping scalar locals, 'aggressive' additionally "
                 "claims induction-walked array elements; the profile is "
                 "identical (at Sets level) to the fully-dynamic run",
        )
        p.add_argument(
            "--passes", default=None, metavar="PIPELINE",
            help="explicit pass pipeline à la LLVM's -passes=, e.g. "
                 "'carmot,-pin-reduction' or 'selective-mem2reg,instrument' "
                 "(aliases: carmot, naive, baseline; '-name' removes a pass)",
        )
        p.add_argument(
            "--print-pass-stats", action="store_true",
            help="print per-pass wall time, analysis cache hits/misses, "
                 "and IR deltas for the compilation pipeline (implies "
                 "--no-cache: the report only exists on a live compile)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="artifact cache location (default: $REPRO_CACHE_DIR or "
                 "./.repro-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="run every stage live; do not read or write the cache",
        )
        p.add_argument(
            "--cache-stats", action="store_true",
            help="report per-stage cache hit/miss on stderr",
        )

    def tracing(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", action="store_true",
            help="stream an execution trace to stderr — one line per "
                 "opcode (bytecode VM) or per IR instruction (tree-walk); "
                 "implies --no-cache (the trace only exists on a live run)",
        )

    rec = sub.add_parser("recommend", help="print recommendations (default)")
    common(rec)
    tracing(rec)
    rec.add_argument("--show-output", action="store_true")
    rec.set_defaults(func=_cmd_recommend)

    psec = sub.add_parser("psec", help="print the raw PSEC sets")
    common(psec)
    tracing(psec)
    psec.add_argument(
        "--json", action="store_true",
        help="print the canonical sets-level JSON document (the "
             "psec_sets_digest material) instead of the human listing — "
             "byte-identical across runs with identical Sets",
    )
    psec.set_defaults(func=_cmd_psec)

    over = sub.add_parser("overhead", help="baseline/naive/carmot cost")
    common(over)
    over.set_defaults(func=_cmd_overhead)

    ir = sub.add_parser("ir", help="dump IR")
    common(ir)
    ir.add_argument("--mode", default="plain",
                    choices=["plain", "baseline", "naive", "carmot"])
    ir.set_defaults(func=_cmd_ir)

    dis = sub.add_parser(
        "dis", help="disassemble the lowered register bytecode"
    )
    common(dis)
    dis.add_argument("--mode", default="carmot",
                     choices=["baseline", "naive", "carmot"],
                     help="pipeline to lower before disassembling "
                          "(default: carmot, the instrumented build)")
    dis.add_argument(
        "--quicken-report", action="store_true",
        help="run the program on the bytecode engine first and annotate "
             "every site the interpreter quickened (the listing itself "
             "stays canonical: quickened code never leaves the execution "
             "stream)",
    )
    dis.set_defaults(func=_cmd_dis)

    bench = sub.add_parser(
        "bench",
        help="runtime hot-path benchmark (packed vs object encodings)",
        epilog="Gates: --min-speedup covers the packed-vs-object stream "
               "legs; --vm-min-speedup (default 3.5) covers the "
               "vm_dispatch leg — the tier-2 bytecode engine vs the IR "
               "tree-walk oracle, with byte-identical PSEC digests "
               "required and fused_sites/quickened_ops/dequicken_count "
               "reported on the vm_tier2 line; --proc-min-speedup covers "
               "the packed_procs drain leg (report-only by default). "
               "Every stream leg of the JSON report embeds its drain "
               "meta (workers, batches, respawns, replays).",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller streams and one workload (CI smoke)")
    bench.add_argument("--seed", type=int, default=1234)
    bench.add_argument("--shards", type=int, default=2,
                       help="shard count for the packed_sharded leg")
    bench.add_argument("--min-speedup", type=float, default=3.0,
                       metavar="X",
                       help="fail unless the best packed-vs-object stream "
                            "speedup reaches X (and all digests match)")
    bench.add_argument("--vm-min-speedup", type=float, default=3.5,
                       metavar="X",
                       help="fail unless the tier-2 bytecode VM beats the "
                            "IR tree-walk by X on the dispatch workload "
                            "(with byte-identical PSEC digests); default "
                            "3.5 — pass a lower floor on noisy shared "
                            "runners")
    bench.add_argument("--proc-min-speedup", type=float, default=0.0,
                       metavar="X",
                       help="fail unless the packed_procs leg beats the "
                            "in-process fold by X (0 = report-only; the "
                            "gate is skipped automatically on single-core "
                            "hosts — digest equality and crash recovery "
                            "are always enforced)")
    bench.add_argument("--out", default="BENCH_runtime.json", metavar="PATH",
                       help="write the JSON report here ('-' = stdout only)")
    bench.set_defaults(func=_cmd_bench)

    cache = sub.add_parser(
        "cache", help="artifact cache maintenance (stats/clear/verify)"
    )
    cache.add_argument("action", choices=["stats", "clear", "verify"],
                       help="stats: entries/bytes per kind; clear: delete "
                            "all entries; verify: re-hash and evict "
                            "corrupt entries")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache location (default: "
                            "$REPRO_CACHE_DIR or ./.repro-cache)")
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Default subcommand: treat `repro foo.mc` as `repro recommend foo.mc`.
    known = {"recommend", "psec", "overhead", "ir", "dis", "bench", "cache",
             "-h", "--help", "--version"}
    if argv and argv[0] not in known:
        argv.insert(0, "recommend")
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
