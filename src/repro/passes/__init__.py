"""Pass-manager layer: cached analyses, registered passes, pipelines.

See :mod:`repro.passes.manager` for the architecture overview."""

from repro.passes.manager import (
    AnalysisManager,
    AnalysisRequest,
    Pass,
    PassManager,
    PassRunStats,
    PassTimingReport,
    PipelineContext,
    UnknownAnalysisError,
    register_analysis,
    registered_analysis_names,
)
from repro.passes import analyses  # noqa: F401  (registers the analyses)
from repro.passes.registry import (
    UnknownPassError,
    create_pass,
    is_registered,
    parse_pipeline,
    register_alias,
    register_pass,
    registered_alias_names,
    registered_pass_names,
)

__all__ = [
    "AnalysisManager", "AnalysisRequest", "Pass", "PassManager",
    "PassRunStats", "PassTimingReport", "PipelineContext",
    "UnknownAnalysisError", "register_analysis",
    "registered_analysis_names", "UnknownPassError", "create_pass",
    "is_registered", "parse_pipeline", "register_alias", "register_pass",
    "registered_alias_names", "registered_pass_names",
]
