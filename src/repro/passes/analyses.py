"""Registered analyses: the NOELLE-style machinery behind the passes.

Each entry wraps one of the analyses in :mod:`repro.analysis` so every
consumer fetches results through the :class:`~repro.passes.manager.
AnalysisManager` — computed once per (scope, IR state), shared across
passes, and invalidated when a transform mutates the IR.
"""

from __future__ import annotations

from repro.analysis.alias import PointsTo
from repro.analysis.callgraph import CallGraph
from repro.analysis.dominators import DominatorInfo
from repro.analysis.liveness import locals_read_after_region
from repro.analysis.loops import find_loops
from repro.analysis.mustaccess import analyze_must_access
from repro.analysis.pdg import MemoryDependences
from repro.analysis.regions import all_roi_regions
from repro.passes.manager import register_analysis


@register_analysis("points-to", "module")
def _points_to(am, module) -> PointsTo:
    """Andersen-style points-to sets (alias + indirect-call oracle)."""
    return PointsTo(module)


@register_analysis("callgraph", "module")
def _callgraph(am, module) -> CallGraph:
    """Complete call graph, resolved through the points-to analysis."""
    return CallGraph(module, am.get("points-to"))


@register_analysis("roi-regions", "module")
def _roi_regions(am, module):
    """roi_id -> static :class:`RoiRegion` extent."""
    return all_roi_regions(module)


@register_analysis("roi-tagged-functions", "module")
def _roi_tagged_functions(am, module):
    """Functions that may be live on the callstack when an ROI starts
    (the complement is eligible for the full -O3 treatment, §4.4.5)."""
    callgraph = am.get("callgraph")
    roi_functions = sorted({roi.function for roi in module.rois.values()})
    return callgraph.transitive_callers(roi_functions)


@register_analysis("dominators", "function")
def _dominators(am, function) -> DominatorInfo:
    """Dominator tree + dominance frontiers (Cooper–Harvey–Kennedy)."""
    return DominatorInfo(function)


@register_analysis("loops", "function")
def _loops(am, function):
    """Natural loops, discovered over the cached dominator tree."""
    return find_loops(function, am.get("dominators", function))


@register_analysis("liveness", "region")
def _liveness(am, function, region):
    """uids of locals/params that may be read after the ROI region."""
    roi = am.module.rois[region.roi_id]
    return locals_read_after_region(function, region, roi.is_loop_body)


@register_analysis("must-access", "region")
def _must_access(am, function, region):
    """Must-already-accessed/-written sets over the region (opt 1)."""
    return analyze_must_access(function, region)


@register_analysis("memory-deps", "region")
def _memory_deps(am, function, region) -> MemoryDependences:
    """PDG memory-dependence oracle for one ROI region (opt 3)."""
    return MemoryDependences(function, region, am.get("points-to"))
