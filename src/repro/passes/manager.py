"""Pass-manager infrastructure: cached analyses and observable passes.

Two managers, mirroring the LLVM/NOELLE architecture the paper's seven
optimizations were written against:

- :class:`AnalysisManager` — computes registered analyses on demand and
  caches the results, keyed by scope (whole module, one function, or one
  ROI region).  Transform passes that mutate the IR trigger **explicit
  invalidation** so no consumer can ever observe a stale dominator tree or
  points-to set.
- :class:`PassManager` — runs a sequence of registered passes over a
  module, recording per-pass wall time, the analyses each pass requested
  (with cache hit/miss attribution), and IR-delta statistics into a
  :class:`PassTimingReport` (surfaced by ``--print-pass-stats``).

Analyses are plain compute functions registered with
:func:`register_analysis`; passes subclass :class:`Pass` and register via
:func:`repro.passes.registry.register_pass`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.ir.module import Function, Module

#: Valid analysis scopes.
SCOPES = ("module", "function", "region")


class UnknownAnalysisError(ReproError):
    pass


@dataclass(frozen=True)
class AnalysisInfo:
    """One registered analysis: a name, a scope, and a compute function.

    Compute signatures by scope:

    - ``module``:   ``compute(am, module)``
    - ``function``: ``compute(am, function)``
    - ``region``:   ``compute(am, function, region)``

    A compute function may itself call ``am.get`` — nested requests are
    cached (and attributed to the running pass) like any other.
    """

    name: str
    scope: str
    compute: Callable[..., Any]


_ANALYSES: Dict[str, AnalysisInfo] = {}


def register_analysis(name: str, scope: str):
    """Decorator registering a compute function as a named analysis."""
    if scope not in SCOPES:
        raise ValueError(f"bad analysis scope {scope!r}")

    def decorator(compute: Callable[..., Any]) -> Callable[..., Any]:
        if name in _ANALYSES:
            raise ValueError(f"analysis {name!r} registered twice")
        _ANALYSES[name] = AnalysisInfo(name, scope, compute)
        return compute

    return decorator


def registered_analysis_names() -> List[str]:
    return sorted(_ANALYSES)


def analysis_info(name: str) -> AnalysisInfo:
    try:
        return _ANALYSES[name]
    except KeyError:
        raise UnknownAnalysisError(
            f"unknown analysis {name!r}; registered analyses: "
            + ", ".join(registered_analysis_names())
        ) from None


# ---------------------------------------------------------------------------
# Observability records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisRequest:
    """One ``am.get`` call, as attributed to the pass that issued it."""

    name: str
    scope: str  # "module", "fn:<name>", or "fn:<name>/roi:<id>"
    hit: bool


@dataclass
class PassRunStats:
    """Everything recorded about one pass execution."""

    name: str
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    requests: List[AnalysisRequest] = field(default_factory=list)
    instrs_before: int = 0
    instrs_after: int = 0
    blocks_before: int = 0
    blocks_after: int = 0
    changed: bool = False
    #: Pass-specific counters published via :meth:`AnalysisManager.annotate`
    #: (e.g. prescreen's verdict counts), rendered under the stats table.
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def instr_delta(self) -> int:
        return self.instrs_after - self.instrs_before

    @property
    def block_delta(self) -> int:
        return self.blocks_after - self.blocks_before

    def analyses_used(self) -> List[str]:
        """Distinct analysis names this pass requested, in request order."""
        seen: List[str] = []
        for request in self.requests:
            if request.name not in seen:
                seen.append(request.name)
        return seen


@dataclass
class PassTimingReport:
    """Per-pass observability for one pipeline run."""

    runs: List[PassRunStats] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(r.wall_time for r in self.runs)

    @property
    def total_hits(self) -> int:
        return sum(r.cache_hits for r in self.runs)

    @property
    def total_misses(self) -> int:
        return sum(r.cache_misses for r in self.runs)

    def stats_for(self, pass_name: str) -> Optional[PassRunStats]:
        for run in self.runs:
            if run.name == pass_name:
                return run
        return None

    def hits_for_analysis(self, analysis_name: str) -> int:
        return sum(1 for run in self.runs for req in run.requests
                   if req.name == analysis_name and req.hit)

    def analysis_summary(self) -> Dict[str, Tuple[int, int]]:
        """analysis name -> (times computed, times served from cache)."""
        summary: Dict[str, Tuple[int, int]] = {}
        for run in self.runs:
            for req in run.requests:
                computed, served = summary.get(req.name, (0, 0))
                if req.hit:
                    summary[req.name] = (computed, served + 1)
                else:
                    summary[req.name] = (computed + 1, served)
        return summary

    def render(self) -> str:
        """Human-readable table for ``--print-pass-stats``."""
        headers = ["pass", "time_ms", "hit", "miss", "Δinstr", "Δblock",
                   "analyses"]
        rows: List[List[str]] = []
        for run in self.runs:
            rows.append([
                run.name,
                f"{1000.0 * run.wall_time:.2f}",
                str(run.cache_hits),
                str(run.cache_misses),
                f"{run.instr_delta:+d}" if run.instr_delta else "0",
                f"{run.block_delta:+d}" if run.block_delta else "0",
                ", ".join(run.analyses_used()) or "-",
            ])
        rows.append([
            "total", f"{1000.0 * self.total_time:.2f}",
            str(self.total_hits), str(self.total_misses), "", "", "",
        ])
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  for i in range(len(headers))]
        lines = ["pass statistics:"]
        lines.append("  " + "  ".join(h.ljust(widths[i])
                                      for i, h in enumerate(headers)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  " + "  ".join(cell.ljust(widths[i])
                                          for i, cell in enumerate(row)))
        summary = self.analysis_summary()
        if summary:
            lines.append("  analysis cache: " + "; ".join(
                f"{name} computed {computed}x, served {served}x"
                for name, (computed, served) in sorted(summary.items())
            ))
        for run in self.runs:
            if run.extras:
                lines.append(f"  {run.name}: " + " ".join(
                    f"{key}={value}"
                    for key, value in sorted(run.extras.items())
                ))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# AnalysisManager
# ---------------------------------------------------------------------------


class AnalysisManager:
    """On-demand analysis cache with explicit invalidation.

    Results are keyed by ``(analysis, scope key)``; fetching a cached key
    is a *hit*, computing is a *miss*.  Hits/misses are attributed to the
    pass currently running under a :class:`PassManager` (if any) and to
    the manager-wide counters either way.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self._cache: Dict[Tuple, Any] = {}
        self.hits = 0
        self.misses = 0
        self._current_stats: Optional[PassRunStats] = None

    # -- fetching --------------------------------------------------------

    def get(self, name: str, function: Optional[Function] = None,
            region: Any = None) -> Any:
        info = analysis_info(name)
        key, scope_desc = self._key_for(info, function, region)
        if key in self._cache:
            self._record(info.name, scope_desc, hit=True)
            return self._cache[key]
        self._record(info.name, scope_desc, hit=False)
        if info.scope == "module":
            result = info.compute(self, self.module)
        elif info.scope == "function":
            result = info.compute(self, function)
        else:
            result = info.compute(self, function, region)
        self._cache[key] = result
        return result

    def cached(self, name: str, function: Optional[Function] = None,
               region: Any = None) -> bool:
        """Is the result already in the cache?  (No compute, no stats.)"""
        info = analysis_info(name)
        key, _ = self._key_for(info, function, region)
        return key in self._cache

    def _key_for(self, info: AnalysisInfo, function: Optional[Function],
                 region: Any) -> Tuple[Tuple, str]:
        if info.scope == "module":
            return (info.name,), "module"
        if function is None:
            raise ValueError(
                f"analysis {info.name!r} is {info.scope}-scoped and needs "
                "a function"
            )
        if info.scope == "function":
            return (info.name, function.name), f"fn:{function.name}"
        if region is None:
            raise ValueError(
                f"analysis {info.name!r} is region-scoped and needs a region"
            )
        roi_id = region.roi_id
        return ((info.name, function.name, roi_id),
                f"fn:{function.name}/roi:{roi_id}")

    def _record(self, name: str, scope_desc: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        stats = self._current_stats
        if stats is not None:
            if hit:
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
            stats.requests.append(AnalysisRequest(name, scope_desc, hit))

    # -- invalidation ----------------------------------------------------

    def invalidate_all(self, preserve: Tuple[str, ...] = ()) -> None:
        """Drop every cached result except the named analyses."""
        if not preserve:
            self._cache.clear()
            return
        keep = set(preserve)
        self._cache = {key: value for key, value in self._cache.items()
                       if key[0] in keep}

    def invalidate(self, name: str) -> None:
        """Drop every cached result of one analysis."""
        self._cache = {key: value for key, value in self._cache.items()
                       if key[0] != name}

    def invalidate_function(self, function: Function) -> None:
        """Drop results scoped to ``function`` plus all module-scope
        results (which may embed facts about it)."""
        dropped: Set[Tuple] = set()
        for key in self._cache:
            info = _ANALYSES.get(key[0])
            if info is None:
                continue
            if info.scope == "module":
                dropped.add(key)
            elif len(key) >= 2 and key[1] == function.name:
                dropped.add(key)
        for key in dropped:
            del self._cache[key]

    def annotate(self, key: str, value: Any) -> None:
        """Publish a pass-specific counter into the running pass's stats
        (no-op outside a :class:`PassManager` run)."""
        if self._current_stats is not None:
            self._current_stats.extras[key] = value

    # -- pass attribution (driven by PassManager) ------------------------

    def _begin_pass(self, stats: PassRunStats) -> None:
        self._current_stats = stats

    def _end_pass(self) -> None:
        self._current_stats = None


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class Pass:
    """Base class for registered passes.

    ``mutates_ir`` declares whether a pass rewrites the module; when such a
    pass reports a change, the :class:`PassManager` invalidates the
    analysis cache (minus ``preserves``) so later passes recompute.
    Plan-only passes (the CARMOT probe planners) leave the IR untouched
    and keep the cache warm.
    """

    name: str = "<anonymous>"
    mutates_ir: bool = False
    preserves: Tuple[str, ...] = ()

    def run(self, module: Module, am: AnalysisManager,
            ctx: "PipelineContext") -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pass {self.name}>"


@dataclass
class PipelineContext:
    """Mutable state shared by the passes of one pipeline run.

    ``policy`` feeds probe planning; ``plan`` accumulates the
    instrumentation decisions; ``build_info`` collects CARMOT build
    metadata; ``handled`` maps roi_id -> syntactic PSE keys already
    covered by fixed classification (so opt 1 skips them).
    """

    policy: Optional[Any] = None
    plan: Optional[Any] = None
    build_info: Optional[Any] = None
    instrument_report: Optional[Any] = None
    handled: Dict[int, Set[Tuple]] = field(default_factory=dict)

    def ensure_plan(self) -> Any:
        if self.plan is None:
            from repro.compiler.instrument import InstrumentationPlan

            if self.policy is None:
                raise ReproError(
                    "pipeline needs an instrumentation policy to plan probes"
                )
            self.plan = InstrumentationPlan(policy=self.policy,
                                            gate_all_calls=True)
        return self.plan


class PassManager:
    """Runs a pipeline of passes with caching, invalidation, and stats."""

    def __init__(self, passes, ctx: Optional[PipelineContext] = None) -> None:
        from repro.passes.registry import create_pass

        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else create_pass(p) for p in passes
        ]
        self.ctx = ctx or PipelineContext()
        self.report: Optional[PassTimingReport] = None

    def run(self, module: Module,
            am: Optional[AnalysisManager] = None) -> PassTimingReport:
        am = am or AnalysisManager(module)
        report = PassTimingReport()
        for pass_ in self.passes:
            stats = PassRunStats(name=pass_.name)
            before = module.ir_stats()
            stats.instrs_before = before.instructions
            stats.blocks_before = before.blocks
            am._begin_pass(stats)
            start = time.perf_counter()
            try:
                changed = bool(pass_.run(module, am, self.ctx))
            finally:
                stats.wall_time = time.perf_counter() - start
                am._end_pass()
            after = module.ir_stats()
            stats.instrs_after = after.instructions
            stats.blocks_after = after.blocks
            stats.changed = changed
            if changed and pass_.mutates_ir:
                am.invalidate_all(preserve=pass_.preserves)
            report.runs.append(stats)
        self.report = report
        return report
