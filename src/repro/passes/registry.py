"""Pass registry and ``-passes=``-style pipeline descriptions.

Every transform/planning pass registers under a stable string name;
pipelines are then described as comma-separated text à la LLVM's
``-passes=``:

    ``"callgraph-o3,selective-mem2reg,instrument"``

Aliases expand to predefined sequences (``carmot``, ``naive``,
``baseline``),
and a leading ``-`` removes a pass from the pipeline built so far — the
Figure-8 toggles are spelled ``"carmot,-pin-reduction"``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Type, Union

from repro.errors import ReproError
from repro.passes.manager import Pass


class UnknownPassError(ReproError):
    pass


#: Version of the pass registry's *semantics*: bump when a registered
#: pass changes behaviour without changing its name, so pipeline cache
#: keys derived from :func:`registry_fingerprint` stop matching old
#: artifacts.  2: prescreen-aware planning (fixed-classification and
#: aggregation skip statically-claimed PSEs).
REGISTRY_VERSION = 2


_PASSES: Dict[str, Type[Pass]] = {}
_ALIASES: Dict[str, List[str]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator adding a :class:`Pass` subclass to the registry."""
    name = cls.name
    if not name or name == Pass.name:
        raise ValueError(f"pass {cls!r} needs a name attribute")
    if name in _PASSES:
        raise ValueError(f"pass {name!r} registered twice")
    _PASSES[name] = cls
    return cls


def register_alias(alias: str, names: Sequence[str]) -> None:
    """Register ``alias`` to expand to the given pass names."""
    _ALIASES[alias] = list(names)


def registered_pass_names() -> List[str]:
    _ensure_registered()
    return sorted(_PASSES)


def registered_alias_names() -> List[str]:
    _ensure_registered()
    return sorted(_ALIASES)


def is_registered(name: str) -> bool:
    _ensure_registered()
    return name in _PASSES


def create_pass(name: str) -> Pass:
    """Instantiate a registered pass by name."""
    _ensure_registered()
    cls = _PASSES.get(name)
    if cls is None:
        raise UnknownPassError(_unknown_message(name))
    return cls()


def _unknown_message(name: str) -> str:
    return (
        f"unknown pass {name!r}; registered passes: "
        + ", ".join(registered_pass_names())
        + "; aliases: " + ", ".join(registered_alias_names())
    )


def _unknown_negation_message(target: str, token: str) -> str:
    """FaultPlan.parse-style message for ``-name`` with an unknown name."""
    return (
        f"unknown pass {target!r} in negation {token!r} "
        f"(choose from registered passes {registered_pass_names()} "
        f"or aliases {registered_alias_names()})"
    )


def _ensure_registered() -> None:
    """The compiler module registers its passes at import time; make sure
    that happened before answering registry queries."""
    if not _PASSES:
        import repro.compiler  # noqa: F401  (side effect: registration)


def registry_fingerprint() -> str:
    """Digest of the registry's contents: registered pass names, alias
    expansions, and :data:`REGISTRY_VERSION`.

    Part of every pass-pipeline cache key (:mod:`repro.session.keys`):
    registering, removing, or re-aliasing a pass — or bumping
    ``REGISTRY_VERSION`` for a behavioural change — invalidates cached
    pipeline artifacts without touching frontend or profile entries.
    """
    _ensure_registered()
    doc = {
        "version": REGISTRY_VERSION,
        "passes": registered_pass_names(),
        "aliases": {alias: _ALIASES[alias] for alias in sorted(_ALIASES)},
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def parse_pipeline(text: Union[str, Sequence[str]]) -> List[str]:
    """Parse a pipeline description into a list of registered pass names.

    ``text`` may already be a sequence of names (validated as-is).  In
    textual form, entries are comma-separated; an alias expands in place;
    ``-name`` removes every earlier occurrence of ``name`` (a registered
    pass, or an alias — which removes every pass in its expansion).
    Unknown entries raise :class:`UnknownPassError` listing the
    registered names.
    """
    _ensure_registered()
    if isinstance(text, str):
        tokens = [t.strip() for t in text.split(",") if t.strip()]
    else:
        tokens = list(text)
    result: List[str] = []
    for token in tokens:
        if token.startswith("-"):
            target = token[1:]
            if target in _PASSES:
                result = [n for n in result if n != target]
            elif target in _ALIASES:
                removed = set(_ALIASES[target])
                result = [n for n in result if n not in removed]
            else:
                raise UnknownPassError(
                    _unknown_negation_message(target, token)
                )
        elif token in _ALIASES:
            result.extend(_ALIASES[token])
        elif token in _PASSES:
            result.append(token)
        else:
            raise UnknownPassError(_unknown_message(token))
    return result
