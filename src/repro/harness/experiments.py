"""Experiment drivers: one function per table/figure of the evaluation (§5).

Every driver returns structured rows and can render itself as text; the
``benchmarks/`` suite wraps these with pytest-benchmark and asserts the
paper's qualitative claims (who wins, by roughly what factor)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.abstractions import (
    ABSTRACTION_REQUIREMENTS,
    ParallelForRecommendation,
    generate_parallel_for,
    recommend,
    simulated_leak_with_cycles,
)
from repro.compiler import (
    OPTION_PASSES,
    CarmotOptions,
    compile_baseline,
    compile_carmot,
    compile_naive,
    frontend,
)
from repro.errors import ReproError
from repro.harness.reporting import render_table
from repro.parallel import (
    DEFAULT_MACHINE,
    ParallelMachine,
    profile_execution,
    program_speedup,
    simulate_parallel_for,
    simulate_sections,
)
from repro.runtime.psec import MemoryBudgetExceeded, Psec
from repro.vm.interpreter import run_module
from repro.workloads import ALL_WORKLOADS, Workload, figure6_workloads

_USE_CASE_OF = {"openmp": "openmp", "cycles": "cycles", "stats": "stats"}
_ABSTRACTION_OF = {
    "openmp": "parallel_for",
    "cycles": "smart_pointers",
    "stats": "stats",
}


# ---------------------------------------------------------------------------
# Overheads (Figures 7, 10, 11)
# ---------------------------------------------------------------------------


@dataclass
class OverheadRow:
    benchmark: str
    baseline_cost: int
    naive_overhead: Optional[float]  # None = did not complete (the "*")
    carmot_overhead: float

    @property
    def gap(self) -> Optional[float]:
        if self.naive_overhead is None:
            return None
        return self.naive_overhead / self.carmot_overhead


def measure_overheads(
    workload: Workload, use_case: str
) -> OverheadRow:
    """Baseline vs naive vs CARMOT cost on the test-size input (§5)."""
    source = workload.test_source(use_case)
    abstraction = _ABSTRACTION_OF[use_case]
    baseline, _ = compile_baseline(source, workload.name).run()
    naive_overhead: Optional[float]
    try:
        naive, _ = compile_naive(source, abstraction, workload.name).run()
        naive_overhead = naive.cost / baseline.cost
    except MemoryBudgetExceeded:
        naive_overhead = None
    carmot, _ = compile_carmot(source, abstraction, name=workload.name).run()
    return OverheadRow(
        workload.name, baseline.cost, naive_overhead,
        carmot.cost / baseline.cost,
    )


#: Memo for the full-suite overhead sweeps: cross-figure comparisons (the
#: Fig. 10/11 benches compare against Fig. 7) reuse one measurement.
_overhead_memo: Dict[str, List[OverheadRow]] = {}


def _overhead_sweep(use_case: str,
                    workloads: Optional[List[Workload]]) -> List[OverheadRow]:
    if workloads is not None:
        return [measure_overheads(w, use_case) for w in workloads]
    if use_case not in _overhead_memo:
        _overhead_memo[use_case] = [
            measure_overheads(w, use_case) for w in ALL_WORKLOADS
        ]
    return list(_overhead_memo[use_case])


def figure7(workloads: Optional[List[Workload]] = None) -> List[OverheadRow]:
    """OpenMP use case overhead: naive vs CARMOT (Figure 7)."""
    return _overhead_sweep("openmp", workloads)


def figure10(workloads: Optional[List[Workload]] = None) -> List[OverheadRow]:
    """Reference-cycle use case overhead (Figure 10)."""
    return _overhead_sweep("cycles", workloads)


def figure11(workloads: Optional[List[Workload]] = None) -> List[OverheadRow]:
    """STATS use case overhead (Figure 11)."""
    return _overhead_sweep("stats", workloads)


def render_overheads(title: str, rows: List[OverheadRow]) -> str:
    table = [
        (r.benchmark,
         "*" if r.naive_overhead is None else round(r.naive_overhead, 1),
         round(r.carmot_overhead, 2),
         "*" if r.gap is None else round(r.gap, 1))
        for r in rows
    ]
    return render_table(title, ["benchmark", "naive_x", "carmot_x", "gap_x"],
                        table)


# ---------------------------------------------------------------------------
# Figure 8: per-optimization breakdown
# ---------------------------------------------------------------------------

#: The four categories of Figure 8.
BREAKDOWN_GROUPS: Dict[str, Dict[str, bool]] = {
    "reduce_pin": {"reduce_pin": False},
    "callstack_clustering": {"callstack_clustering": False},
    "callgraph_o3": {"callgraph_o3": False},
    "redundant_instrumentation": {
        "subsequent_accesses": False,
        "aggregation": False,
        "fixed_classification": False,
        "selective_mem2reg": False,
    },
}


def breakdown_pipeline(toggles: Dict[str, bool]) -> str:
    """``-passes=``-style pipeline text for one Figure-8 configuration:
    full CARMOT minus the passes behind each disabled toggle (runtime-only
    knobs such as callstack clustering remove no pass)."""
    parts = ["carmot"]
    for option, enabled in toggles.items():
        if not enabled:
            parts.extend(f"-{name}" for name in OPTION_PASSES[option])
    return ",".join(parts)


@dataclass
class BreakdownRow:
    benchmark: str
    #: group -> share (%) of the total measured optimization benefit.
    shares: Dict[str, float]
    full_overhead: float


def figure8(workloads: Optional[List[Workload]] = None) -> List[BreakdownRow]:
    """Contribution of each PSEC-specific optimization (Figure 8): for each
    group, the overhead increase when only that group is disabled,
    normalized across groups."""
    rows: List[BreakdownRow] = []
    for workload in workloads or ALL_WORKLOADS:
        source = workload.test_source("openmp")
        baseline, _ = compile_baseline(source, workload.name).run()
        full, _ = compile_carmot(source, name=workload.name).run()
        full_overhead = full.cost / baseline.cost
        deltas: Dict[str, float] = {}
        for group, toggles in BREAKDOWN_GROUPS.items():
            # Each configuration is a named pipeline (the options only
            # carry the runtime knobs, e.g. callstack clustering off).
            options = CarmotOptions(**toggles)
            result, _ = compile_carmot(
                source, options=options, name=workload.name,
                pipeline=breakdown_pipeline(toggles),
            ).run()
            deltas[group] = max(0.0, result.cost / baseline.cost
                                - full_overhead)
        total = sum(deltas.values()) or 1.0
        rows.append(BreakdownRow(
            workload.name,
            {g: 100.0 * d / total for g, d in deltas.items()},
            full_overhead,
        ))
    return rows


def render_breakdown(rows: List[BreakdownRow]) -> str:
    headers = ["benchmark"] + list(BREAKDOWN_GROUPS) + ["carmot_x"]
    table = [
        [r.benchmark] + [round(r.shares[g], 1) for g in BREAKDOWN_GROUPS]
        + [round(r.full_overhead, 2)]
        for r in rows
    ]
    return render_table("Figure 8: overhead reduction per optimization [%]",
                        headers, table)


# ---------------------------------------------------------------------------
# Figure 6: speedups
# ---------------------------------------------------------------------------


@dataclass
class SpeedupRow:
    benchmark: str
    original_speedup: float
    carmot_speedup: float
    original_kind: str
    unsupported_original: bool


def _serial_fraction_for(
    rec: ParallelForRecommendation,
    psec: Psec,
    profile,
    roi_id: int,
) -> float:
    """Serialized share of one iteration under the generated pragma.

    Scalar Transfer variables serialize their statements (measured by the
    per-line cost attribution); memory-element Transfers serialize only the
    accesses touching those elements (Figure 2's precision), estimated from
    the PSEC access counts."""
    scalar_lines: Set[Tuple[str, int]] = set()
    transfer_mem_accesses = 0
    names_with_ordered = {advice.pse_name for advice in rec.ordered}
    for key, entry in psec.entries.items():
        if "T" not in entry.letters:
            continue
        if key[0] == "var" and entry.var is not None:
            # Reduction variables run fully parallel; only PSEs the
            # recommendation actually wraps in critical/ordered serialize.
            if entry.var.name not in names_with_ordered:
                continue
            for site, _ in entry.uses:
                if ":" in site:
                    filename, _, line = site.rpartition(":")
                    if line.isdigit():
                        scalar_lines.add((filename, int(line)))
        else:
            transfer_mem_accesses += entry.access_count
    fraction = profile.serial_fraction_of_lines(roi_id, scalar_lines)
    loop = profile.loops.get(roi_id)
    if (transfer_mem_accesses and loop is not None and loop.iterations
            and psec.invocations):
        # Fine-grained synchronization around the transfer elements only
        # (Figure 2's precision): estimate the guarded work as ~4 cost
        # units per transfer-element access per invocation.
        per_invocation = transfer_mem_accesses / psec.invocations
        avg_iteration = loop.total_cost / loop.iterations
        if avg_iteration > 0:
            fraction += min(1.0, 4.0 * per_invocation / avg_iteration)
    return min(1.0, fraction)


def _loop_overhead(profile, module, roi_id: int) -> int:
    """Cost of the ROI loop's own control (init/cond/step): those
    instructions run outside the body markers but belong to the region and
    parallelize with it (each thread iterates its own chunk)."""
    roi = module.rois.get(roi_id)
    if roi is None:
        return 0
    return profile.line_costs.get((roi.loc.filename, roi.loc.line), 0)


def _padded(loop, overhead: int) -> List[int]:
    if not loop.iterations:
        return list(loop.iteration_costs)
    extra = overhead // loop.iterations
    return [c + extra for c in loop.iteration_costs]


def figure6(
    workloads: Optional[List[Workload]] = None,
    machine: ParallelMachine = DEFAULT_MACHINE,
) -> List[SpeedupRow]:
    """Original vs CARMOT-induced parallelism on reference inputs."""
    rows: List[SpeedupRow] = []
    for workload in workloads or figure6_workloads():
        source = workload.ref_source("openmp")
        baseline = compile_baseline(source, workload.name)
        profile = profile_execution(baseline.module)
        total = profile.total_cost

        original_regions: List[dict] = []
        if workload.original_kind == "sections":
            for sections in profile.sections.values():
                original_regions.append({
                    "serial": sections.total_cost,
                    "parallel": simulate_sections(
                        sections.section_costs, sections.serial_extra,
                        machine,
                    ),
                })
        else:
            for loop_info in baseline.module.omp_loops:
                if loop_info.roi_id is None:
                    continue
                loop = profile.loops.get(loop_info.roi_id)
                if loop is None or not loop.iterations:
                    continue
                pragma = loop_info.pragma
                overhead = _loop_overhead(profile, baseline.module,
                                          loop_info.roi_id)
                original_regions.append({
                    "serial": loop.total_cost + overhead,
                    "parallel": simulate_parallel_for(
                        _padded(loop, overhead),
                        serial_costs=loop.serial_costs,
                        ordered=getattr(pragma, "has_ordered_clause", False),
                        has_reduction=bool(getattr(pragma, "reductions", ())),
                        machine=machine,
                    ),
                })
        original = program_speedup(total, original_regions)

        carmot = compile_carmot(source, name=workload.name)
        _, runtime = carmot.run()
        carmot_regions: List[dict] = []
        for roi_id, roi in carmot.module.rois.items():
            if roi.abstraction != "parallel_for" or not roi.is_loop_body:
                continue
            loop = profile.loops.get(roi_id)
            if loop is None or not loop.iterations:
                continue
            psec = runtime.psecs[roi_id]
            rec = generate_parallel_for(carmot.module, psec, runtime.asmt,
                                        roi)
            fraction = _serial_fraction_for(rec, psec, profile, roi_id)
            overhead = _loop_overhead(profile, baseline.module, roi_id)
            carmot_regions.append({
                "serial": loop.total_cost + overhead,
                "parallel": simulate_parallel_for(
                    _padded(loop, overhead),
                    serial_fraction=fraction,
                    ordered=rec.needs_serialization,
                    has_reduction=bool(rec.reductions),
                    machine=machine,
                ),
            })
        carmot_speedup = program_speedup(total, carmot_regions)
        rows.append(SpeedupRow(
            workload.name, original, carmot_speedup,
            workload.original_kind, workload.unsupported_original,
        ))
    return rows


def render_speedups(rows: List[SpeedupRow]) -> str:
    table = [
        (r.benchmark, round(r.original_speedup, 2),
         round(r.carmot_speedup, 2),
         "sections/pthreads" if r.original_kind == "sections" else "omp",
         "yes" if r.unsupported_original else "no")
        for r in rows
    ]
    return render_table(
        "Figure 6: speedup over serial (16 simulated threads)",
        ["benchmark", "original_x", "carmot_x", "original_kind",
         "unsupported"],
        table,
    )


# ---------------------------------------------------------------------------
# Table 1 and §2.3
# ---------------------------------------------------------------------------


def table1() -> str:
    rows = [
        (name, "v" if req.sets else "x",
         "v" if req.use_callstacks else "x",
         "v" if req.reachability_graph else "x")
        for name, req in ABSTRACTION_REQUIREMENTS.items()
    ]
    return render_table(
        "Table 1: PSEC components needed per abstraction",
        ["abstraction", "sets(IOCT)", "use-callstacks", "reachability"],
        rows,
    )


def access_ratio(workloads: Optional[List[Workload]] = None) -> List[Tuple[str, float]]:
    """§2.3: how many more accesses PSEC tracks (variables + memory) than a
    memory-only tool (memory locations only)."""
    rows: List[Tuple[str, float]] = []
    for workload in workloads or ALL_WORKLOADS:
        module = frontend(workload.test_source("openmp"), workload.name)
        result = run_module(module)
        mem = max(result.access_counts["mem"], 1)
        ratio = (result.access_counts["var"] + mem) / mem
        rows.append((workload.name, ratio))
    return rows


# ---------------------------------------------------------------------------
# §5.2: the nab leak experiment
# ---------------------------------------------------------------------------


@dataclass
class LeakReport:
    leaked_bytes_before: int
    cycle_count: int
    cycle_held_bytes: int
    still_held_after_fix: int

    @property
    def leaked_bytes_after(self) -> int:
        return (self.leaked_bytes_before - self.cycle_held_bytes
                + self.still_held_after_fix)

    @property
    def reduction_percent(self) -> float:
        if self.leaked_bytes_before == 0:
            return 0.0
        return 100.0 * (1 - self.leaked_bytes_after
                        / self.leaked_bytes_before)


def nab_leak_experiment(workload: Optional[Workload] = None,
                        params: Optional[dict] = None) -> LeakReport:
    """§5.2: bytes leaked before/after porting the CARMOT-reported cycle
    to smart pointers (weak-pointer fix applied to the suggested edges)."""
    from repro.workloads import workload as get_workload

    wl = workload or get_workload("nab")
    source = wl.source(params or wl.ref_params, "cycles")
    program = compile_carmot(source, name="nab")
    result, runtime = program.run()
    roi_id = next(roi_id for roi_id, roi in program.module.rois.items()
                  if roi.abstraction == "smart_pointers")
    psec = runtime.psecs[roi_id]
    rec = recommend(runtime, roi_id)
    cycles = psec.reachability.find_cycles()
    held = simulated_leak_with_cycles(psec, runtime.asmt)
    broken = [(c.raw.weak_edge.src, c.raw.weak_edge.dst) for c in rec.cycles]
    still = simulated_leak_with_cycles(psec, runtime.asmt, broken)
    return LeakReport(result.leaked_bytes, len(cycles), held, still)
