"""Runtime hot-path benchmark: the ``repro bench`` subcommand.

Two workload families feed ``BENCH_runtime.json``:

- **event stream** — a synthetic, seeded access stream drives the runtime
  event sinks directly (``submit(AccessEvent(...))`` vs
  ``packed_access(...)``), isolating exactly what the packed encoding
  changed: event capture, batching, and the FSA fold.  This is where the
  packed-vs-object speedup is measured (events/sec, ns/event), and both
  encodings must produce byte-identical PSEC sets (the ``digest`` field).
- **workloads** — representative programs end-to-end under
  baseline / naive / carmot, the instrumented modes under both encodings:
  cost-model overhead ratios (deterministic) plus wall-clock throughput.

The deterministic section (digests, costs, event counts) is reproducible
run-to-run for a fixed seed; only wall-clock figures vary.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import random
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro._version import __version__
from repro.compiler import (
    CarmotOptions,
    compile_baseline,
    compile_carmot,
    compile_naive,
)
from repro.ir.instructions import SourceLoc, VarInfo
from repro.ir.module import Module
from repro.lang import types as ct
from repro.lang.tokens import SourcePos
from repro.resilience import FaultPlan, ResiliencePolicy
from repro.runtime.config import RuntimeConfig, policy_for
from repro.runtime.engine import CarmotRuntime
from repro.runtime.events import AccessEvent
from repro.vm.bytecode import (
    dequicken_module,
    fused_site_counts,
    quickened_op_count,
)
from repro.workloads import ALL_WORKLOADS

#: Workloads for the end-to-end leg (the full list makes ``bench`` take
#: minutes; these three cover small/medium/large event volumes).
_BENCH_WORKLOADS = ("bt", "lu", "canneal")
_QUICK_WORKLOADS = ("bt",)


# ---------------------------------------------------------------------------
# Synthetic event stream
# ---------------------------------------------------------------------------


def _bench_module() -> Module:
    """A module with one ROI — just enough for a CarmotRuntime."""
    module = Module("bench")
    module.new_roi("bench_roi", "parallel_for", "main",
                   SourcePos("bench.mc", 1, 1))
    return module


#: Loop-body rosters for the three stream workloads: (scalar sites,
#: array-walk sites, aggregated sites) drawn per phase.  ``scalar_loop``
#: is a tight reduction/flag loop (the paper's induction-variable hot
#: path); ``mixed_loop`` adds array walks and an occasional aggregated
#: access; ``array_walk`` is dominated by walks whose offset advances
#: every iteration (the anti-merging worst case).
_STREAM_SHAPES: Dict[str, Tuple[Tuple[int, int], Tuple[int, int], float]] = {
    "scalar_loop": ((6, 9), (0, 0), 0.0),
    "mixed_loop": ((4, 7), (1, 2), 0.3),
    "array_walk": ((0, 1), (2, 3), 0.3),
}


def _make_stream(
    seed: int, n_events: int, shape: str = "mixed_loop"
) -> Tuple[List[Tuple[int, int, int, int, int, int, int]],
           Dict[int, Optional[VarInfo]], List[SourceLoc],
           List[Tuple[str, ...]]]:
    """One seeded, loop-shaped op stream replayed under both encodings.

    Profiled programs spend their ROIs in loops, so the stream is built
    from *phases*: each phase fixes a loop-body roster of access sites —
    scalar accumulators/flags (variable PSEs, identical access every
    iteration), array walks (heap PSEs, the offset advances per
    iteration), and an occasional aggregated access — then replays the
    roster for a run of iterations, exactly like a hot loop re-executing
    its body.  ``shape`` (see :data:`_STREAM_SHAPES`) picks the roster
    mix.  Each op is ``(is_write, obj_index, offset, count, stride,
    loc_index, cs_index)``.
    """
    scalar_range, walk_range, agg_chance = _STREAM_SHAPES[shape]
    rng = random.Random(f"{seed}:{shape}")
    int_ty = ct.IntType()
    locs = [SourceLoc.of(SourcePos("bench.mc", line, 1))
            for line in range(10, 42)]
    callstacks = [("main",), ("main", "kernel"), ("main", "kernel", "load"),
                  ("main", "stats")]
    vars_by_obj: Dict[int, Optional[VarInfo]] = {}
    ops: List[Tuple[int, int, int, int, int, int, int]] = []
    next_obj = 0
    while len(ops) < n_events:
        roster = []
        cs_index = rng.randrange(len(callstacks))
        for _ in range(rng.randint(*scalar_range)):  # accumulators / flags
            obj = next_obj
            next_obj += 1
            vars_by_obj[obj] = VarInfo(uid=10_000 + obj, name=f"v{obj}",
                                       storage="local", ty=int_ty)
            roster.append(("scalar", 1 if rng.random() < 0.4 else 0, obj,
                           rng.randrange(len(locs)), cs_index))
        for _ in range(rng.randint(*walk_range)):  # array walks
            obj = next_obj
            next_obj += 1
            vars_by_obj[obj] = None
            roster.append(("walk", 1 if rng.random() < 0.5 else 0, obj,
                           rng.randrange(len(locs)), cs_index))
        if rng.random() < agg_chance:  # an aggregated (count>1) access
            obj = next_obj
            next_obj += 1
            vars_by_obj[obj] = None
            roster.append(("agg", 0, obj, rng.randrange(len(locs)),
                           cs_index))
        for iteration in range(rng.randint(200, 600)):
            for kind, is_write, obj, loc_index, cs in roster:
                if kind == "scalar":
                    ops.append((is_write, obj, 0, 1, 0, loc_index, cs))
                elif kind == "walk":
                    ops.append((is_write, obj, 8 * (iteration % 64), 1, 0,
                                loc_index, cs))
                else:
                    ops.append((is_write, obj, 0, 8, 8, loc_index, cs))
            if len(ops) >= n_events:
                break
    return ops[:n_events], vars_by_obj, locs, callstacks


def _stream_runtime(encoding: str, batch_size: int, shards: int = 0,
                    drain: str = "auto", fault_plan: Optional[str] = None,
                    resilience: Optional[ResiliencePolicy] = None,
                    ) -> CarmotRuntime:
    return CarmotRuntime(_bench_module(), RuntimeConfig(
        policy=policy_for("parallel_for"),
        shadow_callstacks=True,
        inline_processing=False,
        batch_size=batch_size,
        event_encoding=encoding,
        pipeline_shards=shards if encoding == "packed" else 0,
        drain=drain if encoding == "packed" else "auto",
        fault_plan=FaultPlan.parse(fault_plan) if fault_plan else None,
        resilience=resilience or ResiliencePolicy(),
    ))


def _drain_meta(runtime: CarmotRuntime) -> Dict[str, object]:
    """Per-leg drain counters (satellite of the process-drain work): which
    drain folded the batches, whether the run needed fail-soft
    intervention, and how much crash-recovery traffic it absorbed."""
    stats = runtime.drain_stats
    return {
        "mode": stats["mode"],
        "degraded": runtime.degradation.degraded,
        "replays": stats["replays"],
        "worker_respawns": stats["worker_respawns"],
    }


def _resolve_ops(ops, vars_by_obj, locs, callstacks,
                 runtime: Optional[CarmotRuntime]):
    """Pre-resolve the stream the way compiled probes would (operands in
    instruction fields, site ids interned at compile time): the timed
    replay loop then only unpacks and emits.  ``runtime`` is the packed
    runtime to register sites on, or None for the object encoding."""
    resolved = []
    for is_write, obj, offset, count, stride, loc_index, cs_index in ops:
        var = vars_by_obj[obj]
        loc = locs[loc_index]
        site_id = (runtime._site_for(var, loc)
                   if runtime is not None else None)
        resolved.append((is_write, 1000 + obj, offset, count, stride, var,
                         loc, site_id, callstacks[cs_index]))
    return resolved


def _replay_object(runtime: CarmotRuntime, resolved,
                   invocation_len: int) -> None:
    roi_id = next(iter(runtime.psecs))
    submit = runtime.submit
    snapshot = runtime.active_snapshot
    runtime.roi_begin(roi_id)
    index = 0
    for is_write, obj_id, offset, count, stride, var, loc, _, cs in \
            resolved:
        if index and index % invocation_len == 0:
            runtime.roi_end(roi_id)
            runtime.roi_begin(roi_id)
        submit(AccessEvent(
            is_write=bool(is_write), obj_id=obj_id, offset=offset,
            size=8, count=count, stride=stride, var=var, loc=loc,
            callstack=cs, active=snapshot(), time=index,
        ))
        index += 1
    runtime.roi_end(roi_id)
    runtime.finish()


def _replay_packed(runtime: CarmotRuntime, resolved,
                   invocation_len: int) -> None:
    roi_id = next(iter(runtime.psecs))
    packed_access = runtime.packed_access
    runtime.roi_begin(roi_id)
    index = 0
    for is_write, obj_id, offset, count, stride, var, loc, site_id, cs in \
            resolved:
        if index and index % invocation_len == 0:
            runtime.roi_end(roi_id)
            runtime.roi_begin(roi_id)
        packed_access(is_write, obj_id, offset, 8, count, stride,
                      var, loc, site_id, cs, index)
        index += 1
    runtime.roi_end(roi_id)
    runtime.finish()


def _digest(runtime: CarmotRuntime) -> str:
    """SHA-256 of the PSEC sets — the determinism/equivalence witness."""
    out = {
        str(roi_id): {
            name: sorted(str(key) for key in keys)
            for name, keys in psec.sets().items()
        }
        for roi_id, psec in sorted(runtime.psecs.items())
    }
    blob = json.dumps(out, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _measure_stream(encoding: str, ops, vars_by_obj, locs, callstacks,
                    batch_size: int, invocation_len: int, repeats: int,
                    shards: int = 0, drain: str = "auto",
                    fault_plan: Optional[str] = None,
                    resilience: Optional[ResiliencePolicy] = None,
                    ) -> Dict[str, object]:
    replay = _replay_packed if encoding == "packed" else _replay_object
    best = None
    digest = None
    drain_meta = None
    for _ in range(repeats):
        runtime = _stream_runtime(encoding, batch_size, shards, drain,
                                  fault_plan, resilience)
        resolved = _resolve_ops(
            ops, vars_by_obj, locs, callstacks,
            runtime if encoding == "packed" else None,
        )
        start = time.perf_counter()
        replay(runtime, resolved, invocation_len)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        digest = _digest(runtime)
        drain_meta = _drain_meta(runtime)
    n = len(ops)
    return {
        "elapsed_s": round(best, 6),
        "events_per_sec": round(n / best, 1),
        "ns_per_event": round(best * 1e9 / n, 1),
        "digest": digest,
        "drain": drain_meta,
    }


def _measure_proc_recovery(seed: int, batch_size: int,
                           invocation_len: int) -> Dict[str, object]:
    """Crash-recovery leg: the process drain under a worker-kill plan.

    A small seeded stream runs once in-process (the oracle digest) and
    once under ``--drain procs`` with a fault plan that SIGKILLs a shard
    worker at two planned batches.  Recovery must be *exact*: the PSEC
    digest matches the oracle byte for byte, the degradation report stays
    empty (recovered respawns are not degradation), and the supervisor
    actually exercised the respawn/replay path.
    """
    ops, vars_by_obj, locs, callstacks = _make_stream(
        seed, 8_000, "mixed_loop"
    )
    oracle = _measure_stream(
        "packed", ops, vars_by_obj, locs, callstacks,
        batch_size, invocation_len, repeats=1, drain="inproc",
    )
    plan = f"seed={seed};exit@1;exit@3"
    start = time.perf_counter()
    runtime = _stream_runtime(
        "packed", batch_size, shards=2, drain="procs", fault_plan=plan,
        resilience=ResiliencePolicy(max_retries=3),
    )
    resolved = _resolve_ops(ops, vars_by_obj, locs, callstacks, runtime)
    _replay_packed(runtime, resolved, invocation_len)
    wall = time.perf_counter() - start
    digest = _digest(runtime)
    meta = _drain_meta(runtime)
    return {
        "n_events": len(ops),
        "batch_size": batch_size,
        "fault_plan": plan,
        "wall_s": round(wall, 4),
        "digest": digest,
        "oracle_digest": oracle["digest"],
        "digest_identical": digest == oracle["digest"],
        "report_empty": not runtime.degradation.degraded,
        "drain": meta,
        "recovered": bool(
            digest == oracle["digest"]
            and not runtime.degradation.degraded
            and meta["worker_respawns"] >= 1
        ),
    }


# ---------------------------------------------------------------------------
# End-to-end workloads
# ---------------------------------------------------------------------------


def _measure_workload(workload) -> List[Dict[str, object]]:
    source = workload.test_source("openmp")
    rows: List[Dict[str, object]] = []

    start = time.perf_counter()
    base, _ = compile_baseline(source, workload.name).run()
    base_wall = time.perf_counter() - start
    rows.append({
        "workload": workload.name, "mode": "baseline", "encoding": None,
        "cost": base.cost, "overhead_x": 1.0,
        "wall_s": round(base_wall, 4), "events": 0,
    })

    for mode, compile_fn in (("naive", compile_naive),
                             ("carmot", compile_carmot)):
        for encoding in ("object", "packed"):
            program = (compile_fn(source, "parallel_for", workload.name)
                       if mode == "naive"
                       else compile_fn(source, "parallel_for",
                                       name=workload.name))
            start = time.perf_counter()
            result, runtime = program.run(event_encoding=encoding)
            wall = time.perf_counter() - start
            events = runtime.pipeline.events_seen
            rows.append({
                "workload": workload.name, "mode": mode,
                "encoding": encoding, "cost": result.cost,
                "overhead_x": round(result.cost / base.cost, 2),
                "wall_s": round(wall, 4), "events": events,
                "events_per_sec": round(events / wall, 1) if wall else None,
                "drain": _drain_meta(runtime),
            })
    return rows


# ---------------------------------------------------------------------------
# Session cache: warm vs cold
# ---------------------------------------------------------------------------

#: The warm run reads three small JSON artifacts instead of parsing,
#: running seven passes, and interpreting the program — anything less
#: than this speedup means the cache is broken, not merely slow.
_CACHE_MIN_SPEEDUP = 5.0


def _measure_cache(workload, warm_repeats: int = 3) -> Dict[str, object]:
    """Cold-vs-warm session timings for one end-to-end workload.

    Cold: empty store — parse, lower, run the CARMOT pipeline, execute,
    characterize, and persist every stage.  Warm: the same call again —
    all three stages load from the store and the VM never runs.  The
    returned payload digests gate byte-identity of the PSEC reports.
    """
    from repro.session import Session

    source = workload.test_source("openmp")
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        session = Session(cache_dir=cache)
        start = time.perf_counter()
        cold = session.profile(source, "carmot", abstraction="parallel_for",
                               name=workload.name)
        cold_s = time.perf_counter() - start
        warm_s = None
        warm = None
        for _ in range(warm_repeats):
            start = time.perf_counter()
            warm = session.profile(
                source, "carmot", abstraction="parallel_for",
                name=workload.name,
            )
            elapsed = time.perf_counter() - start
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
    digest_cold = hashlib.sha256(cold.payload.encode()).hexdigest()
    digest_warm = hashlib.sha256(warm.payload.encode()).hexdigest()
    return {
        "workload": workload.name,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_x": round(cold_s / warm_s, 2) if warm_s else None,
        "stages_cold": cold.stages,
        "stages_warm": warm.stages,
        "profile_digest_cold": digest_cold,
        "profile_digest_warm": digest_warm,
        "payload_identical": digest_cold == digest_warm,
    }


# ---------------------------------------------------------------------------
# Recommendation doc: warm vs cold
# ---------------------------------------------------------------------------

#: A warm doc is one store read against a cold evidence-gather +
#: recommender run (on an already-warm profile, so only the recommend
#: stage is timed); below this the recommend artifact is not actually
#: being served.  Measured margins are 30-80x.
_RECOMMEND_MIN_SPEEDUP = 3.0


def _measure_recommend(workload, warm_repeats: int = 3) -> Dict[str, object]:
    """Cold-vs-warm RecommendationDoc timings for one workload.

    The profile is built first (warm for both passes), so the cold
    number isolates what the recommend stage adds: analysis-manager
    gathering, role/container classification, and every selected
    recommender.  The doc digests gate byte-identity — a cache-served
    doc must be indistinguishable from a recomputed one.
    """
    from repro.session import Session

    source = workload.test_source("openmp")
    with tempfile.TemporaryDirectory(prefix="repro-bench-rec-") as cache:
        session = Session(cache_dir=cache)
        profiled = session.profile(source, "carmot",
                                   abstraction="parallel_for",
                                   name=workload.name)
        start = time.perf_counter()
        cold_doc, cold_stage = session.recommend_doc(profiled)
        cold_s = time.perf_counter() - start
        warm_s = None
        warm_doc, warm_stage = None, None
        for _ in range(warm_repeats):
            start = time.perf_counter()
            warm_doc, warm_stage = session.recommend_doc(profiled)
            elapsed = time.perf_counter() - start
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)

    def doc_digest(doc) -> str:
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    digest_cold = doc_digest(cold_doc)
    digest_warm = doc_digest(warm_doc)
    role_kinds = sorted({
        rec["kind"]
        for roi in cold_doc["rois"] for rec in roi["recommendations"]
        if rec.get("role_driven")
    })
    return {
        "workload": workload.name,
        "rois": len(cold_doc["rois"]),
        "recommenders": cold_doc["recommenders"],
        "role_driven_kinds": role_kinds,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_x": round(cold_s / warm_s, 2) if warm_s else None,
        "stage_cold": cold_stage,
        "stage_warm": warm_stage,
        "doc_digest_cold": digest_cold,
        "doc_digest_warm": digest_warm,
        "doc_identical": digest_cold == digest_warm,
    }


# ---------------------------------------------------------------------------
# VM dispatch: register bytecode vs IR tree-walk
# ---------------------------------------------------------------------------

#: The dispatch-dominated timing subject: a pure scalar loop whose locals
#: all promote to registers (selective-mem2reg), so the measurement is
#: interpreter overhead — fetch/decode/dispatch — not shared memory-model
#: cost.  ``{iters}`` scales the trip count for quick vs full mode.
_VM_SCALAR_SOURCE = """
int main() {{
    int sum = 0;
    int i = 0;
    int r = 1;
    while (i < {iters}) {{
        r = (r * 1103515245 + 12345) % 2147483647;
        if (r < 0) {{ r = 0 - r; }}
        sum = sum + r * 3 - sum / 7;
        if (sum > 1000000000) {{ sum = sum % 98765; }}
        i = i + 1;
    }}
    return sum % 1000;
}}
"""

#: The equivalence subject: an annotated ROI kernel profiled under the
#: full CARMOT build on both engines — the PSEC digests must match.
_VM_ROI_SOURCE = """
int main() {
    int a[16];
    int sum;
    sum = 0;
    for (int r = 0; r < 8; ++r) {
        #pragma carmot roi abstraction(parallel_for)
        {
            for (int i = 0; i < 16; ++i) {
                a[i] = a[i] + r;
                sum = sum + a[i];
            }
        }
    }
    print_int(sum);
    return 0;
}
"""


def _measure_vm_dispatch(quick: bool, repeats: int) -> Dict[str, object]:
    """Bytecode-vs-tree-walk timing plus the equivalence/cache gates.

    Three sub-checks feed the report row: (1) min-of-N wall time on the
    scalar loop under both engines, with RunResult equality asserted;
    (2) byte-identical CARMOT PSEC digests across engines on the ROI
    kernel; (3) a cold/warm session pair showing the codegen artifact is
    reused (``codegen=hit``).
    """
    iters = 20_000 if quick else 60_000
    source = _VM_SCALAR_SOURCE.format(iters=iters)
    program = compile_baseline(source, "vm_scalar_loop")
    times: Dict[str, float] = {}
    results: Dict[str, object] = {}
    # The tree-walk oracle is deterministic and ~4x slower: time it once,
    # outside the repeat loop, so min-of-N repeats re-run only the
    # bytecode side.  Re-timing the oracle every repeat doubled the
    # noise on the reported ratio in --quick mode for no extra signal.
    start = time.perf_counter()
    results["ir"], _ = program.run(vm="ir")
    times["ir"] = time.perf_counter() - start
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        results["bytecode"], _ = program.run(vm="bytecode")
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    times["bytecode"] = best
    run_equal = all(
        getattr(results["ir"], field) == getattr(results["bytecode"], field)
        for field in ("output", "cost", "instructions", "access_counts")
    )
    instructions = results["bytecode"].instructions

    # Tier-2 stats for the report: fused sites are a codegen-time property
    # of the canonical stream; quickened sites exist only in the execution
    # streams the repeats just warmed, and dequickening restores those
    # streams (and must account for every quickened site).
    bc = program.module._bytecode
    fused_sites = fused_site_counts(bc)
    quickened_ops = quickened_op_count(bc)
    dequicken_count = dequicken_module(bc)

    digests = {}
    drain_meta = None
    for vm in ("ir", "bytecode"):
        carmot = compile_carmot(_VM_ROI_SOURCE, name="vm_roi")
        _, runtime = carmot.run(vm=vm)
        digests[vm] = _digest(runtime)
        drain_meta = _drain_meta(runtime)
    psec_identical = digests["ir"] == digests["bytecode"]

    from repro.session import Session

    with tempfile.TemporaryDirectory(prefix="repro-bench-vm-") as cache:
        session = Session(cache_dir=cache)
        cold = session.profile(_VM_ROI_SOURCE, "carmot", name="vm_roi")
        warm = session.profile(_VM_ROI_SOURCE, "carmot", name="vm_roi")
    codegen_warm_hit = (cold.stages.get("codegen") == "miss"
                       and warm.stages.get("codegen") == "hit")

    return {
        "iterations": iters,
        "instructions": instructions,
        "ir_s": round(times["ir"], 4),
        "bytecode_s": round(times["bytecode"], 4),
        "ir_ns_per_instr": round(times["ir"] * 1e9 / instructions, 1),
        "bytecode_ns_per_instr": round(
            times["bytecode"] * 1e9 / instructions, 1),
        "speedup_x": round(times["ir"] / times["bytecode"], 2),
        "run_results_equal": run_equal,
        "fused_sites": fused_sites,
        "quickened_ops": quickened_ops,
        "dequicken_count": dequicken_count,
        "psec_digest_ir": digests["ir"],
        "psec_digest_bytecode": digests["bytecode"],
        "psec_digest_identical": psec_identical,
        "codegen_warm_hit": codegen_warm_hit,
        "stages_cold": cold.stages,
        "stages_warm": warm.stages,
        "drain": drain_meta,
    }


# ---------------------------------------------------------------------------
# Prescreen: hybrid static+dynamic PSEC
# ---------------------------------------------------------------------------

#: The safe-tier subject: a pure scalar reduction whose loop-body PSEs
#: (accumulators, induction variables) are all provable at compile time,
#: so the prescreen pass strips every remaining access probe.
_PRESCREEN_SCALAR_SOURCE = """
int main() {
    int sum;
    sum = 0;
    for (int r = 0; r < 8; ++r) {
        #pragma carmot roi abstraction(parallel_for)
        {
            int acc = 0;
            for (int i = 0; i < 64; ++i) {
                acc = acc + i * 3;
            }
            sum = sum + acc;
        }
    }
    print_int(sum);
    return 0;
}
"""


def _measure_prescreen() -> List[Dict[str, object]]:
    """Hybrid static+dynamic PSEC vs fully-dynamic, per subject.

    The gate is twofold: the hybrid run must eliminate a nonzero share of
    access events, and its PSEC sets digest must be byte-identical to the
    fully-dynamic run — static verdicts are only admissible if they are
    indistinguishable from profiling.
    """
    rows: List[Dict[str, object]] = []
    for subject, source, mode in (
        ("scalar_loop", _PRESCREEN_SCALAR_SOURCE, "safe"),
        ("array_walk", _VM_ROI_SOURCE, "aggressive"),
    ):
        dynamic = compile_carmot(source, name=f"prescreen_{subject}")
        _, dyn_rt = dynamic.run()
        hybrid = compile_carmot(source, name=f"prescreen_{subject}",
                                options=CarmotOptions(prescreen=mode))
        _, hyb_rt = hybrid.run()
        facts = hybrid.module.static_facts
        dyn_events = dyn_rt.stats.access_events
        hyb_events = hyb_rt.stats.access_events
        eliminated = (round(100.0 * (1.0 - hyb_events / dyn_events), 1)
                      if dyn_events else 0.0)
        rows.append({
            "subject": subject,
            "mode": mode,
            "static_facts": len(facts) if facts else 0,
            "probes_stripped": hybrid.report.static_suppressed_probes,
            "access_events_dynamic": dyn_events,
            "access_events_hybrid": hyb_events,
            "static_probe_events": hyb_rt.stats.static_probe_events,
            "events_eliminated_pct": eliminated,
            "digest_dynamic": _digest(dyn_rt),
            "digest_hybrid": _digest(hyb_rt),
            "digest_identical": _digest(dyn_rt) == _digest(hyb_rt),
        })
    return rows


# ---------------------------------------------------------------------------
# Serve daemon: sustained req/s warm vs cold under concurrent clients
# ---------------------------------------------------------------------------

#: Concurrent clients for the serve leg — the acceptance floor: the
#: daemon must serve at least this many at once, byte-identical to the
#: in-process service core.
_SERVE_CLIENTS = 8


def _serve_request_matrix():
    """(label, request) pairs every serve client replays: mixed
    recommend/psec over three distinct programs."""
    from repro.service import PsecRequest, RecommendRequest

    from repro.workloads import ALL_WORKLOADS

    bt_source = next(w for w in ALL_WORKLOADS
                     if w.name == "bt").test_source("openmp")
    sources = (
        ("serve_roi", _VM_ROI_SOURCE),
        ("serve_scalar", _PRESCREEN_SCALAR_SOURCE),
        ("serve_bt", bt_source),
    )
    matrix = []
    for name, source in sources:
        matrix.append((f"psec:{name}",
                       PsecRequest(source=source, name=name)))
        matrix.append((f"recommend:{name}",
                       RecommendRequest(source=source, name=name,)))
    return matrix


def _measure_serve(n_clients: int = _SERVE_CLIENTS) -> Dict[str, object]:
    """Daemon throughput, cold vs warm, under concurrent clients.

    One daemon on a fresh store; ``n_clients`` threads, each with its own
    cache namespace, replay the request matrix twice.  The cold pass
    populates every namespace partition (all stages miss); the warm pass
    repeats the identical requests (all stages load from the store).  The
    hard gate is digest identity: every daemon response — cold or warm,
    any client — must carry the exact ``response_digest`` the in-process
    :class:`ServiceCore` produces for the same request.
    """
    import asyncio
    import threading

    from repro.service import ServiceClient, ServiceCore, response_digest
    from repro.service.client import wait_for_daemon
    from repro.service.daemon import ServeDaemon

    matrix = _serve_request_matrix()

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        # In-process oracle digests, computed on an isolated store.
        oracle_core = ServiceCore(cache_dir=os.path.join(root, "oracle"))
        oracle = {
            label: response_digest(oracle_core.execute(request))
            for label, request in matrix
        }

        socket_path = os.path.join(root, "serve.sock")
        daemon = ServeDaemon(
            socket_path, cache_dir=os.path.join(root, "cache"),
            workers=4, queue_bound=0, queue_policy="block",
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(daemon.run()), daemon=True
        )
        thread.start()
        wait_for_daemon(socket_path)

        mismatches: List[str] = []
        stage_outcomes: Dict[str, int] = {"hit": 0, "miss": 0}
        lock = threading.Lock()

        def client_pass(index: int, barrier: threading.Barrier,
                        requests) -> None:
            with ServiceClient(socket_path,
                               namespace=f"c{index}") as client:
                barrier.wait()
                for label, request in requests:
                    doc = client.request(request)
                    with lock:
                        if not doc.get("ok"):
                            mismatches.append(
                                f"{label}@c{index}: "
                                f"{doc.get('error')}"
                            )
                        elif response_digest(doc) != oracle[label]:
                            mismatches.append(f"{label}@c{index}")
                        for outcome in (doc.get("meta", {})
                                        .get("stages", {}) or {}).values():
                            if outcome in stage_outcomes:
                                stage_outcomes[outcome] += 1

        def run_pass(requests) -> float:
            barrier = threading.Barrier(n_clients + 1)
            threads = [
                threading.Thread(target=client_pass,
                                 args=(i, barrier, requests))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            start = time.perf_counter()
            for t in threads:
                t.join()
            return time.perf_counter() - start

        # Cold pass: first touch of every source per namespace — one
        # request kind per program, so every stage misses.  (recommend
        # and psec share the underlying profile artifacts; replaying the
        # full matrix cold would hand half the requests warm hits and
        # understate the amortization.)
        seen_sources = set()
        cold_matrix = []
        for label, request in matrix:
            if request.name not in seen_sources:
                seen_sources.add(request.name)
                cold_matrix.append((label, request))
        cold_s = run_pass(cold_matrix)
        cold_hits = dict(stage_outcomes)
        warm_s = run_pass(matrix)
        warm_hits = {k: stage_outcomes[k] - cold_hits[k]
                     for k in stage_outcomes}

        with ServiceClient(socket_path) as control:
            daemon_stats = control.stats()["body"]
            control.shutdown()
        thread.join(timeout=10)

    n_cold = n_clients * len(cold_matrix)
    n_warm = n_clients * len(matrix)
    cold_rps = n_cold / cold_s if cold_s else 0.0
    warm_rps = n_warm / warm_s if warm_s else 0.0
    return {
        "clients": n_clients,
        "requests_cold": n_cold,
        "requests_warm": n_warm,
        "request_labels": [label for label, _ in matrix],
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_rps": round(cold_rps, 2),
        "warm_rps": round(warm_rps, 2),
        "speedup_x": round(warm_rps / cold_rps, 2) if cold_rps else None,
        "digest_identical": not mismatches,
        "digest_mismatches": mismatches,
        "stage_outcomes_cold": cold_hits,
        "stage_outcomes_warm": warm_hits,
        "daemon": {
            "completed": daemon_stats["requests"]["completed"],
            "errors": daemon_stats["requests"]["errors"],
            "overloaded": daemon_stats["requests"]["overloaded"],
            "queue_wait_mean_s": daemon_stats["queue_wait_s"]["mean"],
            "queue_wait_max_s": daemon_stats["queue_wait_s"]["max"],
        },
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_bench(
    quick: bool = False,
    seed: int = 1234,
    min_speedup: float = 3.0,
    shards: int = 2,
    vm_min_speedup: float = 3.5,
    proc_min_speedup: float = 0.0,
    serve_min_speedup: float = 3.0,
) -> Dict[str, object]:
    """Run both families and return the ``BENCH_runtime.json`` payload."""
    n_events = 20_000 if quick else 200_000
    batch_size = 1024
    invocation_len = 500
    # min-of-N timing: more repeats in full mode stabilizes the speedup
    # ratio against scheduler noise on shared machines.
    repeats = 2 if quick else 5

    streams: Dict[str, Dict[str, object]] = {}
    for shape in _STREAM_SHAPES:
        ops, vars_by_obj, locs, callstacks = _make_stream(
            seed, n_events, shape
        )
        encodings: Dict[str, Dict[str, object]] = {}
        for encoding in ("object", "packed"):
            encodings[encoding] = _measure_stream(
                encoding, ops, vars_by_obj, locs, callstacks,
                batch_size, invocation_len, repeats,
            )
        encodings["packed_sharded"] = _measure_stream(
            "packed", ops, vars_by_obj, locs, callstacks,
            batch_size, invocation_len, repeats, shards=shards,
        )
        # The process drain forks a worker pool per runtime, so min-of-2
        # is enough; the digest gate (not the timing) is the hard check.
        encodings["packed_procs"] = _measure_stream(
            "packed", ops, vars_by_obj, locs, callstacks,
            batch_size, invocation_len, min(repeats, 2), shards=shards,
            drain="procs",
        )
        digests = {e["digest"] for e in encodings.values()}
        streams[shape] = {
            "n_events": n_events,
            "batch_size": batch_size,
            "invocations": n_events // invocation_len,
            "encodings": encodings,
            "speedup_packed_vs_object": round(
                encodings["packed"]["events_per_sec"]
                / encodings["object"]["events_per_sec"], 2
            ),
            "speedup_procs_vs_inproc": round(
                encodings["packed_procs"]["events_per_sec"]
                / encodings["packed"]["events_per_sec"], 2
            ),
            "digests_match": len(digests) == 1,
        }
    best_shape = max(
        streams, key=lambda s: streams[s]["speedup_packed_vs_object"]
    )
    best_speedup = streams[best_shape]["speedup_packed_vs_object"]
    digests_match = all(s["digests_match"] for s in streams.values())

    names = _QUICK_WORKLOADS if quick else _BENCH_WORKLOADS
    by_name = {w.name: w for w in ALL_WORKLOADS}
    workload_rows: List[Dict[str, object]] = []
    for name in names:
        workload_rows.extend(_measure_workload(by_name[name]))

    # The cache leg is cheap (one cold run per workload), so it always
    # covers the full bench set — quick mode included, where the lone
    # quick workload is small enough for timer noise to matter.
    cache_rows = [_measure_cache(by_name[name]) for name in _BENCH_WORKLOADS]
    # Byte-identity must hold on every workload; the speedup gate uses
    # the best one (tiny workloads sit near the floor where fixed costs
    # and timer noise dominate).
    cache_speedup = max(
        (row["speedup_x"] for row in cache_rows if row["speedup_x"]),
        default=0.0,
    )
    cache_ok = (
        all(row["payload_identical"] for row in cache_rows)
        and cache_speedup >= _CACHE_MIN_SPEEDUP
    )

    vm_row = _measure_vm_dispatch(quick, repeats)
    vm_ok = bool(
        vm_row["run_results_equal"]
        and vm_row["psec_digest_identical"]
        and vm_row["codegen_warm_hit"]
        and vm_row["speedup_x"] >= vm_min_speedup
    )

    prescreen_rows = _measure_prescreen()
    prescreen_ok = all(
        row["digest_identical"] and row["events_eliminated_pct"] > 0
        for row in prescreen_rows
    )

    recovery_row = _measure_proc_recovery(seed, batch_size=256,
                                          invocation_len=invocation_len)
    procs_digest_equal = all(
        s["encodings"]["packed_procs"]["digest"]
        == s["encodings"]["packed"]["digest"]
        for s in streams.values()
    )
    procs_speedup = max(
        s["speedup_procs_vs_inproc"] for s in streams.values()
    )
    # Timing is only meaningful with real parallelism: the speedup gate
    # applies when asked for (proc_min_speedup > 0) AND the host has a
    # second core; single-core hosts report the ratio but never fail on
    # it (the digest and recovery gates always apply).
    procs_speedup_gated = proc_min_speedup > 0 and (os.cpu_count() or 1) >= 2
    procs_ok = bool(
        procs_digest_equal
        and recovery_row["recovered"]
        and (not procs_speedup_gated or procs_speedup >= proc_min_speedup)
    )

    serve_row = _measure_serve()
    serve_ok = bool(
        serve_row["digest_identical"]
        and serve_row["speedup_x"] is not None
        and serve_row["speedup_x"] >= serve_min_speedup
    )

    recommend_row = _measure_recommend(by_name["bt"])
    recommend_ok = bool(
        recommend_row["doc_identical"]
        and recommend_row["stage_warm"] == "hit"
        and recommend_row["speedup_x"] is not None
        and recommend_row["speedup_x"] >= _RECOMMEND_MIN_SPEEDUP
    )

    checks = {
        "min_speedup": min_speedup,
        "speedup": best_speedup,
        "speedup_stream": best_shape,
        "speedup_by_stream": {
            shape: s["speedup_packed_vs_object"]
            for shape, s in streams.items()
        },
        "digests_match": digests_match,
        "cache_min_speedup": _CACHE_MIN_SPEEDUP,
        "cache_speedup": cache_speedup,
        "cache_payload_identical": all(
            row["payload_identical"] for row in cache_rows
        ),
        "cache_ok": cache_ok,
        "vm_min_speedup": vm_min_speedup,
        "vm_speedup": vm_row["speedup_x"],
        "vm_psec_digest_identical": vm_row["psec_digest_identical"],
        "vm_codegen_warm_hit": vm_row["codegen_warm_hit"],
        "vm_ok": vm_ok,
        "proc_min_speedup": proc_min_speedup,
        "procs_speedup": procs_speedup,
        "procs_speedup_gated": procs_speedup_gated,
        "procs_digest_equal": procs_digest_equal,
        "procs_recovery_ok": recovery_row["recovered"],
        "procs_ok": procs_ok,
        "prescreen_eliminated_pct": {
            row["subject"]: row["events_eliminated_pct"]
            for row in prescreen_rows
        },
        "prescreen_digest_identical": all(
            row["digest_identical"] for row in prescreen_rows
        ),
        "prescreen_ok": prescreen_ok,
        "serve_min_speedup": serve_min_speedup,
        "serve_speedup": serve_row["speedup_x"],
        "serve_clients": serve_row["clients"],
        "serve_digest_identical": serve_row["digest_identical"],
        "serve_ok": serve_ok,
        "recommend_min_speedup": _RECOMMEND_MIN_SPEEDUP,
        "recommend_speedup": recommend_row["speedup_x"],
        "recommend_doc_identical": recommend_row["doc_identical"],
        "recommend_ok": recommend_ok,
        "passed": bool(
            digests_match and best_speedup >= min_speedup and cache_ok
            and vm_ok and procs_ok and prescreen_ok and serve_ok
            and recommend_ok
        ),
    }
    return {
        "meta": {
            "seed": seed,
            "quick": quick,
            "python": platform.python_version(),
            "shards": shards,
            "cpus": os.cpu_count() or 1,
            "version": __version__,
        },
        "event_streams": streams,
        "workloads": workload_rows,
        "cache": cache_rows,
        "vm_dispatch": vm_row,
        "prescreen": prescreen_rows,
        "proc_recovery": recovery_row,
        "serve": serve_row,
        "recommend": recommend_row,
        "checks": checks,
    }


def render_bench(report: Dict[str, object]) -> str:
    """Human-readable summary printed next to the JSON artifact."""
    from repro.harness.reporting import render_table

    rows = [
        (shape, name, f"{entry['events_per_sec']:,.0f}",
         entry["ns_per_event"], entry["digest"][:12])
        for shape, stream in report["event_streams"].items()
        for name, entry in stream["encodings"].items()
    ]
    any_stream = next(iter(report["event_streams"].values()))
    lines = [render_table(
        f"Event-stream hot path ({any_stream['n_events']:,} events each)",
        ["stream", "encoding", "events/sec", "ns/event", "digest"], rows,
    )]
    for shape, stream in report["event_streams"].items():
        lines.append(
            f"{shape}: packed vs object speedup "
            f"{stream['speedup_packed_vs_object']:.2f}x "
            f"(digests {'match' if stream['digests_match'] else 'DIVERGE'})"
        )
    wrows = [
        (r["workload"], r["mode"], r["encoding"] or "-",
         r["overhead_x"], r["wall_s"], r["events"])
        for r in report["workloads"]
    ]
    lines.append("")
    lines.append(render_table(
        "Workloads end-to-end (overhead_x = cost vs baseline)",
        ["workload", "mode", "encoding", "overhead_x", "wall_s", "events"],
        wrows,
    ))
    crows = [
        (r["workload"], r["cold_s"], r["warm_s"],
         f"{r['speedup_x']:.2f}" if r["speedup_x"] else "-",
         "yes" if r["payload_identical"] else "NO")
        for r in report["cache"]
    ]
    lines.append("")
    lines.append(render_table(
        "Session cache (cold = empty store, warm = all stages hit)",
        ["workload", "cold_s", "warm_s", "speedup_x", "identical"],
        crows,
    ))
    vm = report["vm_dispatch"]
    lines.append("")
    lines.append(render_table(
        f"VM dispatch ({vm['instructions']:,} instructions, scalar loop)",
        ["engine", "wall_s", "ns/instr"],
        [("ir tree-walk", vm["ir_s"], vm["ir_ns_per_instr"]),
         ("bytecode", vm["bytecode_s"], vm["bytecode_ns_per_instr"])],
    ))
    lines.append(
        f"vm_dispatch: bytecode vs tree-walk speedup {vm['speedup_x']:.2f}x "
        f"(PSEC digests "
        f"{'match' if vm['psec_digest_identical'] else 'DIVERGE'}, "
        f"codegen warm hit={'yes' if vm['codegen_warm_hit'] else 'NO'})"
    )
    lines.append(
        f"vm_tier2: fused_sites={vm['fused_sites']['total']} "
        f"(cmp_br={vm['fused_sites']['cmp_br']} "
        f"load_bin={vm['fused_sites']['load_bin']} "
        f"bin_store={vm['fused_sites']['bin_store']} "
        f"probe_access={vm['fused_sites']['probe_access']}) "
        f"quickened_ops={vm['quickened_ops']} "
        f"dequicken_count={vm['dequicken_count']}"
    )
    prows = [
        (r["subject"], r["mode"], r["static_facts"], r["probes_stripped"],
         r["access_events_dynamic"], r["access_events_hybrid"],
         f"{r['events_eliminated_pct']:.1f}%",
         "yes" if r["digest_identical"] else "NO")
        for r in report["prescreen"]
    ]
    lines.append("")
    lines.append(render_table(
        "Prescreen (hybrid static+dynamic vs fully-dynamic PSEC)",
        ["subject", "mode", "facts", "stripped", "events_dyn",
         "events_hyb", "eliminated", "identical"],
        prows,
    ))
    for r in report["prescreen"]:
        lines.append(
            f"prescreen: {r['subject']} ({r['mode']}) eliminated "
            f"{r['events_eliminated_pct']:.1f}% of access events "
            f"(digests {'match' if r['digest_identical'] else 'DIVERGE'})"
        )
    rec = report["proc_recovery"]
    lines.append("")
    lines.append(
        f"proc_recovery: {rec['fault_plan']!r} over {rec['n_events']:,} "
        f"events -> digest "
        f"{'identical' if rec['digest_identical'] else 'DIVERGED'}, "
        f"report {'empty' if rec['report_empty'] else 'NON-EMPTY'}, "
        f"{rec['drain']['worker_respawns']} respawn(s), "
        f"{rec['drain']['replays']} replay(s) "
        f"({'recovered' if rec['recovered'] else 'FAILED'})"
    )
    srv = report["serve"]
    lines.append("")
    lines.append(
        f"serve: {srv['clients']} concurrent clients "
        f"({srv['requests_cold']} cold + {srv['requests_warm']} warm "
        f"requests) -> cold {srv['cold_rps']:.2f} req/s, warm "
        f"{srv['warm_rps']:.2f} req/s ({srv['speedup_x']:.2f}x), "
        f"digests vs in-process core "
        f"{'identical' if srv['digest_identical'] else 'DIVERGED'}, "
        f"{srv['daemon']['overloaded']} overloaded"
    )
    rdoc = report["recommend"]
    lines.append("")
    lines.append(
        f"recommend: {rdoc['workload']} ({rdoc['rois']} ROI(s), "
        f"role-driven kinds {', '.join(rdoc['role_driven_kinds']) or '-'}) "
        f"-> cold {rdoc['cold_s']:.4f}s, warm {rdoc['warm_s']:.4f}s "
        f"({rdoc['speedup_x']:.2f}x, stage {rdoc['stage_cold']}->"
        f"{rdoc['stage_warm']}), doc "
        f"{'identical' if rdoc['doc_identical'] else 'DIVERGED'}"
    )
    checks = report["checks"]
    verdict = "PASS" if checks["passed"] else "FAIL"
    lines.append("")
    lines.append(
        f"checks: {verdict} (best speedup {checks['speedup']:.2f}x on "
        f"{checks['speedup_stream']} >= {checks['min_speedup']:.2f}x "
        f"required, digests_match={checks['digests_match']}, "
        f"cache {checks['cache_speedup']:.2f}x >= "
        f"{checks['cache_min_speedup']:.2f}x warm/cold, "
        f"cache_payload_identical={checks['cache_payload_identical']}, "
        f"vm {checks['vm_speedup']:.2f}x >= "
        f"{checks['vm_min_speedup']:.2f}x bytecode/tree-walk, "
        f"procs digest_equal={checks['procs_digest_equal']} "
        f"recovery={checks['procs_recovery_ok']} "
        f"speedup {checks['procs_speedup']:.2f}x"
        f"{' (gated)' if checks['procs_speedup_gated'] else ' (report-only)'}"
        f", prescreen_ok={checks['prescreen_ok']}, "
        f"serve {checks['serve_speedup']:.2f}x >= "
        f"{checks['serve_min_speedup']:.2f}x warm/cold req/s "
        f"with digest_identical={checks['serve_digest_identical']}, "
        f"recommend {checks['recommend_speedup']:.2f}x >= "
        f"{checks['recommend_min_speedup']:.2f}x warm/cold doc "
        f"with doc_identical={checks['recommend_doc_identical']})"
    )
    return "\n".join(lines)
