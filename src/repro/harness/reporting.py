"""Plain-text rendering of experiment results (the paper's figures become
rows of numbers, like the artifact's ``results/`` text files)."""

from __future__ import annotations

from typing import List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: List[Sequence[object]]) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
