"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.experiments import (
    BREAKDOWN_GROUPS,
    BreakdownRow,
    LeakReport,
    OverheadRow,
    SpeedupRow,
    access_ratio,
    breakdown_pipeline,
    figure6,
    figure7,
    figure8,
    figure10,
    figure11,
    measure_overheads,
    nab_leak_experiment,
    render_breakdown,
    render_overheads,
    render_speedups,
    table1,
)

__all__ = [
    "BREAKDOWN_GROUPS", "BreakdownRow", "LeakReport", "OverheadRow",
    "SpeedupRow", "access_ratio", "breakdown_pipeline", "figure6",
    "figure7", "figure8",
    "figure10", "figure11", "measure_overheads", "nab_leak_experiment",
    "render_breakdown", "render_overheads", "render_speedups", "table1",
]
