"""Shared infrastructure for abstraction recommendation generators.

Table 1 of the paper — which PSEC components each abstraction needs — is
declared per-recommender in :mod:`repro.recommend.recommenders`;
``ABSTRACTION_REQUIREMENTS`` (regenerated from the registry, importable
from here for compatibility) drives both the instrumentation policies
and the Table 1 regeneration test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.module import Module, RoiInfo
from repro.runtime.asmt import Asmt, AsmtEntry
from repro.runtime.psec import Psec, PseKey


@dataclass(frozen=True)
class PsecRequirements:
    """One row of Table 1."""

    sets: bool
    use_callstacks: bool
    reachability_graph: bool


def __getattr__(name: str):
    # Table 1 regenerates from the registry's per-recommender
    # declarations; resolving it lazily keeps the generator modules (which
    # the registry imports) free of an import cycle.
    if name == "ABSTRACTION_REQUIREMENTS":
        from repro.recommend.registry import table1_requirements
        return table1_requirements()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class PseDescriptor:
    """Human-readable identity of one PSE, resolved through the ASMT."""

    key: PseKey
    name: str
    is_variable: bool
    storage: str  # local/param/global/heap/stack
    alloc_loc: Optional[str] = None
    alloc_callstack: Tuple[str, ...] = ()
    element_index: Optional[int] = None

    def __str__(self) -> str:
        return self.name


def describe_pse(key: PseKey, psec: Psec, asmt: Asmt) -> PseDescriptor:
    """Resolve a PSE key into a named descriptor."""
    entry = psec.entries.get(key)
    if key[0] == "var":
        var = entry.var if entry else None
        if var is not None:
            return PseDescriptor(key, var.name, True, var.storage,
                                 str(var.decl_loc) if var.decl_loc else None)
        meta = asmt.get(key[1])
        name = meta.display_name if meta else f"pse#{key[1]}"
        return PseDescriptor(key, name, True, meta.kind if meta else "?")
    _, obj_id, offset, size = key
    meta = asmt.get(obj_id)
    if meta is None:
        return PseDescriptor(key, f"mem#{obj_id}+{offset}", False, "?")
    index = offset // size if size else offset
    base = meta.display_name
    name = f"{base}[{index}]" if meta.size > size else base
    return PseDescriptor(
        key, name, False, meta.kind,
        str(meta.alloc_loc) if meta.alloc_loc else None,
        meta.alloc_callstack, index,
    )


def group_memory_keys_by_object(keys: List[PseKey]) -> Dict[int, List[PseKey]]:
    grouped: Dict[int, List[PseKey]] = {}
    for key in keys:
        if key[0] == "mem":
            grouped.setdefault(key[1], []).append(key)
    return grouped


@dataclass
class Recommendation:
    """Base class for generated recommendations."""

    roi: RoiInfo
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        raise NotImplementedError
