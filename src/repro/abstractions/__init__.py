"""Abstraction recommendation generators (§3.2): PSEC → source-level advice.

The generator functions and recommendation dataclasses live here; the
registry that selects, sequences, and caches them lives in
:mod:`repro.recommend`.  :func:`recommend` is the stable single-ROI
entry point — it now routes through the registry, so an unknown
abstraction name reports the registered recommender names instead of a
bare "unsupported".
"""

from typing import Optional

from repro.runtime.engine import CarmotRuntime
from repro.abstractions.base import (
    PsecRequirements,
    Recommendation,
    describe_pse,
)
from repro.abstractions.openmp_for import (
    CloneAdvice,
    OrderedAdvice,
    ParallelForRecommendation,
    generate_parallel_for,
)
from repro.abstractions.openmp_task import TaskRecommendation, generate_task
from repro.abstractions.reductions import detect_reduction
from repro.abstractions.smart_pointers import (
    CycleAdvice,
    SmartPointerRecommendation,
    generate_smart_pointers,
    simulated_leak_with_cycles,
)
from repro.abstractions.stats import StatsRecommendation, generate_stats


def recommend(runtime: CarmotRuntime, roi_id: int,
              abstraction: Optional[str] = None) -> Recommendation:
    """Generate the recommendation for one profiled ROI.

    ``abstraction`` overrides the one named in the ROI's pragma.
    Resolution goes through the recommender registry
    (:mod:`repro.recommend`): an unknown name raises
    :class:`~repro.errors.RecommendationError` listing the registered
    recommenders.
    """
    from repro.recommend.doc import generate
    return generate(runtime, roi_id, abstraction)


def __getattr__(name: str):
    # Table 1 regenerates from the recommender registry's declarations;
    # keep the historical import path working without an import cycle.
    if name == "ABSTRACTION_REQUIREMENTS":
        from repro.recommend.registry import table1_requirements
        return table1_requirements()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ABSTRACTION_REQUIREMENTS", "PsecRequirements", "Recommendation",
    "describe_pse", "CloneAdvice", "OrderedAdvice",
    "ParallelForRecommendation", "generate_parallel_for",
    "TaskRecommendation", "generate_task", "detect_reduction",
    "CycleAdvice", "SmartPointerRecommendation", "generate_smart_pointers",
    "simulated_leak_with_cycles", "StatsRecommendation", "generate_stats",
    "recommend",
]
