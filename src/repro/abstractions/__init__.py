"""Abstraction recommendation generators (§3.2): PSEC → source-level advice."""

from typing import Optional

from repro.errors import RecommendationError
from repro.runtime.engine import CarmotRuntime
from repro.abstractions.base import (
    ABSTRACTION_REQUIREMENTS,
    PsecRequirements,
    Recommendation,
    describe_pse,
)
from repro.abstractions.openmp_for import (
    CloneAdvice,
    OrderedAdvice,
    ParallelForRecommendation,
    generate_parallel_for,
)
from repro.abstractions.openmp_task import TaskRecommendation, generate_task
from repro.abstractions.reductions import detect_reduction
from repro.abstractions.smart_pointers import (
    CycleAdvice,
    SmartPointerRecommendation,
    generate_smart_pointers,
    simulated_leak_with_cycles,
)
from repro.abstractions.stats import StatsRecommendation, generate_stats

_GENERATORS = {
    "parallel_for": generate_parallel_for,
    "task": generate_task,
    "smart_pointers": generate_smart_pointers,
    "stats": generate_stats,
}


def recommend(runtime: CarmotRuntime, roi_id: int,
              abstraction: Optional[str] = None) -> Recommendation:
    """Generate the recommendation for one profiled ROI.

    ``abstraction`` overrides the one named in the ROI's pragma.
    """
    module = runtime.module
    if roi_id not in module.rois:
        raise RecommendationError(f"unknown ROI id {roi_id}")
    roi = module.rois[roi_id]
    chosen = abstraction or roi.abstraction
    if chosen is None:
        raise RecommendationError(
            f"ROI {roi.name} names no abstraction; pass one explicitly"
        )
    if chosen not in _GENERATORS:
        raise RecommendationError(f"unsupported abstraction {chosen!r}")
    psec = runtime.psecs[roi_id]
    return _GENERATORS[chosen](module, psec, runtime.asmt, roi)


__all__ = [
    "ABSTRACTION_REQUIREMENTS", "PsecRequirements", "Recommendation",
    "describe_pse", "CloneAdvice", "OrderedAdvice",
    "ParallelForRecommendation", "generate_parallel_for",
    "TaskRecommendation", "generate_task", "detect_reduction",
    "CycleAdvice", "SmartPointerRecommendation", "generate_smart_pointers",
    "simulated_leak_with_cycles", "StatsRecommendation", "generate_stats",
    "recommend",
]
