"""``#pragma omp task`` recommendation generation (§3.2).

The Input and Output Sets of the ROI map directly onto the ``depend``
attribute: every Input PSE becomes ``depend(in: e)``, every Output PSE
``depend(out: e)`` (PSEs in both appear in both, i.e. inout semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ir.module import Module, RoiInfo
from repro.runtime.asmt import Asmt
from repro.runtime.psec import Psec
from repro.abstractions.base import Recommendation, describe_pse


@dataclass
class TaskRecommendation(Recommendation):
    depend_in: List[str] = field(default_factory=list)
    depend_out: List[str] = field(default_factory=list)

    def pragma_text(self) -> str:
        clauses: List[str] = []
        if self.depend_in:
            clauses.append(f"depend(in: {', '.join(self.depend_in)})")
        if self.depend_out:
            clauses.append(f"depend(out: {', '.join(self.depend_out)})")
        suffix = " " + " ".join(clauses) if clauses else ""
        return f"#pragma omp task{suffix}"

    def render(self) -> str:
        lines = [
            f"ROI {self.roi.name} ({self.roi.loc}): recommended pragma:",
            f"  {self.pragma_text()}",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def generate_task(
    module: Module,
    psec: Psec,
    asmt: Asmt,
    roi: RoiInfo,
) -> TaskRecommendation:
    rec = TaskRecommendation(roi=roi)
    seen_in = set()
    seen_out = set()
    for key, entry in psec.entries.items():
        letters = entry.letters
        if not letters:
            continue
        name = describe_pse(key, psec, asmt).name
        if "I" in letters or "T" in letters:
            if name not in seen_in:
                seen_in.add(name)
                rec.depend_in.append(name)
        if "O" in letters:
            if name not in seen_out:
                seen_out.add(name)
                rec.depend_out.append(name)
    rec.depend_in.sort()
    rec.depend_out.sort()
    return rec
