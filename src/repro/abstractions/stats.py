"""STATS Input-Output-State recommendation generation (§3.2, §5.3).

The STATS compiler [Deiana et al., ASPLOS'18] parallelizes nondeterministic
programs if the programmer classifies the PSEs of the state-dependence code
region into Input (only read), Output (written first), and State (read then
written — the RAW state dependence STATS satisfies in its own way).  The
mapping from PSEC is direct:

    Input set → Input class, Output set → Output class,
    Transfer set → State class, Cloneable set → declare locally
    (the ROI moves into its own function; clone-able PSEs become locals so
    STATS can spawn independent threads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ir.module import Module, RoiInfo
from repro.runtime.asmt import Asmt
from repro.runtime.psec import Psec
from repro.abstractions.base import Recommendation, describe_pse


@dataclass
class StatsRecommendation(Recommendation):
    input_class: List[str] = field(default_factory=list)
    output_class: List[str] = field(default_factory=list)
    state_class: List[str] = field(default_factory=list)
    localize: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"ROI {self.roi.name} ({self.roi.loc}): STATS classes:"]
        lines.append(f"  Input : {', '.join(self.input_class) or '-'}")
        lines.append(f"  Output: {', '.join(self.output_class) or '-'}")
        lines.append(f"  State : {', '.join(self.state_class) or '-'}")
        if self.localize:
            lines.append(
                "  declare locally in the extracted function: "
                + ", ".join(self.localize)
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def generate_stats(
    module: Module,
    psec: Psec,
    asmt: Asmt,
    roi: RoiInfo,
) -> StatsRecommendation:
    rec = StatsRecommendation(roi=roi)
    for key, entry in sorted(psec.entries.items(), key=lambda kv: str(kv[0])):
        letters = entry.letters
        if not letters:
            continue
        name = describe_pse(key, psec, asmt).name
        if "T" in letters:
            rec.state_class.append(name)
            continue
        if "C" in letters:
            rec.localize.append(name)
            continue
        if "I" in letters and "O" not in letters:
            rec.input_class.append(name)
        elif "O" in letters and "I" not in letters:
            rec.output_class.append(name)
        elif "I" in letters and "O" in letters:
            # Read then written within single invocations only: no
            # cross-invocation RAW, so it is an Input that the region also
            # produces — STATS treats it as State conservatively.
            rec.state_class.append(name)
    for field_list in (rec.input_class, rec.output_class, rec.state_class,
                       rec.localize):
        field_list.sort()
    return rec
