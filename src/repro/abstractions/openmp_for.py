"""``#pragma omp parallel for`` recommendation generation (§3.2).

Mapping from the PSEC Sets (with the worked example of §2.2 in mind):

- Cloneable **variables** → ``private`` (plus ``firstprivate`` if also
  Input, ``lastprivate`` if also Output *after* the read-after-region
  refinement that keeps Figure 1's ``x`` plain-private);
- Cloneable **memory** → cloning advice: allocation site + callstack from
  the ASMT, plus ``omp_get_thread_num()`` indexing guidance;
- Input-only PSEs → ``shared``;
- Transfer variables with a uniform reducible update → ``reduction``;
- every other Transfer PSE → wrap its use statements (reported with their
  Use-callstacks) in ``critical``/``ordered`` — the choice stays with the
  programmer, exactly as the paper leaves it;
- the loop-governing induction variable → ``private`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import locals_read_after_region
from repro.analysis.regions import find_roi_region
from repro.ir.module import Module, RoiInfo
from repro.runtime.asmt import Asmt
from repro.runtime.psec import Psec, PseKey
from repro.abstractions.base import (
    PseDescriptor,
    Recommendation,
    describe_pse,
)
from repro.abstractions.reductions import detect_reduction
from repro.errors import RecommendationError


@dataclass
class CloneAdvice:
    """Clone a memory PSE per thread to break WAR/WAW dependences."""

    object_name: str
    alloc_loc: Optional[str]
    alloc_callstack: Tuple[str, ...]
    written_elements: int

    def render(self) -> str:
        stack = " <- ".join(reversed(self.alloc_callstack)) or "?"
        return (
            f"clone {self.object_name} per thread (allocated at "
            f"{self.alloc_loc or '?'} via {stack}); index clones with "
            f"omp_get_thread_num()"
        )


@dataclass
class OrderedAdvice:
    """Statements that must run in a critical or ordered section."""

    pse_name: str
    use_sites: List[str]

    def render(self) -> str:
        sites = ", ".join(self.use_sites) or "?"
        return (
            f"wrap statements touching {self.pse_name} (at {sites}) in "
            f"#pragma omp critical or #pragma omp ordered"
        )


@dataclass
class ParallelForRecommendation(Recommendation):
    private: List[str] = field(default_factory=list)
    firstprivate: List[str] = field(default_factory=list)
    lastprivate: List[str] = field(default_factory=list)
    shared: List[str] = field(default_factory=list)
    reductions: List[Tuple[str, str]] = field(default_factory=list)
    ordered: List[OrderedAdvice] = field(default_factory=list)
    clones: List[CloneAdvice] = field(default_factory=list)

    @property
    def needs_serialization(self) -> bool:
        return bool(self.ordered)

    def pragma_text(self) -> str:
        clauses: List[str] = []
        if self.private:
            clauses.append(f"private({', '.join(sorted(self.private))})")
        if self.firstprivate:
            clauses.append(
                f"firstprivate({', '.join(sorted(self.firstprivate))})"
            )
        if self.lastprivate:
            clauses.append(
                f"lastprivate({', '.join(sorted(self.lastprivate))})"
            )
        if self.shared:
            clauses.append(f"shared({', '.join(sorted(self.shared))})")
        for op, name in sorted(self.reductions):
            clauses.append(f"reduction({op}:{name})")
        if self.ordered:
            clauses.append("ordered")
        suffix = " " + " ".join(clauses) if clauses else ""
        return f"#pragma omp parallel for{suffix}"

    def render(self) -> str:
        lines = [
            f"ROI {self.roi.name} ({self.roi.loc}): recommended pragma:",
            f"  {self.pragma_text()}",
        ]
        for clone in self.clones:
            lines.append(f"  - {clone.render()}")
        for advice in self.ordered:
            lines.append(f"  - {advice.render()}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def generate_parallel_for(
    module: Module,
    psec: Psec,
    asmt: Asmt,
    roi: RoiInfo,
) -> ParallelForRecommendation:
    """Synthesize a parallel-for recommendation from one ROI's PSEC."""
    if not roi.is_loop_body:
        raise RecommendationError(
            f"ROI {roi.name} does not wrap a loop body; parallel for needs "
            "one dynamic invocation per iteration"
        )
    function = module.functions[roi.function]
    region = find_roi_region(function, roi.roi_id)
    rec = ParallelForRecommendation(roi=roi)
    read_after = (locals_read_after_region(function, region, True)
                  if region is not None else set())

    induction_name: Optional[str] = None
    if roi.induction_var is not None:
        induction_name = roi.induction_var.name
        rec.private.append(induction_name)

    memory_written: Dict[int, int] = {}
    memory_transfer: Dict[int, List[PseKey]] = {}
    memory_all_input: Dict[int, bool] = {}

    for key, entry in psec.entries.items():
        letters = entry.letters
        if not letters:
            continue
        desc = describe_pse(key, psec, asmt)
        if desc.is_variable and desc.storage in ("local", "param"):
            name = desc.name
            if name == induction_name:
                continue
            uid = entry.var.uid if entry.var else None
            is_output = "O" in letters and (uid is None or uid in read_after)
            if "T" in letters:
                _classify_transfer_variable(module, function, region, rec,
                                            entry, desc)
            elif "C" in letters or "O" in letters:
                rec.private.append(name)
                if "I" in letters:
                    rec.firstprivate.append(name)
                if is_output:
                    rec.lastprivate.append(name)
            elif letters == frozenset("I"):
                rec.shared.append(name)
        elif desc.is_variable:  # global scalar variable
            if "T" in letters:
                _classify_transfer_variable(module, function, region, rec,
                                            entry, desc)
            elif "C" in letters or "O" in letters:
                rec.notes.append(
                    f"global {desc.name} is written per iteration; make a "
                    "per-thread copy (globals cannot be private)"
                )
                obj_id = key[1]
                memory_written[obj_id] = memory_written.get(obj_id, 0) + 1
            else:
                rec.shared.append(desc.name)
        else:
            obj_id = key[1]
            if "T" in letters:
                memory_transfer.setdefault(obj_id, []).append(key)
            if "C" in letters or ("O" in letters and "T" not in letters):
                memory_written[obj_id] = memory_written.get(obj_id, 0) + 1
            all_input = memory_all_input.get(obj_id, True)
            memory_all_input[obj_id] = all_input and letters == frozenset("I")

    _emit_memory_advice(psec, asmt, rec, memory_written, memory_transfer,
                        memory_all_input)
    # `private` may have been double-added via firstprivate path; dedupe.
    rec.private = sorted(set(rec.private))
    rec.firstprivate = sorted(set(rec.firstprivate))
    rec.lastprivate = sorted(set(rec.lastprivate))
    rec.shared = sorted(set(rec.shared))
    return rec


def _classify_transfer_variable(module, function, region, rec, entry, desc):
    slot = None
    if entry.var is not None:
        alloca = function.var_allocas.get(entry.var.uid)
        if alloca is not None and not alloca.promoted:
            slot = alloca.result
    op = None
    if slot is not None and region is not None:
        op = detect_reduction(function, region, slot)
    if op is not None:
        rec.reductions.append((op, desc.name))
        return
    sites = sorted({site for site, _ in entry.uses})
    rec.ordered.append(OrderedAdvice(desc.name, sites))


def _emit_memory_advice(psec, asmt, rec, memory_written, memory_transfer,
                        memory_all_input):
    for obj_id, keys in sorted(memory_transfer.items()):
        meta = asmt.get(obj_id)
        base = meta.display_name if meta else f"obj#{obj_id}"
        for key in sorted(keys, key=str):
            desc = describe_pse(key, psec, asmt)
            entry = psec.entries[key]
            sites = sorted({site for site, _ in entry.uses})
            rec.ordered.append(OrderedAdvice(desc.name, sites))
    for obj_id, count in sorted(memory_written.items()):
        if obj_id in memory_transfer:
            # Transfer elements force synchronization; the rest of the
            # object can still be cloned (Figure 2's pattern).
            pass
        meta = asmt.get(obj_id)
        rec.clones.append(
            CloneAdvice(
                meta.display_name if meta else f"obj#{obj_id}",
                str(meta.alloc_loc) if meta and meta.alloc_loc else None,
                meta.alloc_callstack if meta else (),
                count,
            )
        )
    for obj_id, all_input in sorted(memory_all_input.items()):
        if all_input and obj_id not in memory_written:
            meta = asmt.get(obj_id)
            rec.shared.append(meta.display_name if meta else f"obj#{obj_id}")
