"""Static reduction-pattern detection over ROI regions (§3.2).

For a Transfer variable, CARMOT inspects each use: if every read-modify-
write of the variable inside the ROI is the same OpenMP-supported reduction
operator, the variable goes into a ``reduction(op:var)`` clause; otherwise
the statements touching it must be wrapped in critical/ordered sections.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.instructions import REDUCIBLE_OPS, BinOp, Load, Store
from repro.ir.module import Function
from repro.ir.values import Temp, Value
from repro.analysis.regions import RoiRegion


def detect_reduction(function: Function, region: RoiRegion,
                     slot: Value) -> Optional[str]:
    """The OpenMP reduction operator for ``slot``'s updates, or None.

    Requirements: every in-region store to the slot stores the result of a
    reducible BinOp over the loaded old value, every in-region load of the
    slot feeds only such BinOps, and all updates use the same operator.
    """
    loads: List[Load] = []
    stores: List[Store] = []
    for _, _, instr in region.instructions():
        if isinstance(instr, Load) and instr.ptr is slot:
            loads.append(instr)
        elif isinstance(instr, Store) and instr.ptr is slot:
            stores.append(instr)
    if not stores or not loads:
        return None

    load_results = {l.result.name for l in loads}
    binop_by_result = {}
    for _, _, instr in region.instructions():
        if isinstance(instr, BinOp):
            binop_by_result[instr.result.name] = instr

    ops = set()
    consumed_loads = set()
    for store in stores:
        if not isinstance(store.value, Temp):
            return None
        binop = binop_by_result.get(store.value.name)
        if binop is None or binop.op not in REDUCIBLE_OPS:
            return None
        sides = [binop.lhs, binop.rhs]
        load_side = [v for v in sides
                     if isinstance(v, Temp) and v.name in load_results]
        if len(load_side) != 1:
            return None
        consumed_loads.add(load_side[0].name)
        ops.add(binop.op)
    if len(ops) != 1:
        return None

    # Every load of the slot must feed only reduction updates: a read of
    # the running value anywhere else makes the order observable.
    for _, _, instr in region.instructions():
        for operand in instr.operands():
            if isinstance(operand, Temp) and operand.name in load_results:
                if isinstance(instr, BinOp) and instr.op in REDUCIBLE_OPS:
                    continue
                return None
    return REDUCIBLE_OPS[next(iter(ops))]
