"""Smart-pointer recommendation generation: reference cycles (§3.2, §5.2).

From the ROI's Reachability Graph, every reference cycle is reported with
its member allocations (site + callstack, resolved through the ASMT) and a
suggestion for which reference should become a ``weak_ptr`` — the edge into
the cycle member with the *oldest access time*, so the most senior object
drops out of the count first and the cycle cannot keep the group alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.module import Module, RoiInfo
from repro.runtime.asmt import Asmt
from repro.runtime.psec import Psec
from repro.runtime.reachability import CycleReport
from repro.abstractions.base import Recommendation


@dataclass
class CycleAdvice:
    """One detected reference cycle and how to break it."""

    members: List[str]
    member_callstacks: List[Tuple[str, ...]]
    weak_source: str
    weak_target: str
    weak_store_loc: Optional[str]
    raw: CycleReport = None  # type: ignore[assignment]

    def render(self) -> str:
        chain = " -> ".join(self.members + [self.members[0]])
        site = f" (stored at {self.weak_store_loc})" if self.weak_store_loc \
            else ""
        return (
            f"reference cycle: {chain}\n"
            f"    make the reference {self.weak_source} -> "
            f"{self.weak_target}{site} a weak pointer"
        )


@dataclass
class SmartPointerRecommendation(Recommendation):
    cycles: List[CycleAdvice] = field(default_factory=list)

    @property
    def has_cycles(self) -> bool:
        return bool(self.cycles)

    def render(self) -> str:
        if not self.cycles:
            return (f"ROI {self.roi.name}: no reference cycles detected; "
                    "smart pointers are safe to adopt")
        lines = [
            f"ROI {self.roi.name}: {len(self.cycles)} reference cycle(s) "
            "detected — adopting smart pointers as-is would leak:"
        ]
        lines.extend(f"  - {c.render()}" for c in self.cycles)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _name_of(obj_id: int, asmt: Asmt) -> str:
    meta = asmt.get(obj_id)
    if meta is None:
        return f"obj#{obj_id}"
    return f"{meta.display_name}#{obj_id}"


def generate_smart_pointers(
    module: Module,
    psec: Psec,
    asmt: Asmt,
    roi: RoiInfo,
) -> SmartPointerRecommendation:
    rec = SmartPointerRecommendation(roi=roi)
    for report in psec.reachability.find_cycles():
        members = [_name_of(obj, asmt) for obj in report.nodes]
        callstacks = []
        for obj in report.nodes:
            meta = asmt.get(obj)
            callstacks.append(meta.alloc_callstack if meta else ())
        rec.cycles.append(
            CycleAdvice(
                members=members,
                member_callstacks=callstacks,
                weak_source=_name_of(report.weak_edge.src, asmt),
                weak_target=_name_of(report.weak_edge.dst, asmt),
                weak_store_loc=report.weak_edge.loc,
                raw=report,
            )
        )
    return rec


def simulated_leak_with_cycles(
    psec: Psec, asmt: Asmt, broken_edges: Optional[List[Tuple[int, int]]] = None
) -> int:
    """Bytes a reference-counting collector would leak.

    Reference counting frees an object when no references point at it.  A
    cycle keeps all of its members (and everything reachable from them)
    alive forever.  ``broken_edges`` simulates turning those references
    into weak pointers; the §5.2 experiment compares the leak before and
    after breaking the CARMOT-reported edges.
    """
    broken = set(broken_edges or [])
    graph = psec.reachability
    keep: set = set()
    for report in graph.find_cycles():
        if any((edge.src, edge.dst) in broken for edge in report.edges):
            continue
        for member in report.nodes:
            keep |= graph.reachable_from(member)
    total = 0
    for obj_id in keep:
        meta = asmt.get(obj_id)
        if meta is not None and meta.kind == "heap":
            total += meta.size
    return total
