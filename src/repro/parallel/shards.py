"""A small persistent thread pool for per-shard batch folds.

The packed drain path partitions a batch's access/classify rows by
``obj_id % n_shards`` and folds each shard independently (FSA states are
per-PSE, so rows of different PSEs never touch the same entry).  This pool
keeps one long-lived worker thread per shard — shard *i* always runs on
worker *i*, so a PSE's entry is only ever mutated from one thread and the
fold needs no locks.  The drain thread blocks until every shard of the
current batch finishes (the ASMT/reachability merge that follows is
drain-thread-only).

Completion tokens are tagged with a per-:meth:`run` generation: if a run
is abandoned mid-collection (a shard task raised and the caller bailed, or
the collecting thread was interrupted), its late tokens cannot be mistaken
for completions of the *next* batch — :meth:`run` discards tokens from
older generations instead of returning before its own tasks finished.
:meth:`close` drains the token queue after joining and is idempotent.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional, Sequence, Tuple


class ShardPool:
    """``n`` pinned workers; :meth:`run` scatters one task per worker."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("ShardPool needs at least one worker")
        self.n = n
        self._tasks: List["queue.Queue"] = [queue.Queue() for _ in range(n)]
        self._done: "queue.Queue[Tuple[int, int, Optional[BaseException]]]" \
            = queue.Queue()
        self._generation = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(i,), daemon=True,
                name=f"shard-{i}",
            )
            for i in range(n)
        ]
        self._closed = False
        for worker in self._workers:
            worker.start()

    def _worker_loop(self, index: int) -> None:
        tasks = self._tasks[index]
        while True:
            task = tasks.get()
            if task is None:
                return
            generation, thunk = task
            try:
                thunk()
                self._done.put((generation, index, None))
            except BaseException as exc:  # reported by run()
                self._done.put((generation, index, exc))

    def run(self, thunks: Sequence[Callable[[], None]]) -> None:
        """Run ``thunks[i]`` on worker ``i`` and wait for all of them.

        If any shard raises, the exception from the lowest-indexed failing
        shard re-raises here (deterministic regardless of scheduling).
        """
        if self._closed:
            raise RuntimeError("run() on a closed ShardPool")
        if len(thunks) > self.n:
            raise ValueError(
                f"{len(thunks)} tasks for {self.n} pinned workers"
            )
        self._generation += 1
        generation = self._generation
        # Discard stale completion tokens left by an abandoned earlier run
        # (nothing is in flight between runs, so anything queued here is
        # stale by construction).
        while True:
            try:
                self._done.get_nowait()
            except queue.Empty:
                break
        for index, thunk in enumerate(thunks):
            self._tasks[index].put((generation, thunk))
        failures = []
        remaining = len(thunks)
        while remaining:
            token_generation, index, exc = self._done.get()
            if token_generation != generation:
                continue  # late token from an interrupted older run
            remaining -= 1
            if exc is not None:
                failures.append((index, exc))
        if failures:
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]

    def close(self) -> None:
        """Join the workers.  Idempotent; drains any completion tokens a
        raising or abandoned task left behind."""
        if self._closed:
            return
        self._closed = True
        for tasks in self._tasks:
            tasks.put(None)
        for worker in self._workers:
            worker.join()
        while True:
            try:
                self._done.get_nowait()
            except queue.Empty:
                break
