"""Execution profiling for the parallel-execution simulator (Figure 6).

The simulator needs, for each parallel loop: the cost of every iteration
(one ROI dynamic invocation), and how much of each iteration is serialized
(critical/ordered sections).  Two sources provide the serialized part:

- **original pragmas**: ``omp critical``/``ordered``/``master`` regions are
  explicit marker instructions, so the profiler measures them exactly;
- **generated pragmas**: the recommendation names the *source lines* whose
  statements must be wrapped; the profiler attributes cost per source line
  (``trace_lines``) and charges those lines as the serial fraction.

The profiler also measures ``omp parallel sections``: the per-section costs
feed the sections simulator used for the pthreads/sections benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.vm.hooks import ExecutionHooks
from repro.vm.interpreter import Interpreter, RunResult


@dataclass
class LoopProfile:
    """Per-invocation costs of one ROI loop."""

    roi_id: int
    iteration_costs: List[int] = field(default_factory=list)
    serial_costs: List[int] = field(default_factory=list)  # marker-measured

    @property
    def total_cost(self) -> int:
        return sum(self.iteration_costs)

    @property
    def iterations(self) -> int:
        return len(self.iteration_costs)


@dataclass
class SectionsProfile:
    """Costs of one ``omp parallel sections`` region's sections."""

    region_id: int
    section_costs: List[int] = field(default_factory=list)
    serial_extra: int = 0  # master regions + barrier-adjacent code
    total_cost: int = 0


@dataclass
class ExecutionProfile:
    loops: Dict[int, LoopProfile] = field(default_factory=dict)
    sections: Dict[int, SectionsProfile] = field(default_factory=dict)
    line_costs: Dict[Tuple[str, int], int] = field(default_factory=dict)
    total_cost: int = 0
    result: Optional[RunResult] = None

    def serial_fraction_of_lines(self, roi_id: int,
                                 lines: Set[Tuple[str, int]]) -> float:
        """Cost share of the given source lines within one loop's total."""
        loop = self.loops.get(roi_id)
        if loop is None or loop.total_cost == 0:
            return 0.0
        serial = sum(self.line_costs.get(line, 0) for line in lines)
        return min(1.0, serial / loop.total_cost)


class ProfilingHooks(ExecutionHooks):
    """Collects per-iteration, per-region, and per-line costs."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.profile = ExecutionProfile()
        self.vm: Optional[Interpreter] = None
        self._roi_start: Dict[int, int] = {}
        self._serial_acc: Dict[int, int] = {}
        self._region_start: Dict[int, int] = {}
        self._sections_stack: List[int] = []

    # -- ROI markers = loop iterations -----------------------------------

    def on_roi_begin(self, roi_id: int) -> int:
        self._roi_start[roi_id] = self.vm.cost
        self._serial_acc[roi_id] = 0
        self.profile.loops.setdefault(roi_id, LoopProfile(roi_id))
        return 0

    def on_roi_end(self, roi_id: int) -> int:
        start = self._roi_start.pop(roi_id, None)
        if start is None:
            return 0
        loop = self.profile.loops[roi_id]
        loop.iteration_costs.append(self.vm.cost - start)
        loop.serial_costs.append(self._serial_acc.pop(roi_id, 0))
        return 0

    # -- OMP marker regions --------------------------------------------------

    def on_omp_region(self, kind: str, region_id: int, begin: bool) -> int:
        if begin:
            self._region_start[region_id] = self.vm.cost
            if kind == "parallel_sections":
                self.profile.sections.setdefault(
                    region_id, SectionsProfile(region_id)
                )
                self._sections_stack.append(region_id)
            return 0
        start = self._region_start.pop(region_id, None)
        if start is None:
            return 0
        elapsed = self.vm.cost - start
        if kind in ("critical", "ordered", "master"):
            for roi_id in self._roi_start:
                self._serial_acc[roi_id] = (
                    self._serial_acc.get(roi_id, 0) + elapsed
                )
            if kind == "master" and self._sections_stack:
                parent = self.profile.sections[self._sections_stack[-1]]
                parent.serial_extra += elapsed
        elif kind == "section":
            if self._sections_stack:
                parent = self.profile.sections[self._sections_stack[-1]]
                parent.section_costs.append(elapsed)
        elif kind == "parallel_sections":
            if self._sections_stack and self._sections_stack[-1] == region_id:
                self._sections_stack.pop()
            self.profile.sections[region_id].total_cost = elapsed
        return 0

    def finish(self) -> None:
        self.profile.total_cost = self.vm.cost
        self.profile.line_costs = dict(getattr(self.vm, "line_costs", {}))


def profile_execution(
    module: Module,
    entry: str = "main",
    args: Tuple = (),
    max_instructions: int = 2_000_000_000,
    trace_lines: bool = True,
) -> ExecutionProfile:
    """Run ``module`` (typically the baseline build) and profile it."""
    hooks = ProfilingHooks(module)
    interp = Interpreter(module, hooks, max_instructions=max_instructions)
    if trace_lines:
        interp.enable_line_tracing()
    result = interp.run(entry, args)
    hooks.profile.result = result
    return hooks.profile
