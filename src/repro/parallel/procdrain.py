"""Crash-tolerant multi-process drain for packed batches (ROADMAP item 2).

The paper's §5 runtime is a master/worker design; the thread-based
:class:`repro.parallel.shards.ShardPool` simulates it under the GIL.  This
module is the real thing: N long-lived worker **processes**, each owning
the FSA folds of shard ``obj_id % N``, fed zero-copy through a
``multiprocessing.shared_memory`` SPSC ring buffer (packed rows are flat
``array('q')`` payloads — bytes in, bytes out, no pickling on the hot
path).  Interned-table suffixes and per-batch result deltas travel on
side channels (a pickle frame in the ring, a ``Pipe`` back), both off the
program's critical path.

The robustness contract (DESIGN.md §13):

- **Retention + ack.**  The master retains every shard payload it ships
  until the worker acknowledges it with a result delta.  Acks arrive in
  dispatch order (ring and pipe are both FIFO), so the master's mirror of
  each worker's fold state — updated only from acks — is always a
  *canonical checkpoint*: exactly the state after the last acknowledged
  batch, no more, no less.
- **Replay.**  When a worker dies (SIGKILL, OOM, injected
  :data:`~repro.resilience.faultinject.FaultKind.WORKER_EXIT`, or a hung
  heartbeat past ``worker_deadline_ms``), the supervisor first drains the
  pipe of in-flight acks (a delta the worker sent before dying is applied
  exactly once, never replayed), then forks a replacement seeded with the
  checkpoint state and replays the unacknowledged payloads in order.  The
  fold is deterministic, so the replay reproduces the lost work exactly:
  no batch is dropped, none is double-folded.
- **Graceful degradation.**  Past ``max_retries`` respawns (or if a
  worker cannot be spawned at all) the shard is *absorbed*: the master
  runs the same fold function over the same checkpoint state in-process.
  The result is still exact — the caller records a canonical
  ``DegradationRecord`` with ``sets_complete=True`` so the intervention
  is visible without weakening the profile.

Fold equivalence: :func:`_fold` mirrors
``CarmotRuntime._fold_rows`` field for field (epoch commits, fresh/
non-fresh event codes, run-merged repeat replay, conservative forcing for
degraded batches), so ``--drain procs`` profiles are byte-identical to
the in-process fold under every fault plan.  The per-site row-identity
cache of ``_fold_rows`` is intentionally omitted: it is a pure
memoisation (proved equivalent by the shared differential tests), and
worker batches are too small for it to pay for itself.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
from array import array
from multiprocessing import Pipe, Process, shared_memory
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RuntimeToolError
from repro.resilience.degradation import CONSERVATIVE_READ, CONSERVATIVE_WRITE
from repro.runtime import fsa
from repro.runtime.packed import (
    F_ACTIVE,
    F_AUX,
    F_COUNT,
    F_CS,
    F_LAST,
    F_OBJ,
    F_OFFSET,
    F_SITE,
    F_SIZE,
    F_STRIDE,
    F_TIME,
    KIND_WRITE,
    ROW_STRIDE,
)

# -- shared-memory ring framing ----------------------------------------------

#: Frame kinds.  TABLES ships one intern-table suffix (pickled);
#: BATCH ships one shard's rows (raw ``array('q')`` bytes); CLOSE asks the
#: worker to ack and exit; PAD fills the gap before a wrap so frames are
#: always contiguous.
FRAME_TABLES = 1
FRAME_BATCH = 2
FRAME_CLOSE = 3
FRAME_PAD = 4

#: Ring header: producer head, consumer tail (monotone byte offsets), and
#: the worker heartbeat counter.  Padded to one alignment unit.
_HEADER = struct.Struct("<qqq")
HEADER_SIZE = 32
#: Frame header: kind, a, b, payload length.
_FRAME = struct.Struct("<qqqq")
FRAME_HEADER = 32
#: Every frame total is padded to a multiple of this, and the capacity is
#: too, so a PAD header always fits in the space before a wrap.
ALIGN = 32


def _padded(n: int) -> int:
    return (n + ALIGN - 1) & ~(ALIGN - 1)


class ShmRing:
    """Single-producer single-consumer byte ring in shared memory.

    The producer owns ``head``, the consumer owns ``tail`` (both monotone
    byte offsets; the ring index is ``offset % capacity``).  Offsets are
    aligned 8-byte slots published *after* the data they cover, which is
    the usual SPSC discipline.  Frames never wrap: if a frame does not fit
    before the end of the buffer, a PAD frame covers the remainder.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int):
        self.shm = shm
        self.capacity = capacity

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        capacity = max(ALIGN, _padded(capacity))
        shm = shared_memory.SharedMemory(
            create=True, size=HEADER_SIZE + capacity
        )
        shm.buf[:HEADER_SIZE] = b"\x00" * HEADER_SIZE
        return cls(shm, capacity)

    def _load(self, offset: int) -> int:
        return struct.unpack_from("<q", self.shm.buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        struct.pack_into("<q", self.shm.buf, offset, value)

    def beat(self, value: int) -> None:
        """Worker-side: stamp the heartbeat counter."""
        self._store(16, value)

    def heartbeat(self) -> int:
        return self._load(16)

    def try_write(self, kind: int, a: int, b: int, payload) -> bool:
        """Append one frame; False if the ring is currently full."""
        size = len(payload)
        need = FRAME_HEADER + _padded(size)
        if need > self.capacity:
            raise RuntimeToolError(
                f"frame of {size} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        head = self._load(0)
        tail = self._load(8)
        capacity = self.capacity
        pos = head % capacity
        to_end = capacity - pos
        total = need if to_end >= need else to_end + need
        if total > capacity - (head - tail):
            return False
        buf = self.shm.buf
        if to_end < need:
            _FRAME.pack_into(buf, HEADER_SIZE + pos, FRAME_PAD, 0, 0,
                             to_end - FRAME_HEADER)
            head += to_end
            pos = 0
        _FRAME.pack_into(buf, HEADER_SIZE + pos, kind, a, b, size)
        if size:
            start = HEADER_SIZE + pos + FRAME_HEADER
            buf[start:start + size] = payload
        self._store(0, head + need)  # publish last
        return True

    def try_read(self) -> Optional[Tuple[int, int, int, bytes]]:
        """Pop one frame, or None if the ring is empty (PADs skipped)."""
        while True:
            head = self._load(0)
            tail = self._load(8)
            if tail == head:
                return None
            pos = tail % self.capacity
            kind, a, b, size = _FRAME.unpack_from(
                self.shm.buf, HEADER_SIZE + pos
            )
            if kind == FRAME_PAD:
                self._store(8, tail + FRAME_HEADER + size)
                continue
            start = HEADER_SIZE + pos + FRAME_HEADER
            payload = bytes(self.shm.buf[start:start + size])
            self._store(8, tail + FRAME_HEADER + _padded(size))
            return kind, a, b, payload

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


# -- the worker-side fold -----------------------------------------------------

#: Worker entry layout — a list mirror of :class:`PsecEntry`, keyed by
#: ``(roi_id, pse_key)``.  ``E_VARSITE`` holds the interned site id the
#: entry's ``var`` came from (-1 = none); the master resolves it back to
#: the live :class:`VarInfo` at merge time.
(E_STATE, E_FORCED, E_LINV, E_LEPOCH, E_FIRST, E_LAST, E_WSEEN, E_COUNT,
 E_VARSITE) = range(9)
E_USES = 9


def _new_entry(varsite: int) -> list:
    return [0, "", -1, 0, None, None, 0, 0, varsite, set()]


def _force(entries: Dict, ek, varsite: int, letters: str, when: int,
           touched) -> None:
    """Mirror of ``Psec.force_classification`` on a worker entry."""
    entry = entries.get(ek)
    if entry is None:
        entry = _new_entry(varsite)
        entries[ek] = entry
    elif varsite >= 0 and entry[E_VARSITE] < 0:
        entry[E_VARSITE] = varsite
    entry[E_FORCED] = "".join(sorted(set(entry[E_FORCED]) | set(letters)))
    if entry[E_FIRST] is None:
        entry[E_FIRST] = when
    if entry[E_LAST] is None or when > entry[E_LAST]:
        entry[E_LAST] = when
    touched.add(ek)


def _fold(entries: Dict, sites: List, cs_values: List, active_values: List,
          letters_values: List, data, track_uses: bool, degraded: bool,
          touched, new_uses: List, counters: Dict) -> None:
    """Fold one shard payload (access/classify rows only) into ``entries``.

    Field-for-field mirror of ``CarmotRuntime._fold_rows`` in shard mode
    (private counters, budget checked master-side).  ``degraded`` mirrors
    ``_degrade_block``: conservative letters per access row, classify rows
    applied exactly.  ``touched``/``new_uses``/``counters`` accumulate the
    batch delta shipped back to the master.
    """
    flat = fsa.FLAT_TRANSITIONS
    for base in range(0, len(data), ROW_STRIDE):
        kind = data[base]
        obj = data[base + F_OBJ]
        site = data[base + F_SITE]
        has_var, loc_str = sites[site]
        count = data[base + F_COUNT]
        if has_var and count == 1:
            keys = (("var", obj),)
        else:
            size = data[base + F_SIZE]
            stride = data[base + F_STRIDE] or size
            offset = data[base + F_OFFSET]
            keys = tuple(
                ("mem", obj, offset + j * stride, size)
                for j in range(count)
            )
        when = data[base + F_TIME]
        active = active_values[data[base + F_ACTIVE]]
        varsite = site if has_var else -1
        if kind > KIND_WRITE:  # KIND_CLASSIFY (alloc/escape/free stay master-side)
            letters = letters_values[data[base + F_AUX]]
            for key in keys:
                for roi_id, _, _ in active:
                    _force(entries, (roi_id, key), varsite, letters, when,
                           touched)
            continue
        reps = data[base + F_AUX]
        t_last = data[base + F_LAST]
        if degraded:
            letters = CONSERVATIVE_WRITE if kind else CONSERVATIVE_READ
            for key in keys:
                for roi_id, _, _ in active:
                    ek = (roi_id, key)
                    _force(entries, ek, varsite, letters, when, touched)
                    if reps:
                        # Replay run-merged repeats: the forced letters
                        # idempote; only the max last-time advances.
                        _force(entries, ek, varsite, letters, t_last, touched)
            continue
        n = reps + 1
        use = None
        if track_uses:
            use = (loc_str, cs_values[data[base + F_CS]])
        for key in keys:
            for roi_id, invocation, epoch in active:
                ek = (roi_id, key)
                entry = entries.get(ek)
                if entry is None:
                    entry = _new_entry(varsite)
                    entries[ek] = entry
                elif varsite >= 0 and entry[E_VARSITE] < 0:
                    entry[E_VARSITE] = varsite
                if epoch != entry[E_LEPOCH]:
                    entry[E_FORCED] = "".join(sorted(fsa.force_states(
                        fsa.STATES[entry[E_STATE]], entry[E_FORCED]
                    ).sets))
                    entry[E_STATE] = 0
                    entry[E_LINV] = -1
                    entry[E_LEPOCH] = epoch
                event_code = (
                    kind if invocation != entry[E_LINV] else kind + 2
                )
                state_code = flat[entry[E_STATE] * 4 + event_code]
                if state_code < 0:
                    fsa.step_code(entry[E_STATE], event_code)
                if reps:
                    # Merged repeats are non-fresh by construction; one
                    # step reaches the table's non-fresh fixpoint.
                    prev = state_code
                    state_code = flat[prev * 4 + kind + 2]
                    if state_code < 0:
                        fsa.step_code(prev, kind + 2)
                entry[E_STATE] = state_code
                if kind:
                    entry[E_WSEEN] = 1
                entry[E_COUNT] += n
                entry[E_LINV] = invocation
                if entry[E_FIRST] is None:
                    entry[E_FIRST] = when
                if entry[E_LAST] is None or t_last > entry[E_LAST]:
                    entry[E_LAST] = t_last
                touched.add(ek)
                counter = counters.get(roi_id)
                if counter is None:
                    counter = [0, 0]
                    counters[roi_id] = counter
                counter[0] += n
                if track_uses and use not in entry[E_USES]:
                    entry[E_USES].add(use)
                    new_uses.append((ek, use))
                    counter[1] += 1


def _worker_main(index: int, n_workers: int, ring: ShmRing, conn,
                 sites: List, cs_values: List, active_values: List,
                 letters_values: List, entries: Dict,
                 exit_specs: Dict[int, bool], track_uses: bool,
                 poll_s: float) -> None:
    """Worker process entry point (fork-inherited tables and checkpoint).

    ``entries`` is the master's canonical checkpoint at fork time (empty
    on first spawn); the fork's copy-on-write snapshot makes it private.
    ``b`` of a BATCH frame packs ``attempt * 2 + degraded``.
    """
    beat = 0
    while True:
        beat += 1
        ring.beat(beat)
        frame = ring.try_read()
        if frame is None:
            time.sleep(poll_s)
            continue
        kind, a, b, payload = frame
        if kind == FRAME_TABLES:
            table = (sites, cs_values, active_values, letters_values)[a]
            items = pickle.loads(payload)
            if b < len(table):
                # Replay overlap after a respawn: the fork snapshot may be
                # ahead of the master's recorded send counts — extension
                # is positional and idempotent, keep only the new suffix.
                items = items[len(table) - b:]
            table.extend(items)
        elif kind == FRAME_BATCH:
            seq = a
            attempt, degraded = b >> 1, b & 1
            persist = exit_specs.get(seq)
            if (persist is not None and seq % n_workers == index
                    and (attempt == 0 or persist)):
                # Injected process death: SIGKILL, not sys.exit — nothing
                # is flushed, the supervisor must genuinely recover.
                os.kill(os.getpid(), signal.SIGKILL)
            rows = array("q")
            rows.frombytes(payload)
            touched = set()
            new_uses: List = []
            counters: Dict = {}
            _fold(entries, sites, cs_values, active_values, letters_values,
                  rows, track_uses, bool(degraded), touched, new_uses,
                  counters)
            delta = {ek: tuple(entries[ek][:E_USES]) for ek in touched}
            conn.send(("delta", seq, delta, new_uses, counters))
        elif kind == FRAME_CLOSE:
            conn.send(("done",))
            conn.close()
            return


# -- the supervisor -----------------------------------------------------------

class _Worker:
    """Supervisor-side record of one shard worker."""

    __slots__ = ("index", "proc", "ring", "conn", "pending", "state",
                 "respawns", "generation", "sent", "hb_value", "hb_time",
                 "absorbed", "done", "close_sent")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[Process] = None
        self.ring: Optional[ShmRing] = None
        self.conn = None
        #: seq → [payload array, degraded flag, per-batch attempt count];
        #: retained until acked, replayed on respawn in insertion order.
        self.pending: Dict[int, list] = {}
        #: Canonical checkpoint: the worker's fold state after the last
        #: acknowledged batch, rebuilt purely from acks.
        self.state: Dict = {}
        self.respawns = 0
        self.generation = 0
        self.sent: List[int] = [0, 0, 0, 0]
        self.hb_value = -1
        self.hb_time = 0.0
        self.absorbed = False
        self.done = False
        self.close_sent = False


class ProcDrain:
    """Supervised multi-process shard drain (see module docstring)."""

    def __init__(self, n_workers: int, site_values: List, cs_values: List,
                 active_values: List, letters_values: List,
                 track_uses: bool, exit_specs: Dict[int, bool],
                 max_respawns: int, heartbeat_ms: int, deadline_ms: int,
                 ring_capacity: int,
                 on_counters: Callable[[Dict], None],
                 on_respawn: Callable[[int, int, int], None],
                 on_fallback: Callable[[int, int, str], None]) -> None:
        if n_workers < 1:
            raise RuntimeToolError("ProcDrain needs at least one worker")
        self.n = n_workers
        self._site_values = site_values
        #: Worker-shippable site table: (has_var, loc_str) per site id —
        #: VarInfo objects stay master-side, resolved back at merge time.
        self._sites: List[Tuple[int, str]] = []
        self._cs_values = cs_values
        self._active_values = active_values
        self._letters_values = letters_values
        self._track_uses = track_uses
        self._exit_specs = dict(exit_specs)
        self.max_respawns = max_respawns
        self.deadline_ms = deadline_ms
        self._poll_s = min(0.05, max(0.0005, heartbeat_ms / 1000.0))
        self._ring_capacity = ring_capacity
        self._on_counters = on_counters
        self._on_respawn = on_respawn
        self._on_fallback = on_fallback
        self._closed = False
        self._workers = [_Worker(i) for i in range(n_workers)]
        self._refresh_sites()
        try:
            for worker in self._workers:
                self._spawn(worker)
        except BaseException:
            self.abort()
            raise

    # -- table sync ----------------------------------------------------------

    def _refresh_sites(self) -> None:
        source = self._site_values
        sites = self._sites
        while len(sites) < len(source):
            var, _, loc_str = source[len(sites)]
            sites.append((var is not None, loc_str))

    def _sync_tables(self) -> None:
        """Ship each live worker the intern-table suffixes it lacks.

        Positional and idempotent (the worker clamps overlap), so the
        snapshot a respawned worker fork-inherits can safely be ahead of
        the recorded send counts.
        """
        self._refresh_sites()
        tables = (self._sites, self._cs_values, self._active_values,
                  self._letters_values)
        for worker in self._workers:
            if worker.absorbed or worker.done:
                continue
            for table_index, table in enumerate(tables):
                start = worker.sent[table_index]
                items = list(table[start:])
                if not items:
                    continue
                worker.sent[table_index] = start + len(items)
                # Chunk so one frame never outgrows the ring.
                for chunk_at in range(0, len(items), 256):
                    chunk = items[chunk_at:chunk_at + 256]
                    self._write_frame(
                        worker, FRAME_TABLES, table_index, start + chunk_at,
                        pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL),
                    )

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, seq: int, shards: List[array],
                 degraded: bool = False) -> None:
        """Ship one batch's pre-partitioned shard payloads (one per
        worker, possibly empty — exit faults key on dequeue, so every
        worker sees every seq)."""
        self._pump()
        self._sync_tables()
        flag = 1 if degraded else 0
        for worker, payload in zip(self._workers, shards):
            if worker.absorbed:
                self._fold_absorbed(worker, payload, flag)
                continue
            worker.pending[seq] = [payload, flag, 0]
            self._write_frame(worker, FRAME_BATCH, seq, flag,
                              payload.tobytes())

    def _write_frame(self, worker: _Worker, kind: int, a: int, b: int,
                     payload: bytes) -> None:
        """Write one frame, pumping acks while the ring is full.

        If the worker dies (or is absorbed) while we wait, the respawn
        path has already replayed — or the absorb path folded — everything
        pending, including the frame we were trying to write; detect that
        via the generation counter and return.
        """
        generation = worker.generation
        while True:
            if (worker.absorbed or worker.done
                    or worker.generation != generation):
                return
            if worker.ring.try_write(kind, a, b, payload):
                return
            self._pump()
            if not worker.absorbed and not worker.done:
                self._check_deadline(worker)
            time.sleep(self._poll_s)

    # -- ack pump and death handling -----------------------------------------

    def _pump(self) -> None:
        for worker in self._workers:
            if worker.absorbed or worker.proc is None:
                continue
            try:
                while worker.conn.poll():
                    self._apply_msg(worker, worker.conn.recv())
            except (EOFError, OSError):
                self._on_death(worker)
                continue
            if not worker.done and not worker.proc.is_alive():
                self._on_death(worker)

    def _apply_msg(self, worker: _Worker, msg) -> None:
        if msg[0] == "delta":
            _, seq, delta, new_uses, counters = msg
            first = next(iter(worker.pending), None)
            if first != seq:
                raise RuntimeToolError(
                    f"shard worker {worker.index} acked batch {seq} but "
                    f"batch {first} is the oldest unacknowledged"
                )
            del worker.pending[seq]
            state = worker.state
            for ek, scalars in delta.items():
                entry = state.get(ek)
                if entry is None:
                    state[ek] = list(scalars) + [set()]
                else:
                    entry[:E_USES] = scalars
            for ek, use in new_uses:
                state[ek][E_USES].add(use)
            if counters:
                self._on_counters(counters)
        elif msg[0] == "done":
            worker.done = True

    def _on_death(self, worker: _Worker) -> None:
        # Drain in-flight acks first: a delta sent before death must be
        # applied exactly once, and its batch must NOT be replayed.
        try:
            while worker.conn.poll():
                self._apply_msg(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        worker.proc.join()
        self._cleanup(worker)
        if worker.done and not worker.pending:
            worker.proc = None
            return
        self._respawn_or_absorb(worker)

    def _cleanup(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        if worker.ring is not None:
            worker.ring.close()
            worker.ring.unlink()
            worker.ring = None

    def _respawn_or_absorb(self, worker: _Worker) -> None:
        attempt = worker.respawns + 1
        if attempt > self.max_respawns:
            self._absorb(
                worker,
                f"shard worker {worker.index} lost {attempt} time(s); "
                f"retry budget ({self.max_respawns}) exhausted",
            )
            return
        worker.respawns = attempt
        worker.generation += 1
        self._on_respawn(worker.index, attempt, len(worker.pending))
        try:
            self._spawn(worker)
        except Exception as exc:
            worker.proc = None
            self._absorb(
                worker,
                f"shard worker {worker.index} could not be respawned: "
                f"{type(exc).__name__}: {exc}",
            )
            return
        generation = worker.generation
        oldest = True
        for seq in list(worker.pending):
            if worker.generation != generation or worker.absorbed:
                # A nested death during replay already re-replayed (or
                # absorbed) everything still pending.
                return
            item = worker.pending[seq]
            if oldest:
                # The worker acks each batch as it folds it, so it died
                # while (or before) processing the *oldest* unacked batch;
                # later pending batches were never dequeued and replay at
                # their original attempt — an injected exit fault keyed on
                # one of them still fires deterministically.
                item[2] += 1
                oldest = False
            self._write_frame(worker, FRAME_BATCH, seq,
                              item[2] * 2 + item[1], item[0].tobytes())
        if (worker.close_sent and worker.generation == generation
                and not worker.absorbed):
            self._write_frame(worker, FRAME_CLOSE, 0, 0, b"")

    def _spawn(self, worker: _Worker) -> None:
        ring = ShmRing.create(self._ring_capacity)
        try:
            recv_conn, send_conn = Pipe(duplex=False)
            # Recorded *before* start(): the fork snapshot can only be
            # ahead of these counts, which the worker-side clamp handles.
            worker.sent = [len(self._sites), len(self._cs_values),
                           len(self._active_values),
                           len(self._letters_values)]
            proc = Process(
                target=_worker_main,
                args=(worker.index, self.n, ring, send_conn, self._sites,
                      self._cs_values, self._active_values,
                      self._letters_values, worker.state, self._exit_specs,
                      self._track_uses, self._poll_s),
                daemon=True,
                name=f"procdrain-{worker.index}",
            )
            proc.start()
            # Master's copy of the write end must close or worker death
            # would never surface as EOF/empty-poll.
            send_conn.close()
        except BaseException:
            ring.close()
            ring.unlink()
            raise
        worker.proc = proc
        worker.ring = ring
        worker.conn = recv_conn
        worker.done = False
        worker.hb_value = -1
        worker.hb_time = time.monotonic()

    def _absorb(self, worker: _Worker, detail: str) -> None:
        """Retire the worker: fold its pending payloads in-process over
        the canonical checkpoint — exact, just no longer parallel."""
        worker.absorbed = True
        first = next(iter(worker.pending), -1)
        self._on_fallback(worker.index, first, detail)
        pending = list(worker.pending.values())
        worker.pending.clear()
        for payload, flag, _ in pending:
            self._fold_absorbed(worker, payload, flag)

    def _fold_absorbed(self, worker: _Worker, payload: array,
                       flag: int) -> None:
        self._refresh_sites()
        touched = set()
        new_uses: List = []
        counters: Dict = {}
        _fold(worker.state, self._sites, self._cs_values,
              self._active_values, self._letters_values, payload,
              self._track_uses, bool(flag), touched, new_uses, counters)
        if counters:
            self._on_counters(counters)

    def _check_deadline(self, worker: _Worker) -> None:
        """Hung-worker detection: no heartbeat progress past the deadline
        while the process is alive ⇒ kill it (death path recovers)."""
        if self.deadline_ms <= 0 or worker.ring is None:
            return
        beat = worker.ring.heartbeat()
        now = time.monotonic()
        if beat != worker.hb_value:
            worker.hb_value = beat
            worker.hb_time = now
        elif ((now - worker.hb_time) * 1000.0 > self.deadline_ms
                and worker.proc.is_alive()):
            worker.proc.kill()
            worker.proc.join()

    # -- shutdown ------------------------------------------------------------

    def close(self) -> Dict[int, Dict]:
        """Flush, wait for every ack, and return the per-worker canonical
        states for the master merge."""
        for worker in self._workers:
            if not worker.absorbed and not worker.close_sent:
                worker.close_sent = True
                self._write_frame(worker, FRAME_CLOSE, 0, 0, b"")
        while True:
            self._pump()
            if all(w.absorbed or (w.done and not w.pending)
                   for w in self._workers):
                break
            for worker in self._workers:
                if not worker.absorbed and not worker.done:
                    self._check_deadline(worker)
            time.sleep(self._poll_s)
        states: Dict[int, Dict] = {}
        for worker in self._workers:
            if worker.proc is not None and not worker.absorbed:
                worker.proc.join()
                worker.proc = None
            self._cleanup(worker)
            states[worker.index] = worker.state
        self._closed = True
        return states

    def abort(self) -> None:
        """Kill everything, release all shared memory.  Idempotent."""
        for worker in self._workers:
            proc = worker.proc
            if proc is not None:
                if proc.is_alive():
                    proc.kill()
                proc.join()
                worker.proc = None
            self._cleanup(worker)
