"""Simulated OpenMP execution (the Figure 6 measurement substrate).

The paper runs on a 24-core Xeon; this reproduction schedules profiled
iteration costs onto simulated threads instead.  The simulator honours the
semantics of the generated/original pragmas:

- iterations are statically chunked over ``threads``;
- ``critical`` sections are mutually exclusive; ``ordered`` sections
  additionally execute in iteration order — either way a serialized chain
  bounds the makespan (the serialized prefix problem of Figure 2);
- ``reduction`` runs fully parallel with a per-thread merge at the end;
- ``parallel sections`` run each section on its own thread; ``master`` /
  ``barrier``-adjacent code stays serial.

Parallel-region startup and per-iteration scheduling overheads keep tiny
loops from showing fantasy speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ParallelMachine:
    """The simulated shared-memory machine (paper: 2x12-core Xeon).

    Fields are validated at construction: a machine with no threads or a
    negative overhead is nonsensical, and silently clamping it would make
    speedup figures lie.
    """

    threads: int = 16
    region_startup: int = 150
    per_iteration_overhead: int = 2
    reduction_merge_per_thread: int = 12
    critical_handoff: int = 6

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(
                f"ParallelMachine needs at least 1 thread, got {self.threads}"
            )
        for name in ("region_startup", "per_iteration_overhead",
                     "reduction_merge_per_thread", "critical_handoff"):
            value = getattr(self, name)
            if value < 0:
                raise WorkloadError(
                    f"ParallelMachine.{name} must be >= 0, got {value}"
                )


DEFAULT_MACHINE = ParallelMachine()


def simulate_parallel_for(
    iteration_costs: Sequence[int],
    serial_costs: Optional[Sequence[int]] = None,
    serial_fraction: float = 0.0,
    ordered: bool = False,
    has_reduction: bool = False,
    machine: ParallelMachine = DEFAULT_MACHINE,
) -> int:
    """Makespan of one parallel loop execution.

    ``serial_costs`` gives per-iteration serialized cost when measured via
    markers; otherwise ``serial_fraction`` of each iteration serializes.
    ``ordered`` forces the serialized chunks to run in iteration order.
    """
    n = len(iteration_costs)
    if n == 0:
        return 0
    threads = machine.threads
    thread_time = [0] * threads
    chain_end = 0  # critical/ordered availability
    chunk = max(1, n // threads)
    # Loops with serialized sections use round-robin (schedule(static,1))
    # placement: block-chunking an ordered loop serializes entire chunks.
    any_serial = (serial_fraction > 0
                  or (serial_costs is not None and any(serial_costs)))
    for k, cost in enumerate(iteration_costs):
        if any_serial:
            tid = k % threads
        else:
            tid = min((k // chunk), threads - 1)
        if serial_costs is not None:
            serial = min(serial_costs[k], cost)
        else:
            serial = int(cost * serial_fraction)
        parallel_part = cost - serial + machine.per_iteration_overhead
        ready = thread_time[tid] + parallel_part
        if serial > 0:
            start = max(ready, chain_end) + machine.critical_handoff
            done = start + serial
            chain_end = done
            thread_time[tid] = done
        else:
            thread_time[tid] = ready
    makespan = max(thread_time) + machine.region_startup
    if has_reduction:
        makespan += machine.reduction_merge_per_thread * threads
    return makespan


def simulate_sections(
    section_costs: Sequence[int],
    serial_extra: int = 0,
    machine: ParallelMachine = DEFAULT_MACHINE,
) -> int:
    """Makespan of one ``parallel sections`` region (each section is a
    unit of work; more sections than threads queue up)."""
    if not section_costs:
        return serial_extra + machine.region_startup
    threads = machine.threads
    load = [0] * threads
    for cost in sorted(section_costs, reverse=True):
        tid = load.index(min(load))
        load[tid] += cost
    return max(load) + serial_extra + machine.region_startup


def program_speedup(
    total_serial_cost: int,
    replaced_regions: List[dict],
) -> float:
    """Whole-program speedup when each profiled region is replaced by its
    simulated parallel execution.

    ``replaced_regions``: dicts with ``serial`` (the region's cost in the
    sequential run) and ``parallel`` (its simulated makespan).
    """
    if total_serial_cost <= 0:
        return 1.0
    remaining = total_serial_cost
    parallel_total = 0
    for region in replaced_regions:
        remaining -= min(region["serial"], remaining)
        parallel_total += region["parallel"]
    parallel_time = remaining + parallel_total
    if parallel_time <= 0:
        return 1.0
    return total_serial_cost / parallel_time
