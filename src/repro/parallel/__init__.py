"""Simulated parallel execution: profiling + scheduling (Figure 6)."""

from repro.parallel.executor import (
    DEFAULT_MACHINE,
    ParallelMachine,
    program_speedup,
    simulate_parallel_for,
    simulate_sections,
)
from repro.parallel.shards import ShardPool
from repro.parallel.profile import (
    ExecutionProfile,
    LoopProfile,
    ProfilingHooks,
    SectionsProfile,
    profile_execution,
)

__all__ = [
    "DEFAULT_MACHINE", "ParallelMachine", "program_speedup",
    "simulate_parallel_for", "simulate_sections", "ExecutionProfile",
    "LoopProfile", "ProfilingHooks", "SectionsProfile", "ShardPool",
    "profile_execution",
]
