"""Exception hierarchy for the CARMOT reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch
tool errors without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LexError(ReproError):
    """Raised by the MiniC lexer on malformed input text."""


class ParseError(ReproError):
    """Raised by the MiniC parser on syntactically invalid programs."""


class SemanticError(ReproError):
    """Raised by semantic analysis (undeclared names, type errors, ...)."""


class PragmaError(ReproError):
    """Raised when a ``#pragma carmot``/``#pragma omp`` directive is malformed."""


class LoweringError(ReproError):
    """Raised when AST-to-IR lowering encounters an unsupported construct."""


class IRVerifyError(ReproError):
    """Raised by the IR verifier when a module violates an IR invariant."""


class VMError(ReproError):
    """Base class for execution errors in the MiniC virtual machine."""


class MemoryFault(VMError):
    """Out-of-bounds, use-after-free, or otherwise invalid memory access."""


class TrapError(VMError):
    """Runtime trap (division by zero, stack overflow, bad call target)."""


class RuntimeToolError(ReproError):
    """Raised by the CARMOT runtime (batching pipeline, FSA engine)."""


class RecommendationError(ReproError):
    """Raised when an abstraction recommendation cannot be generated."""


class WorkloadError(ReproError):
    """Raised by the benchmark workload registry (unknown kernel, bad input)."""
