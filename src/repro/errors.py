"""Exception hierarchy for the CARMOT reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch
tool errors without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LexError(ReproError):
    """Raised by the MiniC lexer on malformed input text."""


class ParseError(ReproError):
    """Raised by the MiniC parser on syntactically invalid programs."""


class SemanticError(ReproError):
    """Raised by semantic analysis (undeclared names, type errors, ...)."""


class PragmaError(ReproError):
    """Raised when a ``#pragma carmot``/``#pragma omp`` directive is malformed."""


class LoweringError(ReproError):
    """Raised when AST-to-IR lowering encounters an unsupported construct."""


class IRVerifyError(ReproError):
    """Raised by the IR verifier when a module violates an IR invariant."""


class VMError(ReproError):
    """Base class for execution errors in the MiniC virtual machine."""


class MemoryFault(VMError):
    """Out-of-bounds, use-after-free, or otherwise invalid memory access."""


class TrapError(VMError):
    """Runtime trap (division by zero, stack overflow, bad call target)."""


class BudgetExceeded(TrapError):
    """An execution budget tripped (step, heap-byte, or recursion limit).

    Subclasses :class:`TrapError` so existing callers that treat budget
    trips as VM traps keep working; resilience-aware callers catch this
    type specifically to enter degraded mode instead of aborting.
    """


class RuntimeToolError(ReproError):
    """Raised by the CARMOT runtime (batching pipeline, FSA engine)."""


class FaultInjected(RuntimeToolError):
    """A deterministic fault-injection point fired (testing/hardening only).

    Never raised unless a :class:`repro.resilience.FaultPlan` is configured.
    """


class DegradedResult(RuntimeToolError):
    """A profiling run completed only in degraded mode.

    Raised by callers that demand a complete (non-degraded) PSEC, e.g.
    ``CarmotRuntime.require_complete()``; the exception carries the
    machine-readable :class:`repro.resilience.DegradationReport`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class RecommendationError(ReproError):
    """Raised when an abstraction recommendation cannot be generated."""


class WorkloadError(ReproError):
    """Raised by the benchmark workload registry (unknown kernel, bad input)."""
