"""Machine-readable degradation accounting for fail-soft profiling runs.

When a budget trips or a worker dies, the runtime does not silently lose
events: every fallback is recorded as a :class:`DegradationRecord`, and a
run's :class:`DegradationReport` states exactly which ROIs are affected
and what the degraded PSEC still guarantees.

Soundness contract (documented in DESIGN.md): degradation may move PSEs
into *conservative* Sets — a read forces Input membership, a write forces
Output and Transfer (the §4.2 merge direction: Transfer beats Cloneable)
— but a PSE touched by a dropped batch is never silently absent from the
Sets.  Use-callstacks, by contrast, may be incomplete, and the record says
so.

Reports serialize deterministically: records are sorted by a stable key
and :meth:`DegradationReport.to_json` emits canonical JSON, so two runs
with the same seed and fault plan produce byte-identical reports even in
threaded pipeline mode.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Set, Tuple

#: Actions a record can describe.
ACTION_RETRIED = "retried"
ACTION_CONSERVATIVE = "conservative-fallback"
ACTION_CLASSIFY_ONLY = "classify-only"
ACTION_DELAYED = "delayed"
#: The multi-process drain lost a shard worker past its retry budget (or
#: could not spawn the pool) and the master absorbed the shard into the
#: in-process flat fold.  The fold is exact — Sets stay complete — but
#: the run needed intervention and says so.
ACTION_FALLBACK = "inproc-fallback"

#: Conservative set letters applied when an access event is lost or its
#: ROI is over budget: a read forces Input; a write forces Output plus
#: Transfer (never Cloneable — the §4.2 merge direction).  Shared by the
#: in-process engine and the multi-process drain workers, which must
#: degrade byte-identically.
CONSERVATIVE_READ = "I"
CONSERVATIVE_WRITE = "OT"


@dataclass(frozen=True)
class DegradationRecord:
    """One fail-soft intervention during a profiling run."""

    #: Batch sequence number the record concerns, or -1 for ROI-scoped
    #: records (e.g. an event-budget trip).
    batch_seq: int
    #: What went wrong: ``worker_crash``, ``drop``, ``shed``,
    #: ``mempressure``, ``slow``, ``event-budget``, ``postprocess-error``.
    kind: str
    #: ROIs whose PSECs the intervention touched.
    rois: Tuple[int, ...]
    #: Number of events the intervention covered.
    events: int
    #: What the runtime did about it (see ACTION_* constants).
    action: str
    #: Whether the affected ROIs' Sets are still exact (a recovered retry
    #: loses nothing) or merely conservative supersets.
    sets_complete: bool
    #: Whether the affected ROIs' Use-callstacks are still complete.
    use_callstacks_complete: bool
    detail: str = ""

    def sort_key(self) -> Tuple:
        return (self.batch_seq, self.kind, self.action, self.rois,
                self.events, self.detail)


class DegradationReport:
    """Thread-safe accumulator of degradation records for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[DegradationRecord] = []

    def add(self, record: DegradationRecord) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def degraded(self) -> bool:
        """True if any record weakened a PSEC (recovered retries count:
        the run needed fail-soft intervention to complete)."""
        return bool(self._records)

    def records(self) -> List[DegradationRecord]:
        with self._lock:
            return sorted(self._records, key=DegradationRecord.sort_key)

    def degraded_rois(self) -> Set[int]:
        rois: Set[int] = set()
        for record in self.records():
            rois.update(record.rois)
        return rois

    def reasons_for(self, roi_id: int) -> List[str]:
        return sorted({
            record.kind for record in self.records() if roi_id in record.rois
        })

    def sets_complete_for(self, roi_id: int) -> bool:
        return all(
            record.sets_complete
            for record in self.records() if roi_id in record.rois
        )

    def use_callstacks_complete_for(self, roi_id: int) -> bool:
        return all(
            record.use_callstacks_complete
            for record in self.records() if roi_id in record.rois
        )

    def to_dict(self) -> Dict:
        records = self.records()
        return {
            "degraded": self.degraded,
            "records": [asdict(record) for record in records],
            "rois": {
                str(roi_id): {
                    "reasons": self.reasons_for(roi_id),
                    "sets_complete": self.sets_complete_for(roi_id),
                    "use_callstacks_complete":
                        self.use_callstacks_complete_for(roi_id),
                }
                for roi_id in sorted(self.degraded_rois())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, fixed separators — byte-identical
        across runs with identical records."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def summary(self) -> str:
        records = self.records()
        if not records:
            return "no degradation"
        kinds: Dict[str, int] = {}
        for record in records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        parts = [f"{kinds[k]}x {k}" for k in sorted(kinds)]
        return (f"{len(records)} intervention(s): " + ", ".join(parts)
                + f"; ROIs affected: {sorted(self.degraded_rois())}")
