"""Deterministic fault injection for the profiling runtime.

A :class:`FaultPlan` names *where* faults fire (batch sequence numbers in
the :class:`repro.runtime.pipeline.BatchingPipeline`) and *what* fires
(worker crashes, batch drops, slow batches, memory-pressure events).  The
plan is resolved entirely from its seed and specs — never from wall-clock
time, thread scheduling, or Python object identity — so two runs of the
same workload with the same plan inject byte-identical fault streams even
in threaded pipeline mode (batch sequence numbers are assigned by the
single producer thread).

Plans are built programmatically or parsed from the compact CLI syntax::

    seed=42;crash@3;drop@5;slow@7:250;mempressure@9;rate=0.01

``crash@3`` injects a worker crash when batch #3 is first processed;
``slow@7:250`` charges 250 virtual time units of extra latency to batch
#7; ``rate=0.01`` additionally crashes ~1% of batches, chosen by a
seed+sequence hash.  ``exit@4`` is the process-level fault consumed by
the multi-process drain (``--drain procs``): the shard worker that owns
batch #4 kills itself with SIGKILL and the supervisor must respawn it
and replay the unacknowledged batches (``exit@4!`` persists across
replays, exhausting the retry budget).  Unknown kind names are rejected
with a :class:`repro.errors.RuntimeToolError` listing the valid kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjected, RuntimeToolError


class FaultKind(enum.Enum):
    """What a fault-injection point does to the batch it targets."""

    WORKER_CRASH = "crash"        # process() raises FaultInjected
    BATCH_DROP = "drop"           # batch is lost before processing
    SLOW_BATCH = "slow"           # batch incurs extra virtual latency
    MEMORY_PRESSURE = "mempressure"  # batch is shed as if memory ran out
    #: Process-level fault for the ``--drain procs`` supervisor: the shard
    #: worker assigned ``seq % n_workers`` SIGKILLs itself when it dequeues
    #: batch ``seq`` (``persist`` makes it die again on every replay).
    #: Thread/in-process drains have no process to kill and ignore it.
    WORKER_EXIT = "exit"


_KIND_BY_NAME = {kind.value: kind for kind in FaultKind}


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``kind`` when batch ``seq`` reaches the pipeline.

    ``delay`` is the virtual latency of a :data:`FaultKind.SLOW_BATCH`.
    ``persist`` makes a crash fire on every retry attempt (an unrecoverable
    fault); by default a crash fires only on the first attempt, so bounded
    retry recovers it.
    """

    kind: FaultKind
    seq: int
    delay: int = 0
    persist: bool = False

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise RuntimeToolError(f"fault seq must be >= 0, got {self.seq}")
        if self.delay < 0:
            raise RuntimeToolError(
                f"fault delay must be >= 0, got {self.delay}"
            )


def _mix(seed: int, seq: int) -> float:
    """Deterministic per-(seed, seq) uniform sample in [0, 1).

    A splitmix64 finalizer: good avalanche, no Python ``random`` state, so
    the draw for batch ``seq`` is independent of processing order.
    """
    z = (seed * 0x9E3779B97F4A7C15 + seq + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z ^= z >> 31
    return z / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic schedule of injected faults."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    #: Probability that any given batch additionally suffers a worker
    #: crash, drawn from a seed+seq hash (0.0 disables).
    crash_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_rate <= 1.0:
            raise RuntimeToolError(
                f"crash_rate must be in [0, 1], got {self.crash_rate}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax (see module docstring)."""
        seed = 0
        rate = 0.0
        specs: List[FaultSpec] = []
        for raw in text.split(";"):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                seed = int(part[len("seed="):])
                continue
            if part.startswith("rate="):
                rate = float(part[len("rate="):])
                continue
            if "@" not in part:
                raise RuntimeToolError(
                    f"bad fault spec {part!r}: expected kind@seq[:delay][!]"
                )
            name, _, where = part.partition("@")
            persist = where.endswith("!")
            if persist:
                where = where[:-1]
            delay = 0
            if ":" in where:
                where, _, delay_text = where.partition(":")
                delay = int(delay_text)
            if name not in _KIND_BY_NAME:
                raise RuntimeToolError(
                    f"unknown fault kind {name!r} "
                    f"(choose from {sorted(_KIND_BY_NAME)})"
                )
            specs.append(
                FaultSpec(_KIND_BY_NAME[name], int(where), delay, persist)
            )
        return cls(seed=seed, specs=tuple(specs), crash_rate=rate)

    def render(self) -> str:
        """Inverse of :meth:`parse` (stable ordering)."""
        parts = [f"seed={self.seed}"]
        for spec in sorted(self.specs, key=lambda s: (s.seq, s.kind.value)):
            piece = f"{spec.kind.value}@{spec.seq}"
            if spec.delay:
                piece += f":{spec.delay}"
            if spec.persist:
                piece += "!"
            parts.append(piece)
        if self.crash_rate:
            parts.append(f"rate={self.crash_rate}")
        return ";".join(parts)


class FaultInjector:
    """Runtime companion of a :class:`FaultPlan`.

    The pipeline calls :meth:`fire` once per processing attempt of each
    batch; the injector raises :class:`FaultInjected` for crash faults and
    returns drop/shed instructions for queue-level faults.  All decisions
    are functions of ``(plan, seq, attempt)`` only.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_seq: Dict[int, List[FaultSpec]] = {}
        for spec in plan.specs:
            self._by_seq.setdefault(spec.seq, []).append(spec)
        for specs in self._by_seq.values():
            specs.sort(key=lambda s: s.kind.value)
        self.faults_fired = 0

    def _rate_crash(self, seq: int) -> bool:
        rate = self.plan.crash_rate
        return rate > 0.0 and _mix(self.plan.seed, seq) < rate

    def drop_kind(self, seq: int) -> Optional[FaultKind]:
        """Queue-level fault for this batch, if any (drop/memory pressure)."""
        for spec in self._by_seq.get(seq, ()):
            if spec.kind in (FaultKind.BATCH_DROP, FaultKind.MEMORY_PRESSURE):
                self.faults_fired += 1
                return spec.kind
        return None

    def delay_for(self, seq: int) -> int:
        """Extra virtual latency charged to this batch."""
        total = 0
        for spec in self._by_seq.get(seq, ()):
            if spec.kind is FaultKind.SLOW_BATCH:
                self.faults_fired += 1
                total += spec.delay
        return total

    def exit_specs(self) -> Dict[int, bool]:
        """``{batch_seq: persist}`` for the process-level WORKER_EXIT
        faults — consumed by the multi-process drain supervisor, which
        forwards the map to its workers (the kill happens worker-side so
        the master's bookkeeping is genuinely exercised)."""
        return {
            spec.seq: spec.persist
            for spec in self.plan.specs
            if spec.kind is FaultKind.WORKER_EXIT
        }

    def fire(self, seq: int, attempt: int) -> None:
        """Raise :class:`FaultInjected` if a crash targets this attempt."""
        for spec in self._by_seq.get(seq, ()):
            if spec.kind is FaultKind.WORKER_CRASH:
                if attempt == 0 or spec.persist:
                    self.faults_fired += 1
                    raise FaultInjected(
                        f"injected worker crash at batch {seq}"
                        + (" (persistent)" if spec.persist else "")
                    )
        if attempt == 0 and self._rate_crash(seq):
            self.faults_fired += 1
            raise FaultInjected(f"injected worker crash at batch {seq} (rate)")
