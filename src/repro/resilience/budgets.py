"""Execution budgets and the runtime resilience policy.

Two layers of bounds keep a misbehaving program (or an injected fault)
from taking down a profiling session:

- :class:`ExecutionBudgets` guards the **VM**: step limit, heap-byte
  limit, and recursion depth, each raising
  :class:`repro.errors.BudgetExceeded` (a :class:`TrapError`) instead of
  exhausting host memory or hitting Python's ``RecursionError``;
- :class:`ResiliencePolicy` guards the **runtime**: a bounded batch queue
  with a producer blocking/shedding policy, bounded batch retries with
  deterministic virtual-time backoff, per-ROI event budgets, and the
  ``degrade`` switch that turns unrecoverable failures into degraded-mode
  PSEC instead of raised errors.

Both parse from the compact ``--budget`` CLI syntax::

    steps=5000000,heap=1048576,depth=256,events-per-roi=20000,
    queue=64,policy=block,retries=2,backoff=100,degrade=1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import RuntimeToolError

QUEUE_POLICIES = ("block", "shed")


def _require_nonnegative(name: str, value: int) -> None:
    if value < 0:
        raise RuntimeToolError(f"budget {name!r} must be >= 0, got {value}")


@dataclass(frozen=True)
class ExecutionBudgets:
    """VM guards; ``0`` disables the corresponding limit."""

    max_steps: int = 0
    max_heap_bytes: int = 0
    max_recursion_depth: int = 0

    def __post_init__(self) -> None:
        _require_nonnegative("steps", self.max_steps)
        _require_nonnegative("heap", self.max_heap_bytes)
        _require_nonnegative("depth", self.max_recursion_depth)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Runtime-layer bounds and failure handling; defaults are all-off,
    which preserves the pre-resilience behaviour bit for bit."""

    #: Bound on queued batches awaiting workers (0 = unbounded).
    max_queue_batches: int = 0
    #: What the producer does when the queue is full: ``block`` until a
    #: worker frees a slot, or ``shed`` the batch into degraded mode.
    queue_policy: str = "block"
    #: Bounded retry of a failed batch before giving up on it.
    max_retries: int = 0
    #: Virtual-time backoff of the first retry; doubles per attempt.
    #: Charged to the pipeline's shadow clock, never the program's
    #: critical path, and summed deterministically across batches.
    retry_backoff: int = 100
    #: When a batch is unrecoverable (retries exhausted, dropped, shed),
    #: fall back to conservative classification and mark the PSEC
    #: ``degraded`` instead of raising.
    degrade: bool = False
    #: Per-ROI event budget (0 = unlimited); past it the ROI switches to
    #: conservative classification (sampling-free partial tracking).
    max_events_per_roi: int = 0
    #: Multi-process drain (``--drain procs``) supervision: how often (ms)
    #: shard workers stamp their shared-memory heartbeat and the master
    #: polls it while blocked on a worker.
    heartbeat_ms: int = 25
    #: Wall-clock ms a worker may go without heartbeat progress before the
    #: supervisor declares it hung and kills it (the respawn/replay path
    #: then takes over).  0 disables the deadline.
    worker_deadline_ms: int = 10_000

    def __post_init__(self) -> None:
        _require_nonnegative("queue", self.max_queue_batches)
        _require_nonnegative("retries", self.max_retries)
        _require_nonnegative("backoff", self.retry_backoff)
        _require_nonnegative("events-per-roi", self.max_events_per_roi)
        _require_nonnegative("heartbeat", self.heartbeat_ms)
        _require_nonnegative("worker-deadline", self.worker_deadline_ms)
        if self.queue_policy not in QUEUE_POLICIES:
            raise RuntimeToolError(
                f"queue policy must be one of {QUEUE_POLICIES}, "
                f"got {self.queue_policy!r}"
            )
        if self.queue_policy == "shed" and not self.degrade:
            raise RuntimeToolError(
                "queue policy 'shed' discards batches and therefore "
                "requires degrade=True (shed events must land in a "
                "DegradationReport, never vanish silently)"
            )


@dataclass(frozen=True)
class BudgetSpec:
    """Parsed ``--budget`` flag: VM budgets plus the runtime policy."""

    vm: ExecutionBudgets
    runtime: ResiliencePolicy


_VM_KEYS = {"steps": "max_steps", "heap": "max_heap_bytes",
            "depth": "max_recursion_depth"}
_RUNTIME_KEYS = {"queue": "max_queue_batches", "retries": "max_retries",
                 "backoff": "retry_backoff",
                 "events-per-roi": "max_events_per_roi",
                 "heartbeat": "heartbeat_ms",
                 # Both spellings accepted; docs use the dashed form.
                 "worker-deadline": "worker_deadline_ms",
                 "worker_deadline": "worker_deadline_ms"}


def _int_value(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise RuntimeToolError(
            f"bad budget value for {key!r}: expected an integer, "
            f"got {value!r}"
        ) from None


def parse_budget_spec(text: str) -> BudgetSpec:
    """Parse ``key=value`` pairs separated by commas (see module doc)."""
    vm_kwargs: Dict[str, int] = {}
    runtime_kwargs: Dict[str, object] = {}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        if "=" not in part:
            raise RuntimeToolError(
                f"bad budget entry {part!r}: expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key in _VM_KEYS:
            vm_kwargs[_VM_KEYS[key]] = _int_value(key, value)
        elif key in _RUNTIME_KEYS:
            runtime_kwargs[_RUNTIME_KEYS[key]] = _int_value(key, value)
        elif key == "policy":
            runtime_kwargs["queue_policy"] = value
        elif key == "degrade":
            runtime_kwargs["degrade"] = value not in ("0", "false", "no")
        else:
            known: Tuple[str, ...] = tuple(
                sorted([*_VM_KEYS, *_RUNTIME_KEYS, "policy", "degrade"])
            )
            raise RuntimeToolError(
                f"unknown budget key {key!r} (choose from {known})"
            )
    return BudgetSpec(vm=ExecutionBudgets(**vm_kwargs),
                      runtime=ResiliencePolicy(**runtime_kwargs))
