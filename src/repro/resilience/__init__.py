"""Resilience subsystem: fault injection, budgets, degraded-mode PSEC.

Makes the profiling runtime fail-soft: a misbehaving program or an
injected fault degrades the run (conservative Sets, recorded in a
:class:`DegradationReport`) instead of killing the session.
"""

from repro.resilience.budgets import (
    BudgetSpec,
    ExecutionBudgets,
    QUEUE_POLICIES,
    ResiliencePolicy,
    parse_budget_spec,
)
from repro.resilience.degradation import (
    ACTION_CLASSIFY_ONLY,
    ACTION_CONSERVATIVE,
    ACTION_DELAYED,
    ACTION_FALLBACK,
    ACTION_RETRIED,
    CONSERVATIVE_READ,
    CONSERVATIVE_WRITE,
    DegradationRecord,
    DegradationReport,
)
from repro.resilience.faultinject import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ACTION_CLASSIFY_ONLY", "ACTION_CONSERVATIVE", "ACTION_DELAYED",
    "ACTION_FALLBACK", "ACTION_RETRIED",
    "CONSERVATIVE_READ", "CONSERVATIVE_WRITE",
    "BudgetSpec", "DegradationRecord", "DegradationReport",
    "ExecutionBudgets", "FaultInjector", "FaultKind", "FaultPlan",
    "FaultSpec", "QUEUE_POLICIES", "ResiliencePolicy", "parse_budget_spec",
]
