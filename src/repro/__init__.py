"""repro - a from-scratch reproduction of CARMOT (CGO 2023).

Program State Element Characterization (PSEC) for MiniC programs: a
compiler + runtime + abstraction-recommendation toolchain mirroring
"Program State Element Characterization", Deiana et al., CGO 2023.

Typical use::

    from repro import compile_carmot, recommend

    program = compile_carmot(source)
    result, runtime = program.run()
    print(recommend(runtime, roi_id=0).render())

See README.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured evaluation.
"""

from repro.abstractions import (
    ParallelForRecommendation,
    SmartPointerRecommendation,
    StatsRecommendation,
    TaskRecommendation,
    recommend,
)
from repro.compiler import (
    BuildMode,
    CarmotOptions,
    CompiledProgram,
    compile_baseline,
    compile_carmot,
    compile_naive,
    frontend,
)
from repro.errors import ReproError
from repro.runtime import CarmotRuntime, Psec, merge_psecs
from repro.vm import RunResult, run_module
from repro._version import __version__

__all__ = [
    "ParallelForRecommendation",
    "SmartPointerRecommendation",
    "StatsRecommendation",
    "TaskRecommendation",
    "recommend",
    "BuildMode",
    "CarmotOptions",
    "CompiledProgram",
    "compile_baseline",
    "compile_carmot",
    "compile_naive",
    "frontend",
    "ReproError",
    "CarmotRuntime",
    "Psec",
    "merge_psecs",
    "RunResult",
    "run_module",
    "__version__",
]
