"""Execution hooks: how the VM talks to the CARMOT runtime (and the Pintool).

The interpreter is profiling-agnostic; everything PSEC-related happens in an
:class:`ExecutionHooks` implementation.  Hook methods return the *cost* (in
cost-model units) the action charges to the program's critical path — the
CARMOT runtime overlaps FSA processing on worker threads (§4.6), so only the
push/capture work done on the main thread is charged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.instructions import AccessKind, SourceLoc, VarInfo
from repro.vm.memory import MemoryObject


class ExecutionHooks:
    """No-op default hooks (uninstrumented baseline execution)."""

    def on_roi_begin(self, roi_id: int) -> int:
        return 0

    def on_roi_end(self, roi_id: int) -> int:
        return 0

    def on_roi_reset(self, roi_id: int) -> int:
        return 0

    def on_probe_access(
        self,
        kind: AccessKind,
        addr: int,
        size: int,
        var: Optional[VarInfo],
        count: int,
        stride: int,
        loc: Optional[SourceLoc],
        callstack: Tuple[str, ...],
        site_id: Optional[int] = None,
    ) -> int:
        return 0

    def on_probe_classify(
        self,
        states: str,
        addr: int,
        size: int,
        var: Optional[VarInfo],
        count: int,
        stride: int,
        loc: Optional[SourceLoc],
        roi_id: Optional[int] = None,
        site_id: Optional[int] = None,
    ) -> int:
        return 0

    def on_probe_static(
        self, fact_index: int, addr: int, roi_id: int
    ) -> int:
        """A prescreen-classified PSE resolved to ``addr`` this ROI
        invocation.  Synchronous bookkeeping only — no event is emitted
        and no cost is charged (the probe replaces stripped ones)."""
        return 0

    def on_probe_escape(
        self, value_addr: int, dest_addr: int, loc: Optional[SourceLoc]
    ) -> int:
        return 0

    def on_alloc(self, obj: MemoryObject) -> int:
        return 0

    def on_free(self, obj: MemoryObject) -> int:
        return 0

    def on_call_enter(self, function_name: str, instrumented: bool) -> int:
        return 0

    def on_call_exit(self, function_name: str) -> int:
        return 0

    def on_omp_region(self, kind: str, region_id: int, begin: bool) -> int:
        """Original-OpenMP marker regions (used by the Figure 6 simulator)."""
        return 0

    def on_omp_barrier(self) -> int:
        return 0

    def wants_pin(self) -> bool:
        """Whether Pin tracing should be enabled around pin-gated calls."""
        return False

    def on_pin_attach(self) -> int:
        return 0

    def on_pin_access(self, kind: AccessKind, addr: int, size: int) -> int:
        return 0

    def finish(self) -> None:
        """Called once when program execution completes."""
