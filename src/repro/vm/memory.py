"""The VM memory model.

A single flat 64-bit-style address space with three bump-allocated regions
(globals, stack, heap).  Every allocation is a :class:`MemoryObject` backed
by a ``bytearray``; scalar accesses use little-endian 8-byte ints/doubles
(1 byte for ``char``), so pointer values are plain Python ints and
``memcpy``-style byte traffic works across object types.

The memory keeps allocation metadata (site, callstack, logical time) because
PSEC needs it: the Sets classification reports *where and in which context*
a PSE was allocated (§3.1), and the smart-pointer use case ranks cycle nodes
by access time (§3.2).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import BudgetExceeded, MemoryFault, VMError
from repro.lang import types as ct
from repro.ir.instructions import SourceLoc, VarInfo

GLOBAL_BASE = 0x0001_0000
STACK_BASE = 0x1000_0000
HEAP_BASE = 0x4000_0000
#: Function "addresses" for function pointers live above all data segments.
FUNC_PTR_BASE = 0x7000_0000

#: Exclusive upper bound of each bump-allocated segment.  A segment that
#: grew past its neighbour's base would alias foreign objects (or, for the
#: heap, function-pointer "addresses"), so :meth:`Memory.allocate` refuses
#: to cross these.
SEGMENT_LIMITS = {
    "global": STACK_BASE,
    "stack": HEAP_BASE,
    "heap": FUNC_PTR_BASE,
}

_INT = struct.Struct("<q")
_DOUBLE = struct.Struct("<d")


@dataclass(slots=True)
class MemoryObject:
    """One allocation: a global, a stack slot, or a heap block."""

    obj_id: int
    base: int
    size: int
    kind: str  # "global" | "stack" | "heap"
    data: bytearray
    var: Optional[VarInfo] = None
    alloc_loc: Optional[SourceLoc] = None
    alloc_callstack: Tuple[str, ...] = ()
    alloc_time: int = 0
    freed: bool = False
    #: set when free() is called; leak accounting uses alive heap objects.
    free_time: Optional[int] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def __repr__(self) -> str:
        who = self.var.name if self.var else "?"
        return f"<obj#{self.obj_id} {self.kind} {who} @{self.base:#x}+{self.size}>"


class Memory:
    """Flat memory with object bookkeeping and bounds/liveness checking."""

    def __init__(self) -> None:
        # Each segment is bump-allocated, so per-segment base lists stay
        # sorted even though allocations interleave across segments.
        self._objects: Dict[str, List[MemoryObject]] = {
            "global": [], "stack": [], "heap": [],
        }
        self._bases: Dict[str, List[int]] = {
            "global": [], "stack": [], "heap": [],
        }
        self._next: Dict[str, int] = {
            "global": GLOBAL_BASE,
            "stack": STACK_BASE,
            "heap": HEAP_BASE,
        }
        self._obj_counter = 0
        self._dead = 0
        self.clock = 0  # logical time, bumped by the interpreter
        self.heap_bytes_allocated = 0
        self.heap_bytes_freed = 0
        #: Live-heap budget in bytes (0 = unlimited); allocations past it
        #: raise :class:`BudgetExceeded` instead of growing host memory.
        self.heap_limit = 0

    @staticmethod
    def _segment_of(addr: int) -> str:
        if addr >= HEAP_BASE:
            return "heap"
        if addr >= STACK_BASE:
            return "stack"
        return "global"

    # -- allocation ---------------------------------------------------------

    def allocate(
        self,
        size: int,
        kind: str,
        var: Optional[VarInfo] = None,
        loc: Optional[SourceLoc] = None,
        callstack: Tuple[str, ...] = (),
        zero: bool = True,
    ) -> MemoryObject:
        if size < 0:
            raise MemoryFault(f"negative allocation size {size}")
        size = max(size, 1)
        if kind == "heap" and self.heap_limit:
            live = self.heap_bytes_allocated - self.heap_bytes_freed
            if live + size > self.heap_limit:
                raise BudgetExceeded(
                    f"heap budget exceeded: {live} bytes live + {size} "
                    f"requested > limit {self.heap_limit}"
                )
        base = self._next[kind]
        # Refuse to grow a segment into its neighbour (checked before the
        # backing bytearray exists, so a huge request cannot consume host
        # memory on its way to the error).
        if base + size + 1 > SEGMENT_LIMITS[kind]:
            raise VMError(
                f"{kind} segment overflow: allocating {size} bytes at "
                f"{base:#x} would cross {SEGMENT_LIMITS[kind]:#x}"
            )
        # Pad with a guard byte so adjacent objects are never contiguous and
        # off-by-one pointers fault instead of silently touching a neighbour.
        self._next[kind] = base + size + 1
        self._obj_counter += 1
        obj = MemoryObject(
            obj_id=self._obj_counter,
            base=base,
            size=size,
            kind=kind,
            data=bytearray(size),
            var=var,
            alloc_loc=loc,
            alloc_callstack=callstack,
            alloc_time=self.clock,
        )
        if kind == "heap":
            self.heap_bytes_allocated += size
        self._objects[kind].append(obj)
        self._bases[kind].append(base)
        return obj

    def free(self, addr: int) -> MemoryObject:
        obj = self.object_at(addr)
        if obj.base != addr:
            raise MemoryFault(f"free of interior pointer {addr:#x} into {obj!r}")
        if obj.kind != "heap":
            raise MemoryFault(f"free of non-heap object {obj!r}")
        obj.freed = True
        obj.free_time = self.clock
        self.heap_bytes_freed += obj.size
        self._dead += 1
        return obj

    def release_stack_object(self, obj: MemoryObject) -> None:
        """Called by the interpreter when a frame pops."""
        obj.freed = True
        obj.free_time = self.clock
        self._dead += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._dead > 4096 and self._dead * 2 > len(self._objects["stack"]):
            alive = [o for o in self._objects["stack"] if not o.freed]
            self._objects["stack"] = alive
            self._bases["stack"] = [o.base for o in alive]
            self._dead = 0

    # -- lookup ----------------------------------------------------------------

    def object_at(self, addr: int) -> MemoryObject:
        segment = self._segment_of(addr)
        index = bisect.bisect_right(self._bases[segment], addr) - 1
        if index >= 0:
            obj = self._objects[segment][index]
            if obj.contains(addr):
                if obj.freed:
                    raise MemoryFault(f"use-after-free at {addr:#x} in {obj!r}")
                return obj
        raise MemoryFault(f"invalid address {addr:#x}")

    def try_object_at(self, addr: int) -> Optional[MemoryObject]:
        """Like :meth:`object_at` but returns None for invalid/freed addrs."""
        segment = self._segment_of(addr)
        index = bisect.bisect_right(self._bases[segment], addr) - 1
        if index >= 0:
            obj = self._objects[segment][index]
            if obj.contains(addr) and not obj.freed:
                return obj
        return None

    def live_heap_objects(self) -> List[MemoryObject]:
        return [o for o in self._objects["heap"] if not o.freed]

    @property
    def leaked_bytes(self) -> int:
        return self.heap_bytes_allocated - self.heap_bytes_freed

    # -- typed access --------------------------------------------------------------

    @staticmethod
    def scalar_size(ty: ct.Type) -> int:
        return 1 if isinstance(ty, ct.CharType) else 8

    def read_scalar(self, addr: int, ty: ct.Type):
        obj = self.object_at(addr)
        off = addr - obj.base
        if isinstance(ty, ct.CharType):
            self._check(obj, off, 1, addr)
            return obj.data[off]
        self._check(obj, off, 8, addr)
        if isinstance(ty, ct.FloatType):
            return _DOUBLE.unpack_from(obj.data, off)[0]
        return _INT.unpack_from(obj.data, off)[0]

    def write_scalar(self, addr: int, value, ty: ct.Type) -> None:
        obj = self.object_at(addr)
        off = addr - obj.base
        if isinstance(ty, ct.CharType):
            self._check(obj, off, 1, addr)
            obj.data[off] = int(value) & 0xFF
            return
        self._check(obj, off, 8, addr)
        if isinstance(ty, ct.FloatType):
            _DOUBLE.pack_into(obj.data, off, float(value))
        else:
            _INT.pack_into(obj.data, off, _wrap64(int(value)))

    def read_bytes(self, addr: int, size: int) -> bytes:
        obj = self.object_at(addr)
        off = addr - obj.base
        self._check(obj, off, size, addr)
        return bytes(obj.data[off : off + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        obj = self.object_at(addr)
        off = addr - obj.base
        self._check(obj, off, len(payload), addr)
        obj.data[off : off + len(payload)] = payload

    @staticmethod
    def _check(obj: MemoryObject, off: int, size: int, addr: int) -> None:
        if off < 0 or off + size > obj.size:
            raise MemoryFault(
                f"out-of-bounds access at {addr:#x} (+{size}) in {obj!r}"
            )


def _wrap64(value: int) -> int:
    """Wrap a Python int into signed 64-bit range, C-style."""
    value &= (1 << 64) - 1
    if value >= 1 << 63:
        value -= 1 << 64
    return value
