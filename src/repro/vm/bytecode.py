"""Flat register bytecode: the compiled form the dispatch VM executes.

:mod:`repro.vm.codegen` lowers a verified IR module into one
:class:`BytecodeModule`: per function a single ``array('q')`` code stream
of integer opcodes with *pre-resolved* operand slots (constants, arguments
and temps share one flat register file per frame), branch targets resolved
to absolute code offsets, builtin and call targets pre-bound through small
index tables, and CARMOT probes / ROI / OMP markers lowered to inline
opcodes.  Execution then needs no per-step object inspection at all — the
dispatch loop in :mod:`repro.vm.bcinterp` only indexes arrays.

The module is also a cacheable artifact: :func:`serialize_bytecode` emits
canonical JSON (key-sorted, compact separators, tables in deterministic
order) so warm session runs skip lowering entirely, with the same
byte-stability guarantees as :mod:`repro.ir.serialize`:

- ``serialize(deserialize(serialize(bc))) == serialize(bc)`` byte for byte;
- digests are stable across process runs (no hash-seed dependence).

The format carries ``BYTECODE_SCHEMA_VERSION``; any shape change must bump
it (stale cache entries then never match — see :mod:`repro.session.keys`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro._version import BYTECODE_SCHEMA_VERSION
from repro.errors import ReproError
from repro.ir.instructions import SourceLoc, VarInfo
from repro.ir.serialize import _dec_type, _enc_type
from repro.lang.tokens import SourcePos

FORMAT_NAME = "repro-bytecode"


class BytecodeError(ReproError):
    """Lowering failed (malformed or unsupported IR shape)."""


class BytecodeSerializeError(ReproError):
    """Malformed or incompatible serialized bytecode."""


# ---------------------------------------------------------------------------
# Opcode set
# ---------------------------------------------------------------------------
#
# Every opcode is one int followed by a fixed (per-opcode) operand layout;
# call opcodes append ``argc`` trailing argument slots.  Operand slots are
# indices into the frame's flat register file; ``*_pc`` operands are
# absolute offsets into the function's code stream; ``var``/``loc``/string
# operands index the module-level side tables (-1 encodes None).

OP_LOAD = 1            # [dst, ptr, ty, is_var]
OP_STORE = 2           # [val, ptr, ty, is_var]
OP_ADDR = 3            # [dst, base, index, scale, offset]
OP_JUMP = 4            # [target_pc]
OP_BR = 5              # [cond, true_pc, false_pc]
OP_PHI = 6             # [k, succ_pc, src0, dst0, ... src{k-1}, dst{k-1}]
OP_CAST = 7            # [dst, src, to]
OP_ALLOCA = 8          # [dst, size, var, loc]
OP_CALL = 9            # [func, dst, pin, argc, args...]
OP_CALL_BUILTIN = 10   # [builtin, dst, pin, alloc_loc, argc, args...]
OP_CALL_IND = 11       # [callee, dst, pin, alloc_loc, argc, args...]
OP_CALL_MISSING = 12   # [name_str, argc, args...]
OP_RET = 13            # [val]
OP_ROI_BEGIN = 14      # [roi]
OP_ROI_END = 15        # [roi]
OP_ROI_RESET = 16      # [roi]
OP_PROBE_ACCESS = 17   # [is_write, ptr, size, var, count, stride, loc, site]
OP_PROBE_CLASSIFY = 18  # [states_str, ptr, size, var, count, stride, loc,
#                          roi, site]
OP_PROBE_ESCAPE = 19   # [val, ptr, loc]
OP_OMP_BEGIN = 20      # [kind_str, region]
OP_OMP_END = 21        # [kind_str, region]
OP_OMP_BARRIER = 22    # []
OP_ADD = 23            # binops: [dst, lhs, rhs]; div/rem add a loc operand
OP_SUB = 24
OP_MUL = 25
OP_DIV = 26            # [dst, lhs, rhs, loc]
OP_REM = 27            # [dst, lhs, rhs, loc]
OP_EQ = 28
OP_NE = 29
OP_LT = 30
OP_LE = 31
OP_GT = 32
OP_GE = 33
OP_AND = 34
OP_OR = 35
OP_XOR = 36
OP_SHL = 37
OP_SHR = 38
OP_PROBE_STATIC = 39   # [ptr, roi, fact]

# -- tier-2 superinstructions (canonical: serialized, schema v2) ------------
#
# The fusion peephole in :mod:`repro.vm.codegen` collapses the adjacent
# pairs that dominate lowered streams (see the static pair-frequency
# count it records) into one fused opcode each.  Fused execution still
# counts both component instructions and checks the budget between the
# halves, so trip points and spilled state match the unfused stream and
# the tree-walk oracle exactly.

OP_LT_BR = 40          # [dst, lhs, rhs, true_pc, false_pc]  (cmp+branch)
OP_LE_BR = 41
OP_GT_BR = 42
OP_GE_BR = 43
OP_EQ_BR = 44
OP_NE_BR = 45
OP_LOAD_BIN = 46       # [subop, ldst, ptr, ty, is_var, bdst, lhs, rhs]
OP_BIN_STORE = 47      # [subop, bdst, lhs, rhs, ptr, ty, is_var]
OP_PROBE_LOAD = 48     # [probe.access 8 operands..., dst, ptr, ty, is_var]
OP_PROBE_STORE = 49    # [probe.access 8 operands..., val, ptr, ty, is_var]

#: cmp opcode -> fused cmp+branch opcode.
FUSED_CMP_BR: Dict[int, int] = {}

# -- tier-2 quickened opcodes (runtime-only: NEVER serialized) --------------
#
# The interpreter rewrites quickenable sites of a function's *execution
# stream* into these on first execution (see ``BytecodeInterpreter``);
# the canonical ``fn.code`` stream is never touched, and ``dequicken``
# restores the execution stream from it.  Layouts match the canonical
# forms word for word so rewrites are in place; ``*_QI`` variants carry
# an immediate operand value where the canonical form carries a
# const-pool slot.

OP_ADD_QI = 56         # [dst, lhs, imm]
OP_SUB_QI = 57         # [dst, lhs, imm]
OP_RSUB_QI = 58        # [dst, imm, rhs]  (sub with constant lhs)
OP_MUL_QI = 59         # [dst, lhs, imm]
OP_DIV_QI = 60         # [dst, lhs, imm, loc]  (imm is a nonzero int)
OP_REM_QI = 61         # [dst, lhs, imm, loc]  (imm is a nonzero int)
OP_LT_BR_QI = 62       # [dst, lhs, imm, true_pc, false_pc]
OP_LE_BR_QI = 63
OP_GT_BR_QI = 64
OP_GE_BR_QI = 65
OP_EQ_BR_QI = 66
OP_NE_BR_QI = 67
OP_PHI_Q1 = 68         # OP_PHI layout with k == 1
OP_CALL_IND_QF = 69    # [target_index, dst, pin, alloc_loc, argc, args...]
OP_CALL_IND_QB = 70    # same, target pre-resolved to a builtin
OP_JUMP_PHI = 71       # OP_JUMP layout; target is a phi trampoline that is
                       # executed in the same dispatch (still counted as two
                       # instructions, budget-checked between them)

#: Offset from a canonical fused cmp+branch opcode to its ``_QI`` twin.
QUICKEN_CMP_BR_OFFSET = OP_LT_BR_QI - OP_LT_BR

#: Canonical binop opcode -> immediate-quickened opcode.
QUICKENED_BINOPS: Dict[int, int] = {}

#: Every opcode that only exists in a quickened execution stream.
QUICKENED_OPCODES = frozenset(range(OP_ADD_QI, OP_JUMP_PHI + 1))

#: IR binop name -> opcode (div/rem carry an extra loc operand for traps).
BINOP_OPCODES: Dict[str, int] = {
    "add": OP_ADD, "sub": OP_SUB, "mul": OP_MUL, "div": OP_DIV,
    "rem": OP_REM, "eq": OP_EQ, "ne": OP_NE, "lt": OP_LT, "le": OP_LE,
    "gt": OP_GT, "ge": OP_GE, "and": OP_AND, "or": OP_OR, "xor": OP_XOR,
    "shl": OP_SHL, "shr": OP_SHR,
}

FUSED_CMP_BR.update({
    OP_LT: OP_LT_BR, OP_LE: OP_LE_BR, OP_GT: OP_GT_BR, OP_GE: OP_GE_BR,
    OP_EQ: OP_EQ_BR, OP_NE: OP_NE_BR,
})
QUICKENED_BINOPS.update({
    OP_ADD: OP_ADD_QI, OP_SUB: OP_SUB_QI, OP_MUL: OP_MUL_QI,
    OP_DIV: OP_DIV_QI, OP_REM: OP_REM_QI,
})

#: Fused opcode -> stats-bucket name (``fused_sites`` breakdown).
FUSED_KINDS: Dict[int, str] = {
    OP_LT_BR: "cmp_br", OP_LE_BR: "cmp_br", OP_GT_BR: "cmp_br",
    OP_GE_BR: "cmp_br", OP_EQ_BR: "cmp_br", OP_NE_BR: "cmp_br",
    OP_LOAD_BIN: "load_bin", OP_BIN_STORE: "bin_store",
    OP_PROBE_LOAD: "probe_access", OP_PROBE_STORE: "probe_access",
}

#: Scalar type codes for load/store/cast operands.
TY_INT = 0
TY_FLOAT = 1
TY_CHAR = 2

#: Opcode -> mnemonic, for ``--trace`` output and disassembly in tests.
OPCODE_NAMES: Dict[int, str] = {
    OP_LOAD: "load", OP_STORE: "store", OP_ADDR: "addr", OP_JUMP: "jump",
    OP_BR: "br", OP_PHI: "phi", OP_CAST: "cast", OP_ALLOCA: "alloca",
    OP_CALL: "call", OP_CALL_BUILTIN: "call.builtin",
    OP_CALL_IND: "call.ind", OP_CALL_MISSING: "call.missing",
    OP_RET: "ret", OP_ROI_BEGIN: "roi.begin", OP_ROI_END: "roi.end",
    OP_ROI_RESET: "roi.reset", OP_PROBE_ACCESS: "probe.access",
    OP_PROBE_CLASSIFY: "probe.classify", OP_PROBE_ESCAPE: "probe.escape",
    OP_PROBE_STATIC: "probe.static",
    OP_OMP_BEGIN: "omp.begin", OP_OMP_END: "omp.end",
    OP_OMP_BARRIER: "omp.barrier",
    OP_LT_BR: "lt.br", OP_LE_BR: "le.br", OP_GT_BR: "gt.br",
    OP_GE_BR: "ge.br", OP_EQ_BR: "eq.br", OP_NE_BR: "ne.br",
    OP_LOAD_BIN: "load.bin", OP_BIN_STORE: "bin.store",
    OP_PROBE_LOAD: "probe.load", OP_PROBE_STORE: "probe.store",
    OP_ADD_QI: "add.qi", OP_SUB_QI: "sub.qi", OP_RSUB_QI: "rsub.qi",
    OP_MUL_QI: "mul.qi", OP_DIV_QI: "div.qi", OP_REM_QI: "rem.qi",
    OP_LT_BR_QI: "lt.br.qi", OP_LE_BR_QI: "le.br.qi",
    OP_GT_BR_QI: "gt.br.qi", OP_GE_BR_QI: "ge.br.qi",
    OP_EQ_BR_QI: "eq.br.qi", OP_NE_BR_QI: "ne.br.qi",
    OP_PHI_Q1: "phi.q1",
    OP_CALL_IND_QF: "call.ind.qf", OP_CALL_IND_QB: "call.ind.qb",
    OP_JUMP_PHI: "jump.phi",
}
OPCODE_NAMES.update({code: name for name, code in BINOP_OPCODES.items()})

#: Fixed operand count per opcode; call opcodes add ``argc`` more.
OPCODE_WIDTHS: Dict[int, int] = {
    OP_LOAD: 4, OP_STORE: 4, OP_ADDR: 5, OP_JUMP: 1, OP_BR: 3,
    OP_CAST: 3, OP_ALLOCA: 4, OP_CALL: 4, OP_CALL_BUILTIN: 5,
    OP_CALL_IND: 5, OP_CALL_MISSING: 2, OP_RET: 1, OP_ROI_BEGIN: 1,
    OP_ROI_END: 1, OP_ROI_RESET: 1, OP_PROBE_ACCESS: 8,
    OP_PROBE_CLASSIFY: 9, OP_PROBE_ESCAPE: 3, OP_PROBE_STATIC: 3,
    OP_OMP_BEGIN: 2,
    OP_OMP_END: 2, OP_OMP_BARRIER: 0,
    OP_ADD: 3, OP_SUB: 3, OP_MUL: 3, OP_DIV: 4, OP_REM: 4, OP_EQ: 3,
    OP_NE: 3, OP_LT: 3, OP_LE: 3, OP_GT: 3, OP_GE: 3, OP_AND: 3,
    OP_OR: 3, OP_XOR: 3, OP_SHL: 3, OP_SHR: 3,
    OP_LT_BR: 5, OP_LE_BR: 5, OP_GT_BR: 5, OP_GE_BR: 5, OP_EQ_BR: 5,
    OP_NE_BR: 5, OP_LOAD_BIN: 8, OP_BIN_STORE: 7, OP_PROBE_LOAD: 12,
    OP_PROBE_STORE: 12,
    OP_ADD_QI: 3, OP_SUB_QI: 3, OP_RSUB_QI: 3, OP_MUL_QI: 3,
    OP_DIV_QI: 4, OP_REM_QI: 4, OP_LT_BR_QI: 5, OP_LE_BR_QI: 5,
    OP_GT_BR_QI: 5, OP_GE_BR_QI: 5, OP_EQ_BR_QI: 5, OP_NE_BR_QI: 5,
    OP_CALL_IND_QF: 5, OP_CALL_IND_QB: 5, OP_JUMP_PHI: 1,
}

#: Opcodes whose width is ``OPCODE_WIDTHS[op] + argc`` (argc operand index
#: relative to the opcode word, used by the disassembler/verifier walk).
CALL_ARGC_INDEX = {OP_CALL: 4, OP_CALL_BUILTIN: 5, OP_CALL_IND: 5,
                   OP_CALL_MISSING: 2, OP_CALL_IND_QF: 5,
                   OP_CALL_IND_QB: 5}
#: OP_PHI's width is ``2 + 2*k`` (k = first operand).


def instr_width(code, pc: int) -> int:
    """Total width (opcode word included) of the instruction at ``pc``."""
    op = code[pc]
    if op == OP_PHI or op == OP_PHI_Q1:
        return 3 + 2 * code[pc + 1]
    width = 1 + OPCODE_WIDTHS[op]
    argc_at = CALL_ARGC_INDEX.get(op)
    if argc_at is not None:
        width += code[pc + argc_at]
    return width


# ---------------------------------------------------------------------------
# Containers
# ---------------------------------------------------------------------------


class BytecodeFunction:
    """One lowered function: code stream + frame layout + const pool.

    The frame register file is ``[consts..., args..., temps...]``:
    ``consts`` entries are tagged ``("v", value)`` literals, ``("g", name)``
    global addresses, or ``("f", name)`` function-pointer values, resolved
    once at link time into a frame *prototype* the interpreter copies per
    call (one C-level list copy instead of per-operand evaluation).
    """

    __slots__ = ("name", "code", "consts", "n_args", "n_regs", "entry_pc",
                 "instrumented", "arg_base", "proto", "xcode", "xquick",
                 "quickened")

    def __init__(self, name: str, code, consts: List[tuple], n_args: int,
                 n_regs: int, entry_pc: int, instrumented: bool) -> None:
        self.name = name
        self.code = code
        self.consts = consts
        self.n_args = n_args
        self.n_regs = n_regs
        self.entry_pc = entry_pc
        #: ``not conventionally_optimized`` at lowering time — the second
        #: argument of ``ExecutionHooks.on_call_enter``.
        self.instrumented = instrumented
        self.arg_base = len(consts)
        #: Linked frame prototype (filled by the interpreter's first link).
        self.proto: Optional[list] = None
        #: Execution stream: a plain-list mirror of ``code`` built at link
        #: time.  This is what the dispatch loop runs and what quickening
        #: rewrites in place; ``code`` itself stays canonical forever, so
        #: serialization and digests can never observe quickened opcodes.
        self.xcode: Optional[list] = None
        #: True once this function's execution stream has been quickened.
        self.xquick = False
        #: pc -> quickened opcode for every rewritten site (None until the
        #: first quickening pass touches the function).
        self.quickened: Optional[Dict[int, int]] = None


class GlobalInit:
    """Link-time recipe for one global: size, identity, initializer."""

    __slots__ = ("name", "size", "var_index", "init_kind", "init")

    def __init__(self, name: str, size: int, var_index: int,
                 init_kind: str, init) -> None:
        self.name = name
        self.size = size
        self.var_index = var_index
        self.init_kind = init_kind  # "none" | "str" | "float" | "int"
        self.init = init


class BytecodeModule:
    """A lowered module: functions plus the shared side tables.

    ``function_order`` fixes function-pointer addresses
    (``FUNC_PTR_BASE + index``, builtins appended after — the same table
    the tree-walk interpreter builds), ``builtin_order`` the direct
    builtin-call binding, and the var/loc/string tables everything the
    probe and marker opcodes reference.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, BytecodeFunction] = {}
        self.function_order: List[str] = []
        self.builtin_order: List[str] = []
        self.var_table: List[VarInfo] = []
        self.loc_table: List[SourceLoc] = []
        self.string_table: List[str] = []
        self.globals: List[GlobalInit] = []
        #: Link cache (global/function addresses are deterministic, so one
        #: link serves every interpreter over this module).
        self._linked = None
        #: Pre-resolved indirect-call targets appended by quickening
        #: (``OP_CALL_IND_QF/QB`` operands index this list).
        self._quick_targets: List[object] = []
        #: Fusion-kind counts recorded by the codegen peephole (live
        #: lowering only; recount deserialized modules via
        #: :func:`fused_site_counts`).
        self.fusion_stats: Dict[str, int] = {}
        #: Static adjacent-opcode pair frequencies seen during lowering —
        #: the evidence the fusion catalog is chosen from.
        self.pair_counts: Dict[str, int] = {}
        #: Total quickened sites restored by :func:`dequicken_module`.
        self.dequicken_count = 0

    def rebind_vars(self, module) -> None:
        """Swap var-table entries for the IR module's own instances.

        A deserialized bytecode module carries fresh :class:`VarInfo`
        objects; the runtime's site intern table is keyed by identity, so
        runs must report the same instances the :class:`CarmotRuntime`
        was seeded with.  Matching is by ``uid`` (unique per module).
        (:class:`SourceLoc` needs no rebinding — it is globally interned.)
        """
        by_uid = {}
        for gvar in module.globals.values():
            by_uid[gvar.var.uid] = gvar.var
        for function in module.functions.values():
            for var in function.param_vars:
                by_uid[var.uid] = var
            for alloca in function.var_allocas.values():
                if alloca.var is not None:
                    by_uid[alloca.var.uid] = alloca.var
            for instr in function.instructions():
                var = getattr(instr, "var", None)
                if var is not None:
                    by_uid[var.uid] = var
        for var, _loc in module.site_table:
            if var is not None:
                by_uid[var.uid] = var
        self.var_table = [by_uid.get(var.uid, var) for var in self.var_table]


# ---------------------------------------------------------------------------
# Tier-2 introspection: dequickening, stats, disassembly
# ---------------------------------------------------------------------------


def dequicken_module(bc: BytecodeModule) -> int:
    """Restore every quickened execution stream to the canonical words.

    Rewrites each patched site of ``fn.xcode`` back from ``fn.code`` (the
    canonical stream, which quickening never touches) and clears the
    quickening state so the next run re-quickens from scratch.  Returns
    the number of sites restored and accumulates it on
    ``bc.dequicken_count``.
    """
    restored = 0
    for name in bc.function_order:
        fn = bc.functions[name]
        sites = fn.quickened
        if sites:
            code = fn.code
            xcode = fn.xcode
            for pc in sites:
                width = instr_width(code, pc)
                xcode[pc:pc + width] = list(code[pc:pc + width])
            restored += len(sites)
        fn.quickened = None
        fn.xquick = False
    del bc._quick_targets[:]
    bc.dequicken_count += restored
    return restored


def fused_site_counts(bc: BytecodeModule) -> Dict[str, int]:
    """Count fused superinstruction sites per kind by walking the
    canonical code streams (works for live and deserialized modules
    alike).  Includes a ``"total"`` entry."""
    counts = {"cmp_br": 0, "load_bin": 0, "bin_store": 0,
              "probe_access": 0}
    total = 0
    for name in bc.function_order:
        code = bc.functions[name].code
        pc = 0
        n = len(code)
        while pc < n:
            kind = FUSED_KINDS.get(code[pc])
            if kind is not None:
                counts[kind] += 1
                total += 1
            pc += instr_width(code, pc)
    counts["total"] = total
    return counts


def quickened_op_count(bc: BytecodeModule) -> int:
    """Number of currently-quickened sites across all functions."""
    return sum(len(bc.functions[name].quickened or ())
               for name in bc.function_order)


def disassemble(bc: BytecodeModule, quicken_report: bool = False) -> str:
    """Human-readable listing of every canonical code stream.

    Always renders the *canonical* words (``fn.code``), so the output is
    byte-identical before and after execution regardless of quickening.
    Fused superinstruction sites are marked ``; fused``; with
    ``quicken_report`` each site the interpreter has quickened gains a
    ``; quickened -> <mnemonic>`` annotation read from the (runtime-only)
    execution stream.
    """
    lines = [f"module {bc.name}"]
    for name in bc.function_order:
        fn = bc.functions[name]
        lines.append("")
        lines.append(f"fn {fn.name} args={fn.n_args} regs={fn.n_regs} "
                     f"entry={fn.entry_pc}")
        if fn.consts:
            pool = ", ".join(f"c{i}={tag}:{payload!r}"
                             for i, (tag, payload) in enumerate(fn.consts))
            lines.append(f"  consts: {pool}")
        code = fn.code
        quickened = fn.quickened or {}
        pc = 0
        n = len(code)
        while pc < n:
            op = code[pc]
            width = instr_width(code, pc)
            operands = ", ".join(str(code[pc + i]) for i in range(1, width))
            text = f"  {pc:5d}: {OPCODE_NAMES.get(op, f'op{op}')}"
            if operands:
                text += f" {operands}"
            if op in FUSED_KINDS:
                text += "  ; fused"
            if quicken_report and pc in quickened:
                text += (f"  ; quickened -> "
                         f"{OPCODE_NAMES.get(quickened[pc], '?')}")
            lines.append(text)
            pc += width
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _enc_var(var: VarInfo, structs, loc_index) -> dict:
    return {
        "uid": var.uid,
        "name": var.name,
        "storage": var.storage,
        "ty": _enc_type(var.ty, structs),
        "decl": loc_index(var.decl_loc),
    }


def serialize_bytecode(bc: BytecodeModule) -> str:
    """Canonical JSON for one :class:`BytecodeModule` (byte-stable)."""
    structs: Dict[str, object] = {}
    loc_ids = {loc: index for index, loc in enumerate(bc.loc_table)}

    def loc_index(loc: Optional[SourceLoc]) -> int:
        return -1 if loc is None else loc_ids[loc]

    doc = {
        "format": FORMAT_NAME,
        "schema": BYTECODE_SCHEMA_VERSION,
        "module": bc.name,
        "locs": [[loc.filename, loc.line, loc.column]
                 for loc in bc.loc_table],
        "strings": list(bc.string_table),
        "function_order": list(bc.function_order),
        "builtin_order": list(bc.builtin_order),
        "vars": [_enc_var(var, structs, loc_index) for var in bc.var_table],
        "globals": [
            {
                "name": g.name,
                "size": g.size,
                "var": g.var_index,
                "init": (None if g.init_kind == "none"
                         else [g.init_kind, g.init]),
            }
            for g in bc.globals
        ],
        "functions": [
            {
                "name": fn.name,
                "code": list(fn.code),
                "consts": [list(entry) for entry in fn.consts],
                "n_args": fn.n_args,
                "n_regs": fn.n_regs,
                "entry": fn.entry_pc,
                "instrumented": fn.instrumented,
            }
            for fn in (bc.functions[name] for name in bc.function_order)
        ],
    }
    # The struct table is collected while encoding var types; emit it
    # sorted by name so the payload never depends on walk order.
    doc["structs"] = [
        {
            "name": name,
            "fields": [[fname, _enc_type(fty, structs)]
                       for fname, fty in structs[name].fields],
        }
        for name in sorted(structs)
    ]
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def deserialize_bytecode(payload: str) -> BytecodeModule:
    """Inverse of :func:`serialize_bytecode`; raises
    :class:`BytecodeSerializeError` on any malformed or stale payload."""
    from array import array

    from repro.lang import types as ct

    try:
        doc = json.loads(payload)
    except (json.JSONDecodeError, TypeError) as error:
        raise BytecodeSerializeError(f"unreadable bytecode payload: {error}")
    if not isinstance(doc, dict):
        raise BytecodeSerializeError(
            f"bytecode payload is {type(doc).__name__}, expected object"
        )
    try:
        if doc.get("format") != FORMAT_NAME:
            raise BytecodeSerializeError(
                f"not a {FORMAT_NAME} payload: {doc.get('format')!r}"
            )
        if doc.get("schema") != BYTECODE_SCHEMA_VERSION:
            raise BytecodeSerializeError(
                f"bytecode schema {doc.get('schema')!r} != "
                f"{BYTECODE_SCHEMA_VERSION}"
            )
        structs: Dict[str, ct.StructType] = {}
        for sdoc in doc["structs"]:
            structs[sdoc["name"]] = ct.StructType(sdoc["name"])
        for sdoc in doc["structs"]:
            structs[sdoc["name"]].set_body([
                (fname, _dec_type(fdoc, structs))
                for fname, fdoc in sdoc["fields"]
            ])
        bc = BytecodeModule(doc["module"])
        bc.loc_table = [
            SourceLoc.of(SourcePos(filename, line, column))
            for filename, line, column in doc["locs"]
        ]
        bc.string_table = [str(s) for s in doc["strings"]]
        bc.function_order = [str(n) for n in doc["function_order"]]
        bc.builtin_order = [str(n) for n in doc["builtin_order"]]

        def loc_at(index: int) -> Optional[SourceLoc]:
            return None if index < 0 else bc.loc_table[index]

        bc.var_table = [
            VarInfo(
                uid=vdoc["uid"], name=vdoc["name"],
                storage=vdoc["storage"],
                ty=_dec_type(vdoc["ty"], structs),
                decl_loc=loc_at(vdoc["decl"]),
            )
            for vdoc in doc["vars"]
        ]
        for gdoc in doc["globals"]:
            init = gdoc["init"]
            if init is None:
                kind, value = "none", None
            else:
                kind, value = init[0], init[1]
                if kind not in ("str", "float", "int"):
                    raise BytecodeSerializeError(
                        f"unknown global init kind {kind!r}"
                    )
            bc.globals.append(GlobalInit(
                gdoc["name"], gdoc["size"], gdoc["var"], kind, value,
            ))
        for fdoc in doc["functions"]:
            consts = []
            for entry in fdoc["consts"]:
                tag = entry[0]
                if tag not in ("v", "g", "f"):
                    raise BytecodeSerializeError(
                        f"unknown const tag {tag!r}"
                    )
                consts.append((tag, entry[1]))
            fn = BytecodeFunction(
                name=fdoc["name"],
                code=array("q", fdoc["code"]),
                consts=consts,
                n_args=fdoc["n_args"],
                n_regs=fdoc["n_regs"],
                entry_pc=fdoc["entry"],
                instrumented=bool(fdoc["instrumented"]),
            )
            bc.functions[fn.name] = fn
        if bc.function_order != list(bc.functions):
            raise BytecodeSerializeError("function table order mismatch")
        return bc
    except BytecodeSerializeError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, OverflowError) \
            as error:
        raise BytecodeSerializeError(f"malformed bytecode payload: {error}")


def bytecode_digest(bc: BytecodeModule) -> str:
    """Stable content digest of a bytecode module."""
    from repro.ir.serialize import payload_digest

    return payload_digest(serialize_bytecode(bc))
