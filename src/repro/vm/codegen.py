"""IR -> register bytecode lowering.

:func:`lower_module` turns a verified :class:`~repro.ir.module.Module`
into a :class:`~repro.vm.bytecode.BytecodeModule`:

- **Slot allocation.**  Each function gets a flat register file
  ``[consts..., args..., temps...]``.  Constants, global addresses and
  function-pointer values are interned into a per-function const pool
  (resolved once at link time into the frame prototype); ``argN`` temps map
  onto the argument slots; every other temp gets a frame slot.  Operands in
  the code stream are plain slot indices — the dispatch loop never looks at
  a :class:`~repro.ir.values.Value` again.
- **Pre-bound call targets.**  Direct calls are split at lowering time into
  ``OP_CALL`` (defined function, by function-table index),
  ``OP_CALL_BUILTIN`` (by builtin-table index, with the builtin's
  allocation-site location baked in) and ``OP_CALL_MISSING`` (the exact
  tree-walk trap).  Indirect calls stay one ``OP_CALL_IND`` resolved
  through the linked address table.
- **Branch targets as code offsets.**  Jumps and branches carry absolute
  offsets into the function's code stream.  Phi nodes are lowered to
  per-CFG-edge trampolines (``OP_PHI`` reads all sources, then writes all
  destinations, then enters the successor body), so the runtime needs no
  ``prev_block`` tracking.
- **Probe/marker lowering.**  CARMOT probes and ROI/OMP markers become
  inline opcodes whose var/loc/string operands index module-level side
  tables — instrumented output needs no per-step object inspection either.

Lowering is purely structural: it never evaluates anything, so the
bytecode is valid for every entry point, argument vector, and hook set.
"""

from __future__ import annotations

import re
from array import array
from typing import Dict, List, Optional, Tuple

from repro.builtins_spec import BUILTINS
from repro.lang import types as ct
from repro.ir.instructions import (
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Jump,
    Load,
    OmpBarrier,
    OmpRegionBegin,
    OmpRegionEnd,
    Phi,
    ProbeAccess,
    ProbeClassify,
    ProbeEscape,
    ProbeStatic,
    Ret,
    RoiBegin,
    RoiEnd,
    RoiReset,
    SourceLoc,
    Store,
    VarInfo,
)
from repro.ir.module import Block, Function, Module
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value
from repro.vm.bytecode import (
    BINOP_OPCODES,
    FUSED_CMP_BR,
    OPCODE_NAMES,
    BytecodeError,
    BytecodeFunction,
    BytecodeModule,
    GlobalInit,
    OP_ADDR,
    OP_ALLOCA,
    OP_BIN_STORE,
    OP_BR,
    OP_CALL,
    OP_CALL_BUILTIN,
    OP_CALL_IND,
    OP_CALL_MISSING,
    OP_CAST,
    OP_DIV,
    OP_JUMP,
    OP_LOAD,
    OP_LOAD_BIN,
    OP_OMP_BARRIER,
    OP_OMP_BEGIN,
    OP_OMP_END,
    OP_PHI,
    OP_PROBE_ACCESS,
    OP_PROBE_CLASSIFY,
    OP_PROBE_ESCAPE,
    OP_PROBE_LOAD,
    OP_PROBE_STATIC,
    OP_PROBE_STORE,
    OP_REM,
    OP_RET,
    OP_ROI_BEGIN,
    OP_ROI_END,
    OP_ROI_RESET,
    OP_STORE,
    TY_CHAR,
    TY_FLOAT,
    TY_INT,
)

_ARG_NAME = re.compile(r"arg(\d+)\Z")

#: Width-3 binop opcodes (everything but div/rem, whose trap-loc operand
#: and zero check keep them out of the fusion catalog).
_SIMPLE_BINOPS = frozenset(
    op for op in BINOP_OPCODES.values() if op not in (OP_DIV, OP_REM)
)


def _ty_code(ty: ct.Type) -> int:
    if isinstance(ty, ct.FloatType):
        return TY_FLOAT
    if isinstance(ty, ct.CharType):
        return TY_CHAR
    return TY_INT


class _SideTables:
    """Module-wide var/loc/string interning (deterministic walk order)."""

    def __init__(self) -> None:
        self._vars: Dict[int, int] = {}
        self.var_list: List[VarInfo] = []
        self._locs: Dict[SourceLoc, int] = {}
        self.loc_list: List[SourceLoc] = []
        self._strings: Dict[str, int] = {}
        self.string_list: List[str] = []

    def var(self, var: Optional[VarInfo]) -> int:
        if var is None:
            return -1
        index = self._vars.get(id(var))
        if index is None:
            index = len(self.var_list)
            self._vars[id(var)] = index
            self.var_list.append(var)
            # The serializer encodes decl locations by table index, so a
            # var's decl_loc must be interned even when no instruction
            # operand ever references it.
            self.loc(var.decl_loc)
        return index

    def loc(self, loc: Optional[SourceLoc]) -> int:
        if loc is None:
            return -1
        index = self._locs.get(loc)
        if index is None:
            index = len(self.loc_list)
            self._locs[loc] = index
            self.loc_list.append(loc)
        return index

    def string(self, text: str) -> int:
        index = self._strings.get(text)
        if index is None:
            index = len(self.string_list)
            self._strings[text] = index
            self.string_list.append(text)
        return index


def _operand_values(instr) -> List[Value]:
    """Every Value the instruction *reads* (slot operands, not results)."""
    kind = type(instr)
    if kind is Load:
        return [instr.ptr]
    if kind is Store:
        return [instr.value, instr.ptr]
    if kind is BinOp:
        return [instr.lhs, instr.rhs]
    if kind is Cast:
        return [instr.value]
    if kind is AddrOffset:
        return [instr.base, instr.index]
    if kind is Phi:
        return list(instr.incomings.values())
    if kind is Call:
        values = [] if isinstance(instr.callee, FunctionRef) \
            else [instr.callee]
        values.extend(instr.args)
        return values
    if kind is Branch:
        return [instr.cond]
    if kind is Ret:
        return [] if instr.value is None else [instr.value]
    if kind in (ProbeAccess, ProbeClassify):
        values = [instr.ptr]
        if instr.count is not None:
            values.append(instr.count)
        return values
    if kind is ProbeStatic:
        return [instr.ptr]
    if kind is ProbeEscape:
        return [instr.value, instr.ptr]
    return []


class _FunctionLowering:
    def __init__(self, function: Function, tables: _SideTables,
                 module: Module,
                 fusion_stats: Optional[Dict[str, int]] = None,
                 pair_counts: Optional[Dict[str, int]] = None) -> None:
        self.function = function
        self.tables = tables
        self.module = module
        self.consts: List[tuple] = []
        self._const_slots: Dict[tuple, int] = {}
        self._temp_slots: Dict[str, int] = {}
        self.n_args = len(function.param_vars)
        self.code: List[int] = []
        self.block_pc: Dict[int, int] = {}       # id(block) -> body pc
        self.head_phis: Dict[int, List[Phi]] = {}  # id(block) -> leading phis
        self.fixups: List[Tuple[int, Block, Block]] = []
        #: (start_pc, opcode) of the previous emission in the current
        #: block — the fusion peephole's one-instruction lookbehind.
        self._prev: Optional[Tuple[int, int]] = None
        self.fusion_stats = fusion_stats if fusion_stats is not None else {}
        self.pair_counts = pair_counts if pair_counts is not None else {}

    # -- slot allocation ---------------------------------------------------

    def _const_slot(self, key: tuple, entry: tuple) -> int:
        slot = self._const_slots.get(key)
        if slot is None:
            slot = len(self.consts)
            self._const_slots[key] = slot
            self.consts.append(entry)
        return slot

    def _collect(self) -> None:
        """Pass 1: intern constants, size the arg window, name the temps."""
        for instr in self.function.instructions():
            for value in _operand_values(instr):
                kind = type(value)
                if kind is Const:
                    # Key on the value's type too: 1 and 1.0 are equal as
                    # dict keys but must occupy distinct slots.
                    self._const_slot(
                        ("v", type(value.value).__name__, value.value),
                        ("v", value.value),
                    )
                elif kind is GlobalRef:
                    self._const_slot(("g", value.name), ("g", value.name))
                elif kind is FunctionRef:
                    self._const_slot(("f", value.name), ("f", value.name))
                elif kind is Temp:
                    match = _ARG_NAME.fullmatch(value.name)
                    if match:
                        self.n_args = max(self.n_args, int(match.group(1)) + 1)
                    elif value.name not in self._temp_slots:
                        self._temp_slots[value.name] = len(self._temp_slots)
            result = getattr(instr, "result", None)
            if result is not None and not _ARG_NAME.fullmatch(result.name):
                if result.name not in self._temp_slots:
                    self._temp_slots[result.name] = len(self._temp_slots)

    def _slot(self, value: Value) -> int:
        kind = type(value)
        if kind is Temp:
            match = _ARG_NAME.fullmatch(value.name)
            if match:
                return len(self.consts) + int(match.group(1))
            return (len(self.consts) + self.n_args
                    + self._temp_slots[value.name])
        if kind is Const:
            return self._const_slots[
                ("v", type(value.value).__name__, value.value)]
        if kind is GlobalRef:
            return self._const_slots[("g", value.name)]
        if kind is FunctionRef:
            return self._const_slots[("f", value.name)]
        raise BytecodeError(
            f"cannot lower operand {value!r} in {self.function.name}")

    # -- emission ----------------------------------------------------------

    def _store_ty(self, instr: Store) -> int:
        ty = instr.ptr.ty.pointee \
            if isinstance(instr.ptr.ty, ct.PointerType) \
            else instr.value.ty
        return _ty_code(ty)

    def _count_pair(self, first: int, second: int) -> None:
        key = f"{OPCODE_NAMES[first]}+{OPCODE_NAMES[second]}"
        self.pair_counts[key] = self.pair_counts.get(key, 0) + 1

    def _fuse(self, prev: Tuple[int, int], instr, kind, block: Block) -> bool:
        """Superinstruction peephole: try to fuse ``instr`` into the
        previously emitted instruction (same block, emit-time adjacency —
        so the pair can never be separately branch-targeted).  Rewrites
        the tail of the code stream in place; safe because no fixup or
        block start ever points past the previous instruction's start.
        Returns True when ``instr`` was consumed by a fused opcode."""
        pstart, pop = prev
        code = self.code
        stats = self.fusion_stats
        if kind is Branch:
            fused = FUSED_CMP_BR.get(pop)
            if fused is None or self._slot(instr.cond) != code[pstart + 1]:
                return False
            self._count_pair(pop, OP_BR)
            dst, lhs, rhs = code[pstart + 1:pstart + 4]
            del code[pstart:]
            code.extend((fused, dst, lhs, rhs))
            self.fixups.append((len(code), block, instr.if_true))
            code.append(0)
            self.fixups.append((len(code), block, instr.if_false))
            code.append(0)
            stats["cmp_br"] = stats.get("cmp_br", 0) + 1
            return True
        if kind is BinOp and pop == OP_LOAD:
            subop = BINOP_OPCODES.get(instr.op)
            if subop is None or subop not in _SIMPLE_BINOPS:
                return False
            ldst = code[pstart + 1]
            lhs = self._slot(instr.lhs)
            rhs = self._slot(instr.rhs)
            if lhs != ldst and rhs != ldst:
                return False
            self._count_pair(OP_LOAD, subop)
            ptr, ty, is_var = code[pstart + 2:pstart + 5]
            del code[pstart:]
            code.extend((OP_LOAD_BIN, subop, ldst, ptr, ty, is_var,
                         self._slot(instr.result), lhs, rhs))
            stats["load_bin"] = stats.get("load_bin", 0) + 1
            return True
        if kind is Store and pop in _SIMPLE_BINOPS \
                and self._slot(instr.value) == code[pstart + 1]:
            self._count_pair(pop, OP_STORE)
            bdst, lhs, rhs = code[pstart + 1:pstart + 4]
            del code[pstart:]
            code.extend((OP_BIN_STORE, pop, bdst, lhs, rhs,
                         self._slot(instr.ptr), self._store_ty(instr),
                         1 if instr.var is not None else 0))
            stats["bin_store"] = stats.get("bin_store", 0) + 1
            return True
        if pop == OP_PROBE_ACCESS and (kind is Load or kind is Store):
            probe = code[pstart + 1:pstart + 9]
            del code[pstart:]
            if kind is Load:
                self._count_pair(OP_PROBE_ACCESS, OP_LOAD)
                code.extend((OP_PROBE_LOAD, *probe,
                             self._slot(instr.result), self._slot(instr.ptr),
                             _ty_code(instr.result.ty),
                             1 if instr.var is not None else 0))
            else:
                self._count_pair(OP_PROBE_ACCESS, OP_STORE)
                code.extend((OP_PROBE_STORE, *probe,
                             self._slot(instr.value), self._slot(instr.ptr),
                             self._store_ty(instr),
                             1 if instr.var is not None else 0))
            stats["probe_access"] = stats.get("probe_access", 0) + 1
            return True
        return False

    def _emit_instr(self, instr, block: Block, index: int) -> None:
        code = self.code
        kind = type(instr)
        prev = self._prev
        if prev is not None and self._fuse(prev, instr, kind, block):
            # Fused opcodes are never fusion sources themselves (greedy
            # left-to-right pairing, no triple superinstructions).
            self._prev = None
            return
        start = len(code)
        self._emit_plain(instr, block, index, kind)
        op = code[start]
        if prev is not None:
            self._count_pair(prev[1], op)
        self._prev = (start, op)

    def _emit_plain(self, instr, block: Block, index: int, kind) -> None:
        code = self.code
        tables = self.tables
        if kind is Load:
            code.extend((OP_LOAD, self._slot(instr.result),
                         self._slot(instr.ptr), _ty_code(instr.result.ty),
                         1 if instr.var is not None else 0))
        elif kind is Store:
            ty = instr.ptr.ty.pointee \
                if isinstance(instr.ptr.ty, ct.PointerType) \
                else instr.value.ty
            code.extend((OP_STORE, self._slot(instr.value),
                         self._slot(instr.ptr), _ty_code(ty),
                         1 if instr.var is not None else 0))
        elif kind is BinOp:
            opcode = BINOP_OPCODES.get(instr.op)
            if opcode is None:
                raise BytecodeError(f"unknown binop {instr.op!r}")
            code.extend((opcode, self._slot(instr.result),
                         self._slot(instr.lhs), self._slot(instr.rhs)))
            if opcode in (OP_DIV, OP_REM):
                code.append(tables.loc(instr.loc))
        elif kind is AddrOffset:
            code.extend((OP_ADDR, self._slot(instr.result),
                         self._slot(instr.base), self._slot(instr.index),
                         instr.scale, instr.offset))
        elif kind is Cast:
            code.extend((OP_CAST, self._slot(instr.result),
                         self._slot(instr.value),
                         _ty_code(instr.result.ty)))
        elif kind is Alloca:
            code.extend((OP_ALLOCA, self._slot(instr.result),
                         instr.allocated_type.size(),
                         tables.var(instr.var), tables.loc(instr.loc)))
        elif kind is Jump:
            code.append(OP_JUMP)
            self.fixups.append((len(code), block, instr.target))
            code.append(0)
        elif kind is Branch:
            code.extend((OP_BR, self._slot(instr.cond)))
            self.fixups.append((len(code), block, instr.if_true))
            code.append(0)
            self.fixups.append((len(code), block, instr.if_false))
            code.append(0)
        elif kind is Ret:
            code.extend((OP_RET, -1 if instr.value is None
                         else self._slot(instr.value)))
        elif kind is Call:
            self._emit_call(instr, block, index)
        elif kind is RoiBegin:
            code.extend((OP_ROI_BEGIN, instr.roi_id))
        elif kind is RoiEnd:
            code.extend((OP_ROI_END, instr.roi_id))
        elif kind is RoiReset:
            code.extend((OP_ROI_RESET, instr.roi_id))
        elif kind is ProbeAccess:
            code.extend((
                OP_PROBE_ACCESS,
                1 if instr.kind.name == "WRITE" else 0,
                self._slot(instr.ptr), instr.size, tables.var(instr.var),
                -1 if instr.count is None else self._slot(instr.count),
                instr.stride, tables.loc(instr.loc),
                -1 if instr.site_id is None else instr.site_id,
            ))
        elif kind is ProbeClassify:
            code.extend((
                OP_PROBE_CLASSIFY, tables.string(instr.states),
                self._slot(instr.ptr), instr.size, tables.var(instr.var),
                -1 if instr.count is None else self._slot(instr.count),
                instr.stride, tables.loc(instr.loc),
                -1 if instr.roi_id is None else instr.roi_id,
                -1 if instr.site_id is None else instr.site_id,
            ))
        elif kind is ProbeStatic:
            code.extend((OP_PROBE_STATIC, self._slot(instr.ptr),
                         instr.roi_id, instr.fact_index))
        elif kind is ProbeEscape:
            code.extend((OP_PROBE_ESCAPE, self._slot(instr.value),
                         self._slot(instr.ptr), tables.loc(instr.loc)))
        elif kind is OmpRegionBegin:
            code.extend((OP_OMP_BEGIN, tables.string(instr.kind),
                         instr.region_id))
        elif kind is OmpRegionEnd:
            code.extend((OP_OMP_END, tables.string(instr.kind),
                         instr.region_id))
        elif kind is OmpBarrier:
            code.append(OP_OMP_BARRIER)
        elif kind is Phi:
            raise BytecodeError(
                f"phi after non-phi in block {block.label} of "
                f"{self.function.name}"
            )
        else:
            raise BytecodeError(f"cannot lower {instr!r}")

    def _emit_call(self, instr: Call, block: Block, index: int) -> None:
        code = self.code
        dst = -1 if instr.result is None else self._slot(instr.result)
        pin = 1 if instr.pin_gated else 0
        args = [self._slot(a) for a in instr.args]
        # The tree-walk reports a builtin's allocation site as the source
        # location of the *next* instruction (frame.index has already
        # advanced when the builtin asks).  A Call is never a terminator,
        # so that instruction always exists; bake its loc in.
        alloc_loc = self.tables.loc(block.instrs[index + 1].loc)
        if isinstance(instr.callee, FunctionRef):
            name = instr.callee.name
            if name in BUILTINS:
                code.extend((OP_CALL_BUILTIN,
                             list(BUILTINS).index(name), dst, pin,
                             alloc_loc, len(args)))
                code.extend(args)
            elif name in self.module.functions:
                code.extend((OP_CALL,
                             list(self.module.functions).index(name), dst,
                             pin, len(args)))
                code.extend(args)
            else:
                code.extend((OP_CALL_MISSING, self.tables.string(name),
                             len(args)))
                code.extend(args)
        else:
            code.extend((OP_CALL_IND, self._slot(instr.callee), dst, pin,
                         alloc_loc, len(args)))
            code.extend(args)

    def lower(self) -> BytecodeFunction:
        function = self.function
        self._collect()
        code = self.code
        for block in function.blocks:
            if not block.is_terminated:
                raise BytecodeError(
                    f"unterminated block {block.label} in {function.name}")
            head = 0
            while (head < len(block.instrs)
                   and type(block.instrs[head]) is Phi):
                head += 1
            self.head_phis[id(block)] = block.instrs[:head]  # type: ignore
            self.block_pc[id(block)] = len(code)
            # Fusion never crosses a block boundary: the successor's first
            # instruction is a branch target (block_pc points at it).
            self._prev = None
            for index in range(head, len(block.instrs)):
                self._emit_instr(block.instrs[index], block, index)
        if self.head_phis[id(function.entry)]:
            raise BytecodeError(
                f"entry block of {function.name} has phis")
        # One OP_PHI trampoline per (pred, succ-with-phis) edge, emitted in
        # first-use order: read all incomings, write all results, enter the
        # successor body.  This is the tree-walk's atomic phi-run without
        # any runtime prev_block bookkeeping.
        edge_pc: Dict[Tuple[int, int], int] = {}
        for _, pred, succ in self.fixups:
            key = (id(pred), id(succ))
            if not self.head_phis[id(succ)] or key in edge_pc:
                continue
            edge_pc[key] = len(code)
            phis = self.head_phis[id(succ)]
            code.extend((OP_PHI, len(phis), self.block_pc[id(succ)]))
            for phi in phis:
                incoming = phi.incomings.get(pred)
                if incoming is None:
                    raise BytecodeError(
                        f"phi {phi.result.name} in {succ.label} has no "
                        f"incoming for predecessor {pred.label}"
                    )
                code.append(self._slot(incoming))
                code.append(self._slot(phi.result))
        for at, pred, succ in self.fixups:
            target = edge_pc.get((id(pred), id(succ)))
            code[at] = self.block_pc[id(succ)] if target is None else target
        return BytecodeFunction(
            name=function.name,
            code=array("q", code),
            consts=self.consts,
            n_args=self.n_args,
            n_regs=len(self.consts) + self.n_args + len(self._temp_slots),
            entry_pc=self.block_pc[id(function.entry)],
            instrumented=not function.conventionally_optimized,
        )


def lower_module(module: Module) -> BytecodeModule:
    """Lower every function of ``module`` to register bytecode."""
    bc = BytecodeModule(module.name)
    tables = _SideTables()
    for gvar in module.globals.values():
        if gvar.init is None:
            kind: str = "none"
            init = None
        elif isinstance(gvar.init, str):
            kind, init = "str", gvar.init
        elif isinstance(gvar.ty, ct.FloatType):
            kind, init = "float", float(gvar.init)
        else:
            kind, init = "int", int(gvar.init)
        bc.globals.append(GlobalInit(
            gvar.name, gvar.ty.size(), tables.var(gvar.var), kind, init,
        ))
    fusion_stats = {"cmp_br": 0, "load_bin": 0, "bin_store": 0,
                    "probe_access": 0}
    pair_counts: Dict[str, int] = {}
    for name, function in module.functions.items():
        bc.functions[name] = _FunctionLowering(
            function, tables, module, fusion_stats, pair_counts).lower()
        bc.function_order.append(name)
    bc.builtin_order = list(BUILTINS)
    bc.var_table = tables.var_list
    bc.loc_table = tables.loc_list
    bc.string_table = tables.string_list
    bc.fusion_stats = fusion_stats
    bc.pair_counts = pair_counts
    return bc
