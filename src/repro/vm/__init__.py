"""MiniC virtual machine: memory model, execution engines, cost model.

Two engines execute verified IR behind one ``run_module`` entry point:
the register-bytecode dispatch loop (:mod:`repro.vm.bcinterp`, lowered
by :mod:`repro.vm.codegen`) and the IR tree-walk
(:mod:`repro.vm.interpreter`), which serves as the differential oracle.
Both are held to identical results, costs, and profiles.
"""

from repro.vm.bcinterp import BytecodeInterpreter
from repro.vm.bytecode import (
    BytecodeError,
    BytecodeFunction,
    BytecodeModule,
    BytecodeSerializeError,
    bytecode_digest,
    deserialize_bytecode,
    serialize_bytecode,
)
from repro.vm.codegen import lower_module
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.interpreter import Interpreter, RunResult, run_module
from repro.vm.memory import Memory, MemoryObject

__all__ = [
    "BytecodeError",
    "BytecodeFunction",
    "BytecodeInterpreter",
    "BytecodeModule",
    "BytecodeSerializeError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ExecutionHooks",
    "Interpreter",
    "RunResult",
    "bytecode_digest",
    "deserialize_bytecode",
    "lower_module",
    "run_module",
    "serialize_bytecode",
    "Memory",
    "MemoryObject",
]
