"""MiniC virtual machine: memory model, interpreter, cost model, hooks."""

from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.interpreter import Interpreter, RunResult, run_module
from repro.vm.memory import Memory, MemoryObject

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ExecutionHooks",
    "Interpreter",
    "RunResult",
    "run_module",
    "Memory",
    "MemoryObject",
]
