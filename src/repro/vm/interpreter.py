"""The MiniC virtual machine.

Executes IR modules with an explicit frame stack (no Python recursion), a
deterministic cost model, and pluggable :class:`ExecutionHooks` through
which the CARMOT runtime observes ROI markers, instrumentation probes,
allocations, and Pin-traced builtin accesses.

The VM itself is profiling-agnostic: running a module with the default
hooks gives the *baseline* execution whose cost is the denominator of every
overhead figure in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import BudgetExceeded, TrapError, VMError
from repro.resilience.budgets import ExecutionBudgets
from repro.lang import types as ct
from repro.ir.instructions import (
    AccessKind,
    AddrOffset,
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Instr,
    Jump,
    Load,
    OmpBarrier,
    OmpRegionBegin,
    OmpRegionEnd,
    Phi,
    ProbeAccess,
    ProbeClassify,
    ProbeEscape,
    ProbeStatic,
    Ret,
    RoiBegin,
    RoiEnd,
    RoiReset,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.values import Const, FunctionRef, GlobalRef, Temp, Value
from repro.builtins_spec import BUILTINS
from repro.vm.builtins import BUILTIN_IMPLS, Xorshift64
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.memory import FUNC_PTR_BASE, Memory, MemoryObject


@dataclass
class RunResult:
    """Outcome of one program execution."""

    return_value: object
    cost: int
    baseline_cost: int
    instructions: int
    output: List[str]
    access_counts: Dict[str, int]
    leaked_bytes: int

    @property
    def overhead(self) -> float:
        """Cost relative to an uninstrumented run of the same module."""
        if self.baseline_cost <= 0:
            return 1.0
        return self.cost / self.baseline_cost


class _Frame:
    __slots__ = ("function", "block", "index", "temps", "stack_objects",
                 "result_temp", "prev_block")

    def __init__(self, function: Function, result_temp: Optional[Temp]) -> None:
        self.function = function
        self.block = function.entry
        self.index = 0
        self.temps: Dict[str, object] = {}
        self.stack_objects: List[MemoryObject] = []
        self.result_temp = result_temp
        self.prev_block = None


class Interpreter:
    """Executes one module.  Create a fresh interpreter per run."""

    def __init__(
        self,
        module: Module,
        hooks: Optional[ExecutionHooks] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 2_000_000_000,
        budgets: Optional[ExecutionBudgets] = None,
        trace_stream=None,
    ) -> None:
        self.module = module
        self.hooks = hooks or ExecutionHooks()
        self.cost_model = cost_model
        self.max_instructions = max_instructions
        #: Execution guards: a misbehaving program trips a
        #: :class:`BudgetExceeded` (a TrapError the profiler can catch)
        #: instead of exhausting host memory or Python recursion.
        self.budgets = budgets
        self.max_recursion_depth = 0
        self.memory = Memory()
        if budgets is not None:
            if budgets.max_steps:
                self.max_instructions = budgets.max_steps
            self.max_recursion_depth = budgets.max_recursion_depth
            self.memory.heap_limit = budgets.max_heap_bytes
        self.rng = Xorshift64()
        self.output: List[str] = []
        self.cost = 0
        self.instructions = 0
        self.access_counts = {"var": 0, "mem": 0}
        self.call_stack: List[str] = []
        self.roi_depth = 0
        self._pin_active = False
        self._frames: List[_Frame] = []
        self._globals_addr: Dict[str, int] = {}
        self._func_addrs: Dict[str, int] = {}
        self._funcs_by_addr: Dict[int, str] = {}
        self._return_value: object = None
        #: Optional per-instruction execution trace (``--trace``).
        self.trace_stream = trace_stream
        self._trace_lines = False
        self.line_costs: Dict[Tuple[str, int], int] = {}
        setattr(self.hooks, "vm", self)
        self._init_globals()
        self._init_function_table()

    # -- setup -------------------------------------------------------------

    def _init_globals(self) -> None:
        for gvar in self.module.globals.values():
            obj = self.memory.allocate(
                gvar.ty.size(), "global", var=gvar.var, callstack=("<static>",)
            )
            self._globals_addr[gvar.name] = obj.base
            if gvar.init is None:
                continue
            if isinstance(gvar.init, str):
                payload = gvar.init.encode("utf-8") + b"\0"
                self.memory.write_bytes(obj.base, payload)
            elif isinstance(gvar.ty, ct.FloatType):
                self.memory.write_scalar(obj.base, float(gvar.init), ct.FLOAT)
            else:
                self.memory.write_scalar(obj.base, int(gvar.init), ct.INT)

    def _init_function_table(self) -> None:
        names = list(self.module.functions) + list(BUILTINS)
        for index, name in enumerate(names):
            addr = FUNC_PTR_BASE + index
            self._func_addrs[name] = addr
            self._funcs_by_addr[addr] = name

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main", args: Tuple = ()) -> RunResult:
        if entry not in self.module.functions:
            raise VMError(f"no function named {entry!r}")
        function = self.module.functions[entry]
        frame = _Frame(function, None)
        for index, value in enumerate(args):
            frame.temps[f"arg{index}"] = value
        self._frames.append(frame)
        self.call_stack.append(entry)
        self._execute()
        self.hooks.finish()
        return RunResult(
            return_value=self._return_value,
            cost=self.cost,
            baseline_cost=self.cost,  # overwritten by harnesses that know it
            instructions=self.instructions,
            output=self.output,
            access_counts=dict(self.access_counts),
            leaked_bytes=self.memory.leaked_bytes,
        )

    # -- helpers used by builtins ------------------------------------------------

    def heap_alloc(self, size: int) -> MemoryObject:
        obj = self.memory.allocate(
            size, "heap", callstack=tuple(self.call_stack),
            loc=self._current_loc(),
        )
        self.cost += self.hooks.on_alloc(obj)
        return obj

    def heap_free(self, addr: int) -> None:
        if addr == 0:
            return
        obj = self.memory.free(addr)
        self.cost += self.hooks.on_free(obj)

    def native_read(self, addr: int, size: int) -> bytes:
        if self._pin_active and size > 0:
            self.cost += self.hooks.on_pin_access(AccessKind.READ, addr, size)
        return self.memory.read_bytes(addr, size)

    def native_write(self, addr: int, payload: bytes) -> None:
        if self._pin_active and payload:
            self.cost += self.hooks.on_pin_access(
                AccessKind.WRITE, addr, len(payload)
            )
        self.memory.write_bytes(addr, payload)

    def charge_bytes(self, count: int) -> None:
        self.cost += int(count * self.cost_model.builtin_per_byte)

    def reseed(self, seed: int) -> None:
        self.rng = Xorshift64(seed or 1)

    def _current_loc(self):
        frame = self._frames[-1] if self._frames else None
        if frame and frame.index < len(frame.block.instrs):
            return frame.block.instrs[frame.index].loc
        return None

    # -- main loop ------------------------------------------------------------------

    def enable_line_tracing(self) -> None:
        """Attribute cost per source line (used by the Figure 6 profiler)."""
        self._trace_lines = True

    def _execute(self) -> None:
        cm = self.cost_model
        trace = self._trace_lines
        trace_stream = self.trace_stream
        line_costs = self.line_costs
        while self._frames:
            frame = self._frames[-1]
            instr = frame.block.instrs[frame.index]
            frame.index += 1
            self.instructions += 1
            self.memory.clock = self.instructions
            if self.instructions > self.max_instructions:
                raise BudgetExceeded("instruction budget exceeded")
            if trace_stream is not None:
                print(
                    f"trace: [{self.instructions}] "
                    f"{frame.function.name}:{frame.block.label} {instr}",
                    file=trace_stream,
                )
            cost_before = self.cost if trace else 0
            kind = type(instr)
            if kind is Load:
                self._exec_load(frame, instr, cm)
            elif kind is Store:
                self._exec_store(frame, instr, cm)
            elif kind is BinOp:
                self._exec_binop(frame, instr, cm)
            elif kind is AddrOffset:
                base = self._value(frame, instr.base)
                index = self._value(frame, instr.index)
                frame.temps[instr.result.name] = (
                    int(base) + int(index) * instr.scale + instr.offset
                )
                self.cost += cm.addr
            elif kind is Branch:
                cond = self._value(frame, instr.cond)
                target = instr.if_true if cond != 0 else instr.if_false
                frame.prev_block = frame.block
                frame.block = target
                frame.index = 0
                self.cost += cm.branch
            elif kind is Jump:
                frame.prev_block = frame.block
                frame.block = instr.target
                frame.index = 0
                self.cost += cm.branch
            elif kind is Phi:
                # All phis at a block head read their inputs atomically
                # against the predecessor's values.
                block = frame.block
                run_end = frame.index
                while (run_end < len(block.instrs)
                       and type(block.instrs[run_end]) is Phi):
                    run_end += 1
                phis = block.instrs[frame.index - 1:run_end]
                values = [
                    self._value(frame, p.incomings[frame.prev_block])
                    for p in phis
                ]
                for phi, value in zip(phis, values):
                    frame.temps[phi.result.name] = value
                frame.index = run_end
                self.instructions += len(phis) - 1
                self.cost += cm.arith * len(phis)
            elif kind is Call:
                self._exec_call(frame, instr, cm)
            elif kind is Ret:
                self._exec_ret(frame, instr, cm)
            elif kind is Alloca:
                self._exec_alloca(frame, instr, cm)
            elif kind is Cast:
                self._exec_cast(frame, instr, cm)
            elif kind is RoiBegin:
                self.roi_depth += 1
                self.cost += cm.roi_marker + self.hooks.on_roi_begin(instr.roi_id)
            elif kind is RoiEnd:
                self.roi_depth -= 1
                self.cost += cm.roi_marker + self.hooks.on_roi_end(instr.roi_id)
            elif kind is RoiReset:
                self.cost += cm.roi_marker + self.hooks.on_roi_reset(
                    instr.roi_id)
            elif kind is ProbeAccess:
                addr = int(self._value(frame, instr.ptr))
                count = 1 if instr.count is None else int(
                    self._value(frame, instr.count)
                )
                self.cost += self.hooks.on_probe_access(
                    instr.kind, addr, instr.size, instr.var, count,
                    instr.stride, instr.loc, tuple(self.call_stack),
                    instr.site_id,
                )
            elif kind is ProbeClassify:
                addr = int(self._value(frame, instr.ptr))
                count = 1 if instr.count is None else int(
                    self._value(frame, instr.count)
                )
                self.cost += self.hooks.on_probe_classify(
                    instr.states, addr, instr.size, instr.var, count,
                    instr.stride, instr.loc, instr.roi_id, instr.site_id,
                )
            elif kind is ProbeStatic:
                addr = int(self._value(frame, instr.ptr))
                self.cost += self.hooks.on_probe_static(
                    instr.fact_index, addr, instr.roi_id,
                )
            elif kind is ProbeEscape:
                value = int(self._value(frame, instr.value))
                dest = int(self._value(frame, instr.ptr))
                self.cost += self.hooks.on_probe_escape(value, dest, instr.loc)
            elif kind is OmpRegionBegin:
                self.cost += cm.roi_marker + self.hooks.on_omp_region(
                    instr.kind, instr.region_id, True)
            elif kind is OmpRegionEnd:
                self.cost += cm.roi_marker + self.hooks.on_omp_region(
                    instr.kind, instr.region_id, False)
            elif kind is OmpBarrier:
                self.cost += cm.roi_marker + self.hooks.on_omp_barrier()
            else:
                raise VMError(f"unknown instruction {instr!r}")
            if trace and instr.loc is not None:
                key = (instr.loc.filename, instr.loc.line)
                line_costs[key] = line_costs.get(key, 0) + (
                    self.cost - cost_before
                )

    # -- operand evaluation --------------------------------------------------

    def _value(self, frame: _Frame, value: Value):
        kind = type(value)
        if kind is Temp:
            return frame.temps[value.name]
        if kind is Const:
            return value.value
        if kind is GlobalRef:
            return self._globals_addr[value.name]
        if kind is FunctionRef:
            return self._func_addrs[value.name]
        raise VMError(f"cannot evaluate {value!r}")

    # -- instruction execution ---------------------------------------------------

    def _exec_load(self, frame: _Frame, instr: Load, cm: CostModel) -> None:
        addr = int(self._value(frame, instr.ptr))
        frame.temps[instr.result.name] = self.memory.read_scalar(
            addr, instr.result.ty
        )
        self.access_counts["var" if instr.var is not None else "mem"] += 1
        self.cost += cm.load

    def _exec_store(self, frame: _Frame, instr: Store, cm: CostModel) -> None:
        addr = int(self._value(frame, instr.ptr))
        value = self._value(frame, instr.value)
        ty = instr.ptr.ty.pointee if isinstance(instr.ptr.ty, ct.PointerType) \
            else instr.value.ty
        self.memory.write_scalar(addr, value, ty)
        self.access_counts["var" if instr.var is not None else "mem"] += 1
        self.cost += cm.store

    def _exec_binop(self, frame: _Frame, instr: BinOp, cm: CostModel) -> None:
        lhs = self._value(frame, instr.lhs)
        rhs = self._value(frame, instr.rhs)
        op = instr.op
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op == "div":
            if rhs == 0:
                raise TrapError(f"division by zero at {instr.loc}")
            if isinstance(lhs, float) or isinstance(rhs, float):
                result = lhs / rhs
            else:
                result = abs(lhs) // abs(rhs)
                if (lhs < 0) != (rhs < 0):
                    result = -result
        elif op == "rem":
            if rhs == 0:
                raise TrapError(f"modulo by zero at {instr.loc}")
            quotient = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                quotient = -quotient
            result = lhs - quotient * rhs
        elif op == "eq":
            result = 1 if lhs == rhs else 0
        elif op == "ne":
            result = 1 if lhs != rhs else 0
        elif op == "lt":
            result = 1 if lhs < rhs else 0
        elif op == "le":
            result = 1 if lhs <= rhs else 0
        elif op == "gt":
            result = 1 if lhs > rhs else 0
        elif op == "ge":
            result = 1 if lhs >= rhs else 0
        elif op == "and":
            result = int(lhs) & int(rhs)
        elif op == "or":
            result = int(lhs) | int(rhs)
        elif op == "xor":
            result = int(lhs) ^ int(rhs)
        elif op == "shl":
            result = int(lhs) << (int(rhs) & 63)
        elif op == "shr":
            result = int(lhs) >> (int(rhs) & 63)
        else:
            raise VMError(f"unknown binop {op!r}")
        frame.temps[instr.result.name] = result
        self.cost += cm.arith

    def _exec_cast(self, frame: _Frame, instr: Cast, cm: CostModel) -> None:
        value = self._value(frame, instr.value)
        to = instr.result.ty
        if isinstance(to, ct.FloatType):
            result: object = float(value)
        elif isinstance(to, ct.CharType):
            result = int(value) & 0xFF
        else:
            result = int(value)
        frame.temps[instr.result.name] = result
        self.cost += cm.cast

    def _exec_alloca(self, frame: _Frame, instr: Alloca, cm: CostModel) -> None:
        obj = self.memory.allocate(
            instr.allocated_type.size(),
            "stack",
            var=instr.var,
            loc=instr.loc,
            callstack=tuple(self.call_stack),
        )
        frame.stack_objects.append(obj)
        frame.temps[instr.result.name] = obj.base
        self.cost += cm.alloca
        if instr.var is not None:
            self.cost += self.hooks.on_alloc(obj)

    def _exec_call(self, frame: _Frame, instr: Call, cm: CostModel) -> None:
        callee = instr.callee
        if isinstance(callee, FunctionRef):
            name = callee.name
        else:
            addr = int(self._value(frame, callee))
            if addr not in self._funcs_by_addr:
                raise TrapError(f"call through bad function pointer {addr:#x}")
            name = self._funcs_by_addr[addr]
        args = [self._value(frame, a) for a in instr.args]
        self.cost += cm.call
        if name in BUILTINS:
            self._exec_builtin_call(frame, instr, name, args)
            return
        function = self.module.functions.get(name)
        if function is None:
            raise TrapError(f"call to undefined function {name!r}")
        if instr.pin_gated and self.hooks.wants_pin():
            # A conservatively-gated call toggles the Pintool even though
            # the target turns out to be instrumented code (§4.4.6).
            self.cost += self.hooks.on_pin_attach()
        if (self.max_recursion_depth
                and len(self._frames) >= self.max_recursion_depth):
            raise BudgetExceeded(
                f"recursion depth budget exceeded "
                f"({self.max_recursion_depth} frames) calling {name!r}"
            )
        callee_frame = _Frame(function, instr.result)
        for index, value in enumerate(args):
            callee_frame.temps[f"arg{index}"] = value
        self._frames.append(callee_frame)
        self.call_stack.append(name)
        self.cost += self.hooks.on_call_enter(
            name, not function.conventionally_optimized
        )

    def _exec_builtin_call(
        self, frame: _Frame, instr: Call, name: str, args: List
    ) -> None:
        spec = BUILTINS[name]
        pin_here = instr.pin_gated and self.hooks.wants_pin()
        if pin_here:
            self.cost += self.hooks.on_pin_attach()
            self._pin_active = True
        try:
            result = BUILTIN_IMPLS[name](self, args)
        finally:
            self._pin_active = False
        self.cost += spec.base_cost
        if instr.result is not None:
            frame.temps[instr.result.name] = result

    def _exec_ret(self, frame: _Frame, instr: Ret, cm: CostModel) -> None:
        value = self._value(frame, instr.value) if instr.value is not None else None
        for obj in frame.stack_objects:
            self.memory.release_stack_object(obj)
        self._frames.pop()
        self.call_stack.pop()
        self.cost += cm.ret
        if self._frames:
            self.cost += self.hooks.on_call_exit(frame.function.name)
            caller = self._frames[-1]
            if frame.result_temp is not None:
                caller.temps[frame.result_temp.name] = value
        else:
            self._return_value = value


def run_module(
    module: Module,
    entry: str = "main",
    args: Tuple = (),
    hooks: Optional[ExecutionHooks] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_instructions: int = 2_000_000_000,
    budgets: Optional[ExecutionBudgets] = None,
    vm: str = "bytecode",
    bytecode=None,
    trace_stream=None,
) -> RunResult:
    """Run ``module`` once and return the result.

    ``vm`` selects the execution engine: ``"bytecode"`` (the default)
    lowers the module to register bytecode and runs the flat dispatch
    loop; ``"ir"`` runs the original tree-walk, kept as the differential
    oracle.  Both engines are exactly equivalent — same costs,
    instruction counts, hook sequences, and budget trip points.

    ``bytecode`` optionally supplies an already-lowered
    :class:`~repro.vm.bytecode.BytecodeModule` (e.g. from the session
    artifact cache); otherwise lowering happens on first use and is
    memoized on the module object.
    """
    if vm == "ir":
        interp = Interpreter(module, hooks, cost_model, max_instructions,
                             budgets, trace_stream=trace_stream)
        return interp.run(entry, args)
    if vm != "bytecode":
        raise VMError(f"unknown vm {vm!r}; expected 'bytecode' or 'ir'")
    from repro.vm.bcinterp import BytecodeInterpreter
    from repro.vm.codegen import lower_module

    if bytecode is None:
        bytecode = getattr(module, "_bytecode", None)
        if bytecode is None:
            bytecode = lower_module(module)
            module._bytecode = bytecode
    interp = BytecodeInterpreter(bytecode, hooks, cost_model,
                                 max_instructions, budgets,
                                 trace_stream=trace_stream)
    return interp.run(entry, args)
