"""Deterministic cost model.

The paper measures wall-clock overhead on a Xeon; this reproduction runs on
an interpreter, so time is modelled as *cost units* charged per executed IR
instruction and per instrumentation/runtime action.  Overheads are reported
as ratios (instrumented cost / baseline cost), which is what Figures 7, 10,
and 11 plot — the *relative* landscape is what the cost model must preserve,
and it does so structurally: the optimizations of §4.4/§4.5 remove whole
classes of charged events rather than tweaking constants.

The constants below are loosely calibrated against the magnitudes the paper
reports: compiler-injected probe pushes cost ~1 order of magnitude more than
an arithmetic instruction, callstack materialization is expensive and
per-frame, and Pin-style dynamic binary instrumentation costs ~2 orders of
magnitude per traced access (DBI dispatch + context switch into the tool).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """All charge constants, in abstract cost units (≈ cycles)."""

    # Plain execution.
    arith: int = 1
    load: int = 2
    store: int = 2
    addr: int = 1
    cast: int = 1
    branch: int = 1
    call: int = 5
    ret: int = 2
    alloca: int = 1
    roi_marker: int = 1

    # Compiler-injected instrumentation (runtime batch push; the FSA work
    # itself runs on the runtime's worker pipeline and is overlapped, §4.6).
    probe_push: int = 14
    #: Use-callstack capture per access (Table 1), "a very costly
    #: operation" (§5.3).  The naive runtime *walks* the stack at every
    #: recorded use; CARMOT's co-designed runtime maintains a shadow stack
    #: at call boundaries and captures by reference.
    use_callstack_walk: int = 450
    use_callstack_shadow: int = 6
    shadow_stack_maintain: int = 2  # per call enter/exit, CARMOT only
    #: Per-event FSA/table work executed *inline on the main thread* when
    #: the batching pipeline of §4.6 is absent (the naive runtime).
    inline_process: int = 90
    #: Capturing one allocation callstack (naive: a stack walk at every
    #: allocation; clustered: once per function invocation, §4.4.7).
    callstack_capture_base: int = 40
    callstack_capture_per_frame: int = 12
    #: Cheap allocation event once the callstack is shared (clustered).
    alloc_event: int = 10
    #: Escape (pointer-store) event for the Reachability Graph.
    escape_event: int = 12
    #: Aggregated range probe (opt 2): one push covers a whole range.
    aggregate_probe: int = 22
    #: One-off classification probe (opt 3).
    classify_probe: int = 14

    # Pin (dynamic binary instrumentation, §4.5).
    pin_attach: int = 150
    pin_per_access: int = 120

    #: Builtin per-byte cost for memory routines (memcpy etc.).
    builtin_per_byte: float = 0.25


DEFAULT_COST_MODEL = CostModel()
