"""Native implementations of the MiniC builtins.

These are the "precompiled libraries" of the paper: their internals are not
visible to the CARMOT compiler, so any PSE accesses they perform can only be
observed through the Pintool stand-in.  Implementations therefore route all
program-memory traffic through ``vm.native_read`` / ``vm.native_write``,
which report to the Pin hook when tracing is active (§4.5).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.errors import TrapError
from repro.lang import types as ct

_INT8 = 8


class Xorshift64:
    """Deterministic PRNG backing ``rand_int``/``rand_float``."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self.state = seed or 1

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self.state = x
        return x


def _malloc(vm, args: List) -> int:
    return vm.heap_alloc(int(args[0])).base


def _calloc(vm, args: List) -> int:
    return vm.heap_alloc(int(args[0]) * int(args[1])).base


def _free(vm, args: List) -> None:
    vm.heap_free(int(args[0]))


def _memcpy(vm, args: List) -> None:
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    payload = vm.native_read(src, n)
    vm.native_write(dst, payload)
    vm.charge_bytes(n)


def _memmove(vm, args: List) -> None:
    _memcpy(vm, args)


def _memset(vm, args: List) -> None:
    dst, byte, n = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    vm.native_write(dst, bytes([byte]) * n)
    vm.charge_bytes(n)


def _qsort_int(vm, args: List) -> None:
    base, n = int(args[0]), int(args[1])
    raw = vm.native_read(base, n * _INT8)
    values = [
        int.from_bytes(raw[i * _INT8 : (i + 1) * _INT8], "little", signed=True)
        for i in range(n)
    ]
    values.sort()
    out = b"".join(v.to_bytes(_INT8, "little", signed=True) for v in values)
    vm.native_write(base, out)
    vm.charge_bytes(2 * n * _INT8)


def _sum_float_array(vm, args: List) -> float:
    base, n = int(args[0]), int(args[1])
    import struct

    raw = vm.native_read(base, n * _INT8)
    vm.charge_bytes(n * _INT8)
    return math.fsum(struct.unpack(f"<{n}d", raw)) if n else 0.0


def _strlen(vm, args: List) -> int:
    addr = int(args[0])
    length = 0
    while True:
        byte = vm.native_read(addr + length, 1)
        if byte == b"\0":
            return length
        length += 1
        if length > 1 << 20:
            raise TrapError("unterminated string passed to strlen")


def _print_str(vm, args: List) -> None:
    length = _strlen(vm, [args[0]])
    text = vm.native_read(int(args[0]), length).decode("utf-8", "replace")
    vm.output.append(text)


def _guard_div(x: float) -> float:
    if x == 0:
        raise TrapError("math domain error: division by zero argument")
    return x


BUILTIN_IMPLS: Dict[str, Callable] = {
    "malloc": _malloc,
    "calloc": _calloc,
    "free": _free,
    "memcpy": _memcpy,
    "memmove": _memmove,
    "memset": _memset,
    "qsort_int": _qsort_int,
    "sum_float_array": _sum_float_array,
    "strlen": _strlen,
    "print_str": _print_str,
    "sqrt": lambda vm, a: math.sqrt(a[0]) if a[0] >= 0 else 0.0,
    "exp": lambda vm, a: math.exp(min(a[0], 700.0)),
    "log": lambda vm, a: math.log(a[0]) if a[0] > 0 else -1e308,
    "sin": lambda vm, a: math.sin(a[0]),
    "cos": lambda vm, a: math.cos(a[0]),
    "pow": lambda vm, a: _safe_pow(a[0], a[1]),
    "fabs": lambda vm, a: abs(float(a[0])),
    "floor": lambda vm, a: float(math.floor(a[0])),
    "fmin": lambda vm, a: min(float(a[0]), float(a[1])),
    "fmax": lambda vm, a: max(float(a[0]), float(a[1])),
    "abs": lambda vm, a: abs(int(a[0])),
    "imin": lambda vm, a: min(int(a[0]), int(a[1])),
    "imax": lambda vm, a: max(int(a[0]), int(a[1])),
    "float_of_int": lambda vm, a: float(a[0]),
    "int_of_float": lambda vm, a: int(a[0]),
    "rand_seed": lambda vm, a: vm.reseed(int(a[0])),
    "rand_int": lambda vm, a: vm.rng.next() % max(int(a[0]), 1),
    "rand_float": lambda vm, a: (vm.rng.next() >> 11) / float(1 << 53),
    "print_int": lambda vm, a: vm.output.append(str(int(a[0]))),
    "print_float": lambda vm, a: vm.output.append(f"{a[0]:.6f}"),
}


def _safe_pow(base: float, exponent: float) -> float:
    try:
        result = math.pow(base, exponent)
    except (OverflowError, ValueError):
        return 0.0
    if math.isinf(result) or math.isnan(result):
        return 0.0
    return result
