"""The bytecode dispatch engine.

Executes a lowered :class:`~repro.vm.bytecode.BytecodeModule` with a flat
while-loop over the ``array('q')`` code stream: integer opcodes, operand
slots into a per-frame register list, and pre-resolved branch/call targets.
Exactly the same observable semantics as the tree-walk
:class:`~repro.vm.interpreter.Interpreter` — same cost model charges, same
instruction counting (and therefore identical ``BudgetExceeded`` trip
points), same :class:`~repro.vm.hooks.ExecutionHooks` call sequence with
the same arguments, same trap messages — just without per-step object
inspection.  ``tests/property/test_vm_equivalence.py`` holds the two
engines equal instruction-for-instruction.

Hot-loop discipline: ``instructions``/``cost`` live in locals and are
spilled to the interpreter attributes

- before every hook invocation (hooks read ``vm.instructions`` as event
  time and may read ``vm.cost``),
- around builtin calls (builtin impls *mutate* ``vm.cost`` through
  ``charge_bytes``/``heap_alloc``, so the local is reloaded after), and
- unconditionally in a ``finally`` so trap/budget exits leave the same
  state the tree-walk leaves.

``memory.clock`` is only ever read inside ``allocate``/``free``/
``release_stack_object``, so instead of the tree-walk's per-step store it
is refreshed exactly at the opcodes that can reach those: ``OP_ALLOCA``,
``OP_RET``, and the builtin-call opcodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.builtins_spec import BUILTINS
from repro.errors import BudgetExceeded, TrapError, VMError
from repro.resilience.budgets import ExecutionBudgets
from repro.lang import types as ct
from repro.ir.instructions import AccessKind
from repro.vm.builtins import BUILTIN_IMPLS, Xorshift64
from repro.vm.bytecode import (
    BytecodeFunction,
    BytecodeModule,
    OPCODE_NAMES,
    OP_ADD,
    OP_ADDR,
    OP_ALLOCA,
    OP_AND,
    OP_BR,
    OP_CALL,
    OP_CALL_BUILTIN,
    OP_CALL_IND,
    OP_CALL_MISSING,
    OP_CAST,
    OP_DIV,
    OP_EQ,
    OP_GE,
    OP_GT,
    OP_JUMP,
    OP_LE,
    OP_LOAD,
    OP_LT,
    OP_MUL,
    OP_NE,
    OP_OMP_BARRIER,
    OP_OMP_BEGIN,
    OP_OMP_END,
    OP_OR,
    OP_PHI,
    OP_PROBE_ACCESS,
    OP_PROBE_CLASSIFY,
    OP_PROBE_ESCAPE,
    OP_PROBE_STATIC,
    OP_REM,
    OP_RET,
    OP_ROI_BEGIN,
    OP_ROI_END,
    OP_ROI_RESET,
    OP_SHL,
    OP_SHR,
    OP_STORE,
    OP_SUB,
    OP_XOR,
    TY_CHAR,
    TY_FLOAT,
)
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.interpreter import RunResult
from repro.vm.memory import FUNC_PTR_BASE, Memory, MemoryObject


class BytecodeInterpreter:
    """Executes one bytecode module.  Create a fresh engine per run."""

    def __init__(
        self,
        bytecode: BytecodeModule,
        hooks: Optional[ExecutionHooks] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 2_000_000_000,
        budgets: Optional[ExecutionBudgets] = None,
        trace_stream=None,
    ) -> None:
        self.bytecode = bytecode
        self.hooks = hooks or ExecutionHooks()
        self.cost_model = cost_model
        self.max_instructions = max_instructions
        self.budgets = budgets
        self.max_recursion_depth = 0
        self.memory = Memory()
        if budgets is not None:
            if budgets.max_steps:
                self.max_instructions = budgets.max_steps
            self.max_recursion_depth = budgets.max_recursion_depth
            self.memory.heap_limit = budgets.max_heap_bytes
        self.rng = Xorshift64()
        self.output: List[str] = []
        self.cost = 0
        self.instructions = 0
        self.access_counts = {"var": 0, "mem": 0}
        self.call_stack: List[str] = []
        self.roi_depth = 0
        self._pin_active = False
        self._return_value: object = None
        #: Allocation-site loc for builtins that heap-allocate, baked into
        #: the call opcode (mirrors the tree-walk's ``_current_loc``).
        self._alloc_loc = None
        self.trace_stream = trace_stream
        #: Parity attribute; per-line cost attribution is an IR-walk-only
        #: feature (the Figure 6 profiler drives the tree-walk directly).
        self.line_costs = {}
        self._globals_addr = {}
        setattr(self.hooks, "vm", self)
        self._link()

    # -- setup -------------------------------------------------------------

    def _init_globals(self) -> None:
        for gvar in self.bytecode.globals:
            var = (self.bytecode.var_table[gvar.var_index]
                   if gvar.var_index >= 0 else None)
            obj = self.memory.allocate(
                gvar.size, "global", var=var, callstack=("<static>",)
            )
            self._globals_addr[gvar.name] = obj.base
            if gvar.init_kind == "str":
                payload = gvar.init.encode("utf-8") + b"\0"
                self.memory.write_bytes(obj.base, payload)
            elif gvar.init_kind == "float":
                self.memory.write_scalar(obj.base, float(gvar.init), ct.FLOAT)
            elif gvar.init_kind == "int":
                self.memory.write_scalar(obj.base, int(gvar.init), ct.INT)

    def _link(self) -> None:
        """Allocate globals for this run and (once per module) resolve
        const pools, call targets, and function addresses.

        Global and function addresses are bump-allocated deterministically
        from the module's own tables, so the resolved frame prototypes and
        address maps are cached on the :class:`BytecodeModule` and shared
        by every interpreter over it.
        """
        bc = self.bytecode
        self._init_globals()
        if bc._linked is None:
            func_addrs = {}
            funcs_by_addr = {}
            names = list(bc.function_order) + list(bc.builtin_order)
            for index, name in enumerate(names):
                addr = FUNC_PTR_BASE + index
                func_addrs[name] = addr
                funcs_by_addr[addr] = name
            linked_builtins = []
            for name in bc.builtin_order:
                spec = BUILTINS.get(name)
                impl = BUILTIN_IMPLS.get(name)
                if spec is None or impl is None:
                    raise VMError(
                        f"bytecode references unknown builtin {name!r}")
                linked_builtins.append((name, impl, spec.base_cost))
            # Indirect-call resolution mirrors the tree-walk: address ->
            # name, then builtins shadow module functions of the same name.
            addr_targets = {}
            for addr, name in funcs_by_addr.items():
                if name in BUILTINS:
                    addr_targets[addr] = (
                        True,
                        (name, BUILTIN_IMPLS[name], BUILTINS[name].base_cost),
                    )
                else:
                    addr_targets[addr] = (False, bc.functions[name])
            for name in bc.function_order:
                fn = bc.functions[name]
                resolved: List[object] = []
                for tag, payload in fn.consts:
                    if tag == "v":
                        resolved.append(payload)
                    elif tag == "g":
                        addr = self._globals_addr.get(payload)
                        if addr is None:
                            raise VMError(
                                f"bytecode references undefined global "
                                f"{payload!r}")
                        resolved.append(addr)
                    else:
                        addr = func_addrs.get(payload)
                        if addr is None:
                            raise VMError(
                                f"bytecode references undefined function "
                                f"{payload!r}")
                        resolved.append(addr)
                fn.proto = resolved + [None] * (fn.n_regs - len(resolved))
            bc._linked = (func_addrs, funcs_by_addr, linked_builtins,
                          addr_targets)
        (self._func_addrs, self._funcs_by_addr, self._linked_builtins,
         self._addr_targets) = bc._linked
        self._linked_functions = [bc.functions[name]
                                  for name in bc.function_order]

    # -- public API --------------------------------------------------------

    def run(self, entry: str = "main", args: Tuple = ()) -> RunResult:
        fn = self.bytecode.functions.get(entry)
        if fn is None:
            raise VMError(f"no function named {entry!r}")
        regs = fn.proto.copy()
        arg_base = fn.arg_base
        for index, value in enumerate(args):
            if index < fn.n_args:
                regs[arg_base + index] = value
        self.call_stack.append(entry)
        self._execute(fn, regs)
        self.hooks.finish()
        return RunResult(
            return_value=self._return_value,
            cost=self.cost,
            baseline_cost=self.cost,  # overwritten by harnesses that know it
            instructions=self.instructions,
            output=self.output,
            access_counts=dict(self.access_counts),
            leaked_bytes=self.memory.leaked_bytes,
        )

    # -- helpers used by builtins ------------------------------------------

    def heap_alloc(self, size: int) -> MemoryObject:
        obj = self.memory.allocate(
            size, "heap", callstack=tuple(self.call_stack),
            loc=self._alloc_loc,
        )
        self.cost += self.hooks.on_alloc(obj)
        return obj

    def heap_free(self, addr: int) -> None:
        if addr == 0:
            return
        obj = self.memory.free(addr)
        self.cost += self.hooks.on_free(obj)

    def native_read(self, addr: int, size: int) -> bytes:
        if self._pin_active and size > 0:
            self.cost += self.hooks.on_pin_access(AccessKind.READ, addr, size)
        return self.memory.read_bytes(addr, size)

    def native_write(self, addr: int, payload: bytes) -> None:
        if self._pin_active and payload:
            self.cost += self.hooks.on_pin_access(
                AccessKind.WRITE, addr, len(payload)
            )
        self.memory.write_bytes(addr, payload)

    def charge_bytes(self, count: int) -> None:
        self.cost += int(count * self.cost_model.builtin_per_byte)

    def reseed(self, seed: int) -> None:
        self.rng = Xorshift64(seed or 1)

    def _current_loc(self):
        return self._alloc_loc

    # -- main loop ---------------------------------------------------------

    def _execute(self, fn: BytecodeFunction, regs: list) -> None:
        memory = self.memory
        hooks = self.hooks
        cm = self.cost_model
        call_stack = self.call_stack
        read_scalar = memory.read_scalar
        write_scalar = memory.write_scalar
        max_instructions = self.max_instructions
        max_depth = self.max_recursion_depth
        bc = self.bytecode
        loc_table = bc.loc_table
        var_table = bc.var_table
        str_table = bc.string_table
        linked_fns = self._linked_functions
        linked_builtins = self._linked_builtins
        addr_targets = self._addr_targets
        trace = self.trace_stream
        arith = cm.arith
        load_cost = cm.load
        store_cost = cm.store
        addr_cost = cm.addr
        branch_cost = cm.branch
        cast_cost = cm.cast
        call_cost = cm.call
        ret_cost = cm.ret
        alloca_cost = cm.alloca
        roi_cost = cm.roi_marker
        ty_objs = (ct.INT, ct.FLOAT, ct.CHAR)  # indexed by TY_* codes
        kind_objs = (AccessKind.READ, AccessKind.WRITE)
        code = fn.code
        pc = fn.entry_pc
        cs = tuple(call_stack)
        frames: List[tuple] = []  # suspended callers
        stack_objects: List[MemoryObject] = []
        ic = self.instructions
        cost = self.cost
        var_accesses = 0
        mem_accesses = 0
        try:
            while True:
                op = code[pc]
                ic += 1
                if ic > max_instructions:
                    raise BudgetExceeded("instruction budget exceeded")
                if trace is not None:
                    print(f"trace: [{ic}] {fn.name}+{pc} {OPCODE_NAMES[op]}",
                          file=trace)
                # Three-way dispatch tree, hot paths shallow: arithmetic
                # first (the binops occupy the top of the original opcode
                # range, so a single compare guards them), then the
                # memory/control group, then calls/probes/markers.
                # Opcodes appended above the binops land in the first
                # arm's else — rare ones only, the hot guard stays one
                # compare.
                if op >= OP_ADD:
                    if op == OP_ADD:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] + regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_SUB:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] - regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_MUL:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] * regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_LT:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] < regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_DIV:
                        lhs = regs[code[pc + 2]]
                        rhs = regs[code[pc + 3]]
                        if rhs == 0:
                            loc_index = code[pc + 4]
                            loc = (loc_table[loc_index]
                                   if loc_index >= 0 else None)
                            raise TrapError(f"division by zero at {loc}")
                        if isinstance(lhs, float) or isinstance(rhs, float):
                            result = lhs / rhs
                        else:
                            result = abs(lhs) // abs(rhs)
                            if (lhs < 0) != (rhs < 0):
                                result = -result
                        regs[code[pc + 1]] = result
                        cost += arith
                        pc += 5
                    elif op == OP_LE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] <= regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_GT:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] > regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_GE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] >= regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_EQ:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] == regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_NE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] != regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_REM:
                        lhs = regs[code[pc + 2]]
                        rhs = regs[code[pc + 3]]
                        if rhs == 0:
                            loc_index = code[pc + 4]
                            loc = (loc_table[loc_index]
                                   if loc_index >= 0 else None)
                            raise TrapError(f"modulo by zero at {loc}")
                        quotient = abs(lhs) // abs(rhs)
                        if (lhs < 0) != (rhs < 0):
                            quotient = -quotient
                        regs[code[pc + 1]] = lhs - quotient * rhs
                        cost += arith
                        pc += 5
                    elif op == OP_AND:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]]) & int(regs[code[pc + 3]]))
                        cost += arith
                        pc += 4
                    elif op == OP_OR:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]]) | int(regs[code[pc + 3]]))
                        cost += arith
                        pc += 4
                    elif op == OP_XOR:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]]) ^ int(regs[code[pc + 3]]))
                        cost += arith
                        pc += 4
                    elif op == OP_SHL:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]])
                            << (int(regs[code[pc + 3]]) & 63))
                        cost += arith
                        pc += 4
                    elif op == OP_SHR:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]])
                            >> (int(regs[code[pc + 3]]) & 63))
                        cost += arith
                        pc += 4
                    elif op == OP_PROBE_STATIC:
                        addr = int(regs[code[pc + 1]])
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_probe_static(
                            code[pc + 3], addr, code[pc + 2],
                        )
                        pc += 4
                    else:
                        raise VMError(f"unknown opcode {op} at {fn.name}+{pc}")
                elif op <= OP_PHI:
                    if op == OP_LOAD:
                        addr = int(regs[code[pc + 2]])
                        regs[code[pc + 1]] = read_scalar(
                            addr, ty_objs[code[pc + 3]])
                        if code[pc + 4]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += load_cost
                        pc += 5
                    elif op == OP_STORE:
                        addr = int(regs[code[pc + 2]])
                        write_scalar(addr, regs[code[pc + 1]],
                                     ty_objs[code[pc + 3]])
                        if code[pc + 4]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += store_cost
                        pc += 5
                    elif op == OP_BR:
                        pc = code[pc + 2] if regs[code[pc + 1]] != 0 \
                            else code[pc + 3]
                        cost += branch_cost
                    elif op == OP_JUMP:
                        pc = code[pc + 1]
                        cost += branch_cost
                    elif op == OP_PHI:
                        # Per-edge trampoline: read every incoming against
                        # the predecessor's values, then write all results
                        # (the tree-walk's atomic phi run), then enter the
                        # successor body.
                        k = code[pc + 1]
                        base = pc + 3
                        if k == 1:
                            regs[code[base + 1]] = regs[code[base]]
                        elif k == 2:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                        elif k == 3:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            v2 = regs[code[base + 4]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                            regs[code[base + 5]] = v2
                        else:
                            values = [regs[code[base + 2 * i]]
                                      for i in range(k)]
                            for i in range(k):
                                regs[code[base + 2 * i + 1]] = values[i]
                        ic += k - 1
                        cost += arith * k
                        pc = code[pc + 2]
                    elif op == OP_ADDR:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]])
                            + int(regs[code[pc + 3]]) * code[pc + 4]
                            + code[pc + 5]
                        )
                        cost += addr_cost
                        pc += 6
                    else:
                        raise VMError(f"unknown opcode {op} at {fn.name}+{pc}")
                elif op == OP_CAST:
                    value = regs[code[pc + 2]]
                    to = code[pc + 3]
                    if to == TY_FLOAT:
                        regs[code[pc + 1]] = float(value)
                    elif to == TY_CHAR:
                        regs[code[pc + 1]] = int(value) & 0xFF
                    else:
                        regs[code[pc + 1]] = int(value)
                    cost += cast_cost
                    pc += 4
                elif op == OP_ALLOCA:
                    memory.clock = ic
                    var_index = code[pc + 3]
                    var = var_table[var_index] if var_index >= 0 else None
                    loc_index = code[pc + 4]
                    obj = memory.allocate(
                        code[pc + 2], "stack", var=var,
                        loc=loc_table[loc_index] if loc_index >= 0 else None,
                        callstack=cs,
                    )
                    stack_objects.append(obj)
                    regs[code[pc + 1]] = obj.base
                    cost += alloca_cost
                    if var is not None:
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_alloc(obj)
                    pc += 5
                elif op == OP_CALL:
                    callee = linked_fns[code[pc + 1]]
                    argc = code[pc + 4]
                    base = pc + 5
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    if code[pc + 3] and hooks.wants_pin():
                        # A conservatively-gated call toggles the Pintool
                        # even though the target turns out to be
                        # instrumented code (§4.4.6).
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_pin_attach()
                    if max_depth and len(frames) + 1 >= max_depth:
                        raise BudgetExceeded(
                            f"recursion depth budget exceeded "
                            f"({max_depth} frames) calling {callee.name!r}"
                        )
                    frames.append((fn, regs, base + argc, code[pc + 2],
                                   stack_objects, cs))
                    fn = callee
                    code = fn.code
                    new_regs = fn.proto.copy()
                    arg_base = fn.arg_base
                    n_args = fn.n_args
                    for i in range(argc if argc < n_args else n_args):
                        new_regs[arg_base + i] = args[i]
                    regs = new_regs
                    stack_objects = []
                    pc = fn.entry_pc
                    call_stack.append(fn.name)
                    cs = cs + (fn.name,)
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_call_enter(fn.name, fn.instrumented)
                elif op == OP_CALL_BUILTIN:
                    name, impl, base_cost = linked_builtins[code[pc + 1]]
                    argc = code[pc + 5]
                    base = pc + 6
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    loc_index = code[pc + 4]
                    self._alloc_loc = (loc_table[loc_index]
                                       if loc_index >= 0 else None)
                    memory.clock = ic
                    self.instructions = ic
                    if code[pc + 3] and hooks.wants_pin():
                        self.cost = cost
                        cost += hooks.on_pin_attach()
                        self._pin_active = True
                    self.cost = cost
                    try:
                        result = impl(self, args)
                    finally:
                        self._pin_active = False
                        cost = self.cost
                    cost += base_cost
                    dst = code[pc + 2]
                    if dst >= 0:
                        regs[dst] = result
                    pc = base + argc
                elif op == OP_CALL_IND:
                    addr = int(regs[code[pc + 1]])
                    target = addr_targets.get(addr)
                    if target is None:
                        raise TrapError(
                            f"call through bad function pointer {addr:#x}")
                    argc = code[pc + 5]
                    base = pc + 6
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    is_builtin, payload = target
                    if is_builtin:
                        name, impl, base_cost = payload
                        loc_index = code[pc + 4]
                        self._alloc_loc = (loc_table[loc_index]
                                           if loc_index >= 0 else None)
                        memory.clock = ic
                        self.instructions = ic
                        if code[pc + 3] and hooks.wants_pin():
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                            self._pin_active = True
                        self.cost = cost
                        try:
                            result = impl(self, args)
                        finally:
                            self._pin_active = False
                            cost = self.cost
                        cost += base_cost
                        dst = code[pc + 2]
                        if dst >= 0:
                            regs[dst] = result
                        pc = base + argc
                    else:
                        callee = payload
                        if code[pc + 3] and hooks.wants_pin():
                            self.instructions = ic
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                        if max_depth and len(frames) + 1 >= max_depth:
                            raise BudgetExceeded(
                                f"recursion depth budget exceeded "
                                f"({max_depth} frames) calling "
                                f"{callee.name!r}"
                            )
                        frames.append((fn, regs, base + argc, code[pc + 2],
                                       stack_objects, cs))
                        fn = callee
                        code = fn.code
                        new_regs = fn.proto.copy()
                        arg_base = fn.arg_base
                        n_args = fn.n_args
                        for i in range(argc if argc < n_args else n_args):
                            new_regs[arg_base + i] = args[i]
                        regs = new_regs
                        stack_objects = []
                        pc = fn.entry_pc
                        call_stack.append(fn.name)
                        cs = cs + (fn.name,)
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_call_enter(fn.name, fn.instrumented)
                elif op == OP_CALL_MISSING:
                    cost += call_cost
                    raise TrapError(
                        f"call to undefined function "
                        f"{str_table[code[pc + 1]]!r}"
                    )
                elif op == OP_RET:
                    memory.clock = ic
                    value_slot = code[pc + 1]
                    value = regs[value_slot] if value_slot >= 0 else None
                    for obj in stack_objects:
                        memory.release_stack_object(obj)
                    call_stack.pop()
                    cost += ret_cost
                    if frames:
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_call_exit(fn.name)
                        fn, regs, pc, dst, stack_objects, cs = frames.pop()
                        code = fn.code
                        if dst >= 0:
                            regs[dst] = value
                    else:
                        self._return_value = value
                        return
                elif op == OP_ROI_BEGIN:
                    self.roi_depth += 1
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_roi_begin(code[pc + 1])
                    pc += 2
                elif op == OP_ROI_END:
                    self.roi_depth -= 1
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_roi_end(code[pc + 1])
                    pc += 2
                elif op == OP_ROI_RESET:
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_roi_reset(code[pc + 1])
                    pc += 2
                elif op == OP_PROBE_ACCESS:
                    addr = int(regs[code[pc + 2]])
                    count_slot = code[pc + 5]
                    count = 1 if count_slot < 0 else int(regs[count_slot])
                    var_index = code[pc + 4]
                    loc_index = code[pc + 7]
                    site_id = code[pc + 8]
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_probe_access(
                        kind_objs[code[pc + 1]], addr, code[pc + 3],
                        var_table[var_index] if var_index >= 0 else None,
                        count, code[pc + 6],
                        loc_table[loc_index] if loc_index >= 0 else None,
                        cs, site_id if site_id >= 0 else None,
                    )
                    pc += 9
                elif op == OP_PROBE_CLASSIFY:
                    addr = int(regs[code[pc + 2]])
                    count_slot = code[pc + 5]
                    count = 1 if count_slot < 0 else int(regs[count_slot])
                    var_index = code[pc + 4]
                    loc_index = code[pc + 7]
                    roi_id = code[pc + 8]
                    site_id = code[pc + 9]
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_probe_classify(
                        str_table[code[pc + 1]], addr, code[pc + 3],
                        var_table[var_index] if var_index >= 0 else None,
                        count, code[pc + 6],
                        loc_table[loc_index] if loc_index >= 0 else None,
                        roi_id if roi_id >= 0 else None,
                        site_id if site_id >= 0 else None,
                    )
                    pc += 10
                elif op == OP_PROBE_ESCAPE:
                    value = int(regs[code[pc + 1]])
                    dest = int(regs[code[pc + 2]])
                    loc_index = code[pc + 3]
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_probe_escape(
                        value, dest,
                        loc_table[loc_index] if loc_index >= 0 else None,
                    )
                    pc += 4
                elif op == OP_OMP_BEGIN:
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_omp_region(
                        str_table[code[pc + 1]], code[pc + 2], True)
                    pc += 3
                elif op == OP_OMP_END:
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_omp_region(
                        str_table[code[pc + 1]], code[pc + 2], False)
                    pc += 3
                elif op == OP_OMP_BARRIER:
                    self.instructions = ic
                    self.cost = cost
                    cost += roi_cost + hooks.on_omp_barrier()
                    pc += 1
                else:
                    raise VMError(f"unknown opcode {op} at {fn.name}+{pc}")
        finally:
            self.instructions = ic
            self.cost = cost
            self.access_counts["var"] += var_accesses
            self.access_counts["mem"] += mem_accesses
