"""The tier-2 bytecode dispatch engine.

Executes a lowered :class:`~repro.vm.bytecode.BytecodeModule` with a flat
while-loop over a per-function *execution stream*: integer opcodes,
operand slots into a per-frame register list, and pre-resolved
branch/call targets.  Exactly the same observable semantics as the
tree-walk :class:`~repro.vm.interpreter.Interpreter` — same cost model
charges, same instruction counting (and therefore identical
``BudgetExceeded`` trip points), same
:class:`~repro.vm.hooks.ExecutionHooks` call sequence with the same
arguments, same trap messages — just without per-step object inspection.
``tests/property/test_vm_equivalence.py`` holds the two engines equal
instruction-for-instruction.

Tier-2 structure (see DESIGN.md §12):

- **Superinstructions** arrive pre-fused from codegen (cmp+branch,
  load+binop, binop+store, probe+access).  A fused opcode executes both
  halves with the *same* instruction counting and budget check between
  them as the unfused pair, so trip points and trap-time state never
  move.
- **Quickening.**  The first time a function is entered, ``_quicken``
  walks its canonical stream and rewrites eligible sites of the
  execution stream (``fn.xcode``, a plain-list mirror built at link
  time) in place: const-operand binops and fused compare-branches
  become immediate forms, single-predecessor phi trampolines become
  ``OP_PHI_Q1``, and indirect calls through constant function pointers
  pre-resolve their target.  The canonical ``array('q')`` stream
  (``fn.code``) is never touched, so serialization, digests, and
  disassembly cannot observe quickened code;
  :func:`~repro.vm.bytecode.dequicken_module` restores the execution
  streams from it.
- **Flattened dispatch.**  The hot opcodes run in a shallow inline
  chain; everything else dispatches through a dense handler table (a
  list indexed by opcode) of per-opcode closures with pre-bound locals.
  The interpreter state is spilled before a table handler runs and the
  ``cost`` local is reloaded after, so the hook-spill contract holds at
  exactly the opcodes that can reach hooks.

Hot-loop discipline: ``instructions``/``cost`` live in locals and are
spilled to the interpreter attributes

- before every hook invocation (hooks read ``vm.instructions`` as event
  time and may read ``vm.cost``),
- around builtin calls (builtin impls *mutate* ``vm.cost`` through
  ``charge_bytes``/``heap_alloc``, so the local is reloaded after),
- around cold-table handlers (which mutate ``vm.cost`` directly), and
- unconditionally in a ``finally`` so trap/budget exits leave the same
  state the tree-walk leaves.

``memory.clock`` is only ever read inside ``allocate``/``free``/
``release_stack_object``, so instead of the tree-walk's per-step store it
is refreshed exactly at the opcodes that can reach those: ``OP_ALLOCA``,
``OP_RET``, and the builtin-call opcodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.builtins_spec import BUILTINS
from repro.errors import BudgetExceeded, TrapError, VMError
from repro.resilience.budgets import ExecutionBudgets
from repro.lang import types as ct
from repro.ir.instructions import AccessKind
from repro.vm.builtins import BUILTIN_IMPLS, Xorshift64
from repro.vm.bytecode import (
    BytecodeFunction,
    BytecodeModule,
    OPCODE_NAMES,
    OP_ADD,
    OP_ADD_QI,
    OP_ADDR,
    OP_ALLOCA,
    OP_AND,
    OP_BIN_STORE,
    OP_BR,
    OP_CALL,
    OP_CALL_BUILTIN,
    OP_CALL_IND,
    OP_CALL_IND_QB,
    OP_CALL_IND_QF,
    OP_CALL_MISSING,
    OP_CAST,
    OP_DIV,
    OP_DIV_QI,
    OP_EQ,
    OP_EQ_BR,
    OP_EQ_BR_QI,
    OP_GE,
    OP_GE_BR,
    OP_GE_BR_QI,
    OP_GT,
    OP_GT_BR,
    OP_GT_BR_QI,
    OP_JUMP,
    OP_JUMP_PHI,
    OP_LE,
    OP_LE_BR,
    OP_LE_BR_QI,
    OP_LOAD,
    OP_LOAD_BIN,
    OP_LT,
    OP_LT_BR,
    OP_LT_BR_QI,
    OP_MUL,
    OP_MUL_QI,
    OP_NE,
    OP_NE_BR,
    OP_NE_BR_QI,
    OP_OMP_BARRIER,
    OP_OMP_BEGIN,
    OP_OMP_END,
    OP_OR,
    OP_PHI,
    OP_PHI_Q1,
    OP_PROBE_ACCESS,
    OP_PROBE_CLASSIFY,
    OP_PROBE_ESCAPE,
    OP_PROBE_LOAD,
    OP_PROBE_STATIC,
    OP_PROBE_STORE,
    OP_REM,
    OP_REM_QI,
    OP_RET,
    OP_ROI_BEGIN,
    OP_ROI_END,
    OP_ROI_RESET,
    OP_RSUB_QI,
    OP_SHL,
    OP_SHR,
    OP_STORE,
    OP_SUB,
    OP_SUB_QI,
    OP_XOR,
    QUICKEN_CMP_BR_OFFSET,
    QUICKENED_BINOPS,
    TY_CHAR,
    TY_FLOAT,
    instr_width,
)
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.interpreter import RunResult
from repro.vm.memory import FUNC_PTR_BASE, Memory, MemoryObject

#: Sub-operation evaluators for the fused load+binop / binop+store
#: opcodes (the fusion catalog excludes div/rem, so none of these trap).
_BIN_EVAL = {
    OP_ADD: lambda a, b: a + b,
    OP_SUB: lambda a, b: a - b,
    OP_MUL: lambda a, b: a * b,
    OP_EQ: lambda a, b: 1 if a == b else 0,
    OP_NE: lambda a, b: 1 if a != b else 0,
    OP_LT: lambda a, b: 1 if a < b else 0,
    OP_LE: lambda a, b: 1 if a <= b else 0,
    OP_GT: lambda a, b: 1 if a > b else 0,
    OP_GE: lambda a, b: 1 if a >= b else 0,
    OP_AND: lambda a, b: int(a) & int(b),
    OP_OR: lambda a, b: int(a) | int(b),
    OP_XOR: lambda a, b: int(a) ^ int(b),
    OP_SHL: lambda a, b: int(a) << (int(b) & 63),
    OP_SHR: lambda a, b: int(a) >> (int(b) & 63),
}


class BytecodeInterpreter:
    """Executes one bytecode module.  Create a fresh engine per run."""

    def __init__(
        self,
        bytecode: BytecodeModule,
        hooks: Optional[ExecutionHooks] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 2_000_000_000,
        budgets: Optional[ExecutionBudgets] = None,
        trace_stream=None,
    ) -> None:
        self.bytecode = bytecode
        self.hooks = hooks or ExecutionHooks()
        self.cost_model = cost_model
        self.max_instructions = max_instructions
        self.budgets = budgets
        self.max_recursion_depth = 0
        self.memory = Memory()
        if budgets is not None:
            if budgets.max_steps:
                self.max_instructions = budgets.max_steps
            self.max_recursion_depth = budgets.max_recursion_depth
            self.memory.heap_limit = budgets.max_heap_bytes
        self.rng = Xorshift64()
        self.output: List[str] = []
        self.cost = 0
        self.instructions = 0
        self.access_counts = {"var": 0, "mem": 0}
        self.call_stack: List[str] = []
        self.roi_depth = 0
        self._pin_active = False
        self._return_value: object = None
        #: Allocation-site loc for builtins that heap-allocate, baked into
        #: the call opcode (mirrors the tree-walk's ``_current_loc``).
        self._alloc_loc = None
        self.trace_stream = trace_stream
        #: Parity attribute; per-line cost attribution is an IR-walk-only
        #: feature (the Figure 6 profiler drives the tree-walk directly).
        self.line_costs = {}
        self._globals_addr = {}
        setattr(self.hooks, "vm", self)
        self._link()
        self._cold_table = self._build_cold_table()

    # -- setup -------------------------------------------------------------

    def _init_globals(self) -> None:
        for gvar in self.bytecode.globals:
            var = (self.bytecode.var_table[gvar.var_index]
                   if gvar.var_index >= 0 else None)
            obj = self.memory.allocate(
                gvar.size, "global", var=var, callstack=("<static>",)
            )
            self._globals_addr[gvar.name] = obj.base
            if gvar.init_kind == "str":
                payload = gvar.init.encode("utf-8") + b"\0"
                self.memory.write_bytes(obj.base, payload)
            elif gvar.init_kind == "float":
                self.memory.write_scalar(obj.base, float(gvar.init), ct.FLOAT)
            elif gvar.init_kind == "int":
                self.memory.write_scalar(obj.base, int(gvar.init), ct.INT)

    def _link(self) -> None:
        """Allocate globals for this run and (once per module) resolve
        const pools, call targets, and function addresses.

        Global and function addresses are bump-allocated deterministically
        from the module's own tables, so the resolved frame prototypes and
        address maps are cached on the :class:`BytecodeModule` and shared
        by every interpreter over it.
        """
        bc = self.bytecode
        self._init_globals()
        if bc._linked is None:
            func_addrs = {}
            funcs_by_addr = {}
            names = list(bc.function_order) + list(bc.builtin_order)
            for index, name in enumerate(names):
                addr = FUNC_PTR_BASE + index
                func_addrs[name] = addr
                funcs_by_addr[addr] = name
            linked_builtins = []
            for name in bc.builtin_order:
                spec = BUILTINS.get(name)
                impl = BUILTIN_IMPLS.get(name)
                if spec is None or impl is None:
                    raise VMError(
                        f"bytecode references unknown builtin {name!r}")
                linked_builtins.append((name, impl, spec.base_cost))
            # Indirect-call resolution mirrors the tree-walk: address ->
            # name, then builtins shadow module functions of the same name.
            addr_targets = {}
            for addr, name in funcs_by_addr.items():
                if name in BUILTINS:
                    addr_targets[addr] = (
                        True,
                        (name, BUILTIN_IMPLS[name], BUILTINS[name].base_cost),
                    )
                else:
                    addr_targets[addr] = (False, bc.functions[name])
            for name in bc.function_order:
                fn = bc.functions[name]
                resolved: List[object] = []
                for tag, payload in fn.consts:
                    if tag == "v":
                        resolved.append(payload)
                    elif tag == "g":
                        addr = self._globals_addr.get(payload)
                        if addr is None:
                            raise VMError(
                                f"bytecode references undefined global "
                                f"{payload!r}")
                        resolved.append(addr)
                    else:
                        addr = func_addrs.get(payload)
                        if addr is None:
                            raise VMError(
                                f"bytecode references undefined function "
                                f"{payload!r}")
                        resolved.append(addr)
                fn.proto = resolved + [None] * (fn.n_regs - len(resolved))
            bc._linked = (func_addrs, funcs_by_addr, linked_builtins,
                          addr_targets)
        (self._func_addrs, self._funcs_by_addr, self._linked_builtins,
         self._addr_targets) = bc._linked
        self._linked_functions = [bc.functions[name]
                                  for name in bc.function_order]
        # The execution streams (shared by every interpreter over this
        # module) mirror the canonical code; quickening rewrites them in
        # place and dequicken_module restores them.
        for fn in self._linked_functions:
            if fn.xcode is None:
                fn.xcode = list(fn.code)

    # -- quickening --------------------------------------------------------

    def _quicken(self, fn: BytecodeFunction) -> None:
        """Rewrite the function's execution stream in place.

        Walks the *canonical* stream (so re-quickening after a dequicken
        sees original operands), patching ``fn.xcode`` where a site is
        eligible.  Every quickened layout is word-for-word compatible
        with its canonical form, so patches never move code.  Records
        the patched sites on ``fn.quickened`` for dequickening and the
        ``--quicken-report`` disassembly.
        """
        code = fn.code
        xcode = fn.xcode
        proto = fn.proto
        arg_base = fn.arg_base
        addr_targets = self._addr_targets
        quick_targets = self.bytecode._quick_targets
        sites = {}
        pc = 0
        n = len(code)
        while pc < n:
            op = code[pc]
            qop = QUICKENED_BINOPS.get(op)
            if qop is not None:
                lhs = code[pc + 2]
                rhs = code[pc + 3]
                rhs_const = (rhs < arg_base
                             and type(proto[rhs]) in (int, float))
                lhs_const = (lhs < arg_base
                             and type(proto[lhs]) in (int, float))
                if op == OP_DIV or op == OP_REM:
                    # Immediate forms skip the zero check, so only a
                    # compile-time-nonzero int divisor is eligible.
                    if (rhs_const and type(proto[rhs]) is int
                            and proto[rhs] != 0):
                        xcode[pc] = qop
                        xcode[pc + 3] = proto[rhs]
                        sites[pc] = qop
                elif rhs_const:
                    xcode[pc] = qop
                    xcode[pc + 3] = proto[rhs]
                    sites[pc] = qop
                elif lhs_const:
                    if op == OP_SUB:
                        xcode[pc] = OP_RSUB_QI
                        xcode[pc + 2] = proto[lhs]
                        sites[pc] = OP_RSUB_QI
                    elif op == OP_ADD or op == OP_MUL:
                        # Commutative: swap the constant into the
                        # immediate slot.
                        xcode[pc] = qop
                        xcode[pc + 2] = rhs
                        xcode[pc + 3] = proto[lhs]
                        sites[pc] = qop
            elif OP_LT_BR <= op <= OP_NE_BR:
                rhs = code[pc + 3]
                if rhs < arg_base and type(proto[rhs]) in (int, float):
                    qop = op + QUICKEN_CMP_BR_OFFSET
                    xcode[pc] = qop
                    xcode[pc + 3] = proto[rhs]
                    sites[pc] = qop
            elif op == OP_PHI:
                if code[pc + 1] == 1:
                    xcode[pc] = OP_PHI_Q1
                    sites[pc] = OP_PHI_Q1
            elif op == OP_JUMP:
                # A jump straight onto a phi trampoline absorbs the
                # trampoline into the jump's dispatch (targets are always
                # intra-function).  The trampoline itself stays — fused
                # cmp+branch edges may still enter it directly.
                if code[code[pc + 1]] == OP_PHI:
                    xcode[pc] = OP_JUMP_PHI
                    sites[pc] = OP_JUMP_PHI
            elif op == OP_CALL_IND:
                slot = code[pc + 1]
                if slot < arg_base and type(proto[slot]) is int:
                    target = addr_targets.get(proto[slot])
                    if target is not None:
                        is_builtin, payload = target
                        qop = (OP_CALL_IND_QB if is_builtin
                               else OP_CALL_IND_QF)
                        xcode[pc] = qop
                        xcode[pc + 1] = len(quick_targets)
                        quick_targets.append(payload)
                        sites[pc] = qop
            pc += instr_width(code, pc)
        fn.quickened = sites if sites else None
        fn.xquick = True

    # -- public API --------------------------------------------------------

    def run(self, entry: str = "main", args: Tuple = ()) -> RunResult:
        fn = self.bytecode.functions.get(entry)
        if fn is None:
            raise VMError(f"no function named {entry!r}")
        if not fn.xquick:
            self._quicken(fn)
        regs = fn.proto.copy()
        arg_base = fn.arg_base
        for index, value in enumerate(args):
            if index < fn.n_args:
                regs[arg_base + index] = value
        self.call_stack.append(entry)
        self._execute(fn, regs)
        self.hooks.finish()
        return RunResult(
            return_value=self._return_value,
            cost=self.cost,
            baseline_cost=self.cost,  # overwritten by harnesses that know it
            instructions=self.instructions,
            output=self.output,
            access_counts=dict(self.access_counts),
            leaked_bytes=self.memory.leaked_bytes,
        )

    # -- helpers used by builtins ------------------------------------------

    def heap_alloc(self, size: int) -> MemoryObject:
        obj = self.memory.allocate(
            size, "heap", callstack=tuple(self.call_stack),
            loc=self._alloc_loc,
        )
        self.cost += self.hooks.on_alloc(obj)
        return obj

    def heap_free(self, addr: int) -> None:
        if addr == 0:
            return
        obj = self.memory.free(addr)
        self.cost += self.hooks.on_free(obj)

    def native_read(self, addr: int, size: int) -> bytes:
        if self._pin_active and size > 0:
            self.cost += self.hooks.on_pin_access(AccessKind.READ, addr, size)
        return self.memory.read_bytes(addr, size)

    def native_write(self, addr: int, payload: bytes) -> None:
        if self._pin_active and payload:
            self.cost += self.hooks.on_pin_access(
                AccessKind.WRITE, addr, len(payload)
            )
        self.memory.write_bytes(addr, payload)

    def charge_bytes(self, count: int) -> None:
        self.cost += int(count * self.cost_model.builtin_per_byte)

    def reseed(self, seed: int) -> None:
        self.rng = Xorshift64(seed or 1)

    def _current_loc(self):
        return self._alloc_loc

    # -- flattened dispatch table ------------------------------------------

    def _build_cold_table(self) -> list:
        """Dense opcode -> handler list for the cold opcodes.

        Handlers are closures over the *immutable* per-run bindings
        (tables, cost constants, hooks, memory) and receive the mutable
        frame state as arguments; they return the next pc.  Contract
        with the dispatch loop: the loop spills ``instructions``/``cost``
        before the call and reloads ``cost`` after, handlers charge via
        ``vm.cost`` (reading it *before* a hook runs, exactly like the
        inline spill-then-charge pattern), and no handler changes the
        instruction count.
        """
        vm = self
        memory = self.memory
        hooks = self.hooks
        cm = self.cost_model
        bc = self.bytecode
        loc_table = bc.loc_table
        var_table = bc.var_table
        str_table = bc.string_table
        arith = cm.arith
        alloca_cost = cm.alloca
        call_cost = cm.call
        roi_cost = cm.roi_marker

        def op_and(pc, code, regs, stack_objects, cs):
            regs[code[pc + 1]] = (
                int(regs[code[pc + 2]]) & int(regs[code[pc + 3]]))
            vm.cost += arith
            return pc + 4

        def op_or(pc, code, regs, stack_objects, cs):
            regs[code[pc + 1]] = (
                int(regs[code[pc + 2]]) | int(regs[code[pc + 3]]))
            vm.cost += arith
            return pc + 4

        def op_xor(pc, code, regs, stack_objects, cs):
            regs[code[pc + 1]] = (
                int(regs[code[pc + 2]]) ^ int(regs[code[pc + 3]]))
            vm.cost += arith
            return pc + 4

        def op_shl(pc, code, regs, stack_objects, cs):
            regs[code[pc + 1]] = (
                int(regs[code[pc + 2]]) << (int(regs[code[pc + 3]]) & 63))
            vm.cost += arith
            return pc + 4

        def op_shr(pc, code, regs, stack_objects, cs):
            regs[code[pc + 1]] = (
                int(regs[code[pc + 2]]) >> (int(regs[code[pc + 3]]) & 63))
            vm.cost += arith
            return pc + 4

        def op_alloca(pc, code, regs, stack_objects, cs):
            memory.clock = vm.instructions
            var_index = code[pc + 3]
            var = var_table[var_index] if var_index >= 0 else None
            loc_index = code[pc + 4]
            obj = memory.allocate(
                code[pc + 2], "stack", var=var,
                loc=loc_table[loc_index] if loc_index >= 0 else None,
                callstack=cs,
            )
            stack_objects.append(obj)
            regs[code[pc + 1]] = obj.base
            c = vm.cost + alloca_cost
            vm.cost = c
            if var is not None:
                vm.cost = c + hooks.on_alloc(obj)
            return pc + 5

        def op_call_missing(pc, code, regs, stack_objects, cs):
            vm.cost += call_cost
            raise TrapError(
                f"call to undefined function {str_table[code[pc + 1]]!r}"
            )

        def op_roi_begin(pc, code, regs, stack_objects, cs):
            vm.roi_depth += 1
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_roi_begin(code[pc + 1])
            return pc + 2

        def op_roi_end(pc, code, regs, stack_objects, cs):
            vm.roi_depth -= 1
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_roi_end(code[pc + 1])
            return pc + 2

        def op_roi_reset(pc, code, regs, stack_objects, cs):
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_roi_reset(code[pc + 1])
            return pc + 2

        def op_probe_classify(pc, code, regs, stack_objects, cs):
            addr = int(regs[code[pc + 2]])
            count_slot = code[pc + 5]
            count = 1 if count_slot < 0 else int(regs[count_slot])
            var_index = code[pc + 4]
            loc_index = code[pc + 7]
            roi_id = code[pc + 8]
            site_id = code[pc + 9]
            c = vm.cost
            vm.cost = c + hooks.on_probe_classify(
                str_table[code[pc + 1]], addr, code[pc + 3],
                var_table[var_index] if var_index >= 0 else None,
                count, code[pc + 6],
                loc_table[loc_index] if loc_index >= 0 else None,
                roi_id if roi_id >= 0 else None,
                site_id if site_id >= 0 else None,
            )
            return pc + 10

        def op_probe_escape(pc, code, regs, stack_objects, cs):
            value = int(regs[code[pc + 1]])
            dest = int(regs[code[pc + 2]])
            loc_index = code[pc + 3]
            c = vm.cost
            vm.cost = c + hooks.on_probe_escape(
                value, dest,
                loc_table[loc_index] if loc_index >= 0 else None,
            )
            return pc + 4

        def op_probe_static(pc, code, regs, stack_objects, cs):
            addr = int(regs[code[pc + 1]])
            c = vm.cost
            vm.cost = c + hooks.on_probe_static(
                code[pc + 3], addr, code[pc + 2],
            )
            return pc + 4

        def op_omp_begin(pc, code, regs, stack_objects, cs):
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_omp_region(
                str_table[code[pc + 1]], code[pc + 2], True)
            return pc + 3

        def op_omp_end(pc, code, regs, stack_objects, cs):
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_omp_region(
                str_table[code[pc + 1]], code[pc + 2], False)
            return pc + 3

        def op_omp_barrier(pc, code, regs, stack_objects, cs):
            c = vm.cost
            vm.cost = c + roi_cost + hooks.on_omp_barrier()
            return pc + 1

        table: list = [None] * (OP_CALL_IND_QB + 1)
        table[OP_AND] = op_and
        table[OP_OR] = op_or
        table[OP_XOR] = op_xor
        table[OP_SHL] = op_shl
        table[OP_SHR] = op_shr
        table[OP_ALLOCA] = op_alloca
        table[OP_CALL_MISSING] = op_call_missing
        table[OP_ROI_BEGIN] = op_roi_begin
        table[OP_ROI_END] = op_roi_end
        table[OP_ROI_RESET] = op_roi_reset
        table[OP_PROBE_CLASSIFY] = op_probe_classify
        table[OP_PROBE_ESCAPE] = op_probe_escape
        table[OP_PROBE_STATIC] = op_probe_static
        table[OP_OMP_BEGIN] = op_omp_begin
        table[OP_OMP_END] = op_omp_end
        table[OP_OMP_BARRIER] = op_omp_barrier
        return table

    # -- main loop ---------------------------------------------------------

    def _execute(
        self,
        fn: BytecodeFunction,
        regs: list,
        # Default-argument idiom: binds every opcode the dispatch
        # chain compares against as a fast local instead of a module
        # global.  Never pass these.
        *,
        OP_ADD=OP_ADD,
        OP_ADDR=OP_ADDR,
        OP_ADD_QI=OP_ADD_QI,
        OP_BIN_STORE=OP_BIN_STORE,
        OP_BR=OP_BR,
        OP_CALL=OP_CALL,
        OP_CALL_BUILTIN=OP_CALL_BUILTIN,
        OP_CALL_IND=OP_CALL_IND,
        OP_CALL_IND_QB=OP_CALL_IND_QB,
        OP_CALL_IND_QF=OP_CALL_IND_QF,
        OP_CAST=OP_CAST,
        OP_DIV=OP_DIV,
        OP_DIV_QI=OP_DIV_QI,
        OP_EQ=OP_EQ,
        OP_EQ_BR=OP_EQ_BR,
        OP_EQ_BR_QI=OP_EQ_BR_QI,
        OP_GE=OP_GE,
        OP_GE_BR=OP_GE_BR,
        OP_GE_BR_QI=OP_GE_BR_QI,
        OP_GT=OP_GT,
        OP_GT_BR=OP_GT_BR,
        OP_GT_BR_QI=OP_GT_BR_QI,
        OP_JUMP=OP_JUMP,
        OP_JUMP_PHI=OP_JUMP_PHI,
        OP_LE=OP_LE,
        OP_LE_BR=OP_LE_BR,
        OP_LE_BR_QI=OP_LE_BR_QI,
        OP_LOAD=OP_LOAD,
        OP_LOAD_BIN=OP_LOAD_BIN,
        OP_LT=OP_LT,
        OP_LT_BR=OP_LT_BR,
        OP_LT_BR_QI=OP_LT_BR_QI,
        OP_MUL=OP_MUL,
        OP_MUL_QI=OP_MUL_QI,
        OP_NE=OP_NE,
        OP_NE_BR=OP_NE_BR,
        OP_NE_BR_QI=OP_NE_BR_QI,
        OP_PHI=OP_PHI,
        OP_PHI_Q1=OP_PHI_Q1,
        OP_PROBE_ACCESS=OP_PROBE_ACCESS,
        OP_PROBE_LOAD=OP_PROBE_LOAD,
        OP_PROBE_STORE=OP_PROBE_STORE,
        OP_REM=OP_REM,
        OP_REM_QI=OP_REM_QI,
        OP_RET=OP_RET,
        OP_RSUB_QI=OP_RSUB_QI,
        OP_STORE=OP_STORE,
        OP_SUB=OP_SUB,
        OP_SUB_QI=OP_SUB_QI,
        TY_CHAR=TY_CHAR,
        TY_FLOAT=TY_FLOAT,
    ) -> None:
        memory = self.memory
        hooks = self.hooks
        cm = self.cost_model
        call_stack = self.call_stack
        read_scalar = memory.read_scalar
        write_scalar = memory.write_scalar
        max_instructions = self.max_instructions
        max_depth = self.max_recursion_depth
        bc = self.bytecode
        loc_table = bc.loc_table
        var_table = bc.var_table
        str_table = bc.string_table
        linked_fns = self._linked_functions
        linked_builtins = self._linked_builtins
        addr_targets = self._addr_targets
        quick_targets = bc._quick_targets
        cold_table = self._cold_table
        n_cold = len(cold_table)
        bin_eval = _BIN_EVAL
        trace = self.trace_stream
        arith = cm.arith
        load_cost = cm.load
        store_cost = cm.store
        addr_cost = cm.addr
        branch_cost = cm.branch
        cast_cost = cm.cast
        call_cost = cm.call
        ret_cost = cm.ret
        roi_cost = cm.roi_marker
        # Merged constants for the fused fast paths (the trip/trap
        # paths charge the components separately to match the oracle).
        arith_branch = arith + branch_cost
        load_arith = load_cost + arith
        ty_objs = (ct.INT, ct.FLOAT, ct.CHAR)  # indexed by TY_* codes
        kind_objs = (AccessKind.READ, AccessKind.WRITE)
        code = fn.xcode
        pc = fn.entry_pc
        cs = tuple(call_stack)
        frames: List[tuple] = []  # suspended callers
        stack_objects: List[MemoryObject] = []
        ic = self.instructions
        cost = self.cost
        var_accesses = 0
        mem_accesses = 0
        try:
            while True:
                op = code[pc]
                ic += 1
                if ic > max_instructions:
                    raise BudgetExceeded("instruction budget exceeded")
                if trace is not None:
                    print(f"trace: [{ic}] {fn.name}+{pc} {OPCODE_NAMES[op]}",
                          file=trace)
                # Dispatch: hot opcodes (quickened, fused, common binops)
                # sit in a shallow inline chain; fused opcodes count both
                # component instructions and re-check the budget between
                # the halves so trip points match the unfused pair.
                # Everything past the chain dispatches through the dense
                # cold handler table.
                if op >= OP_ADD:
                    if op == OP_PHI_Q1:
                        regs[code[pc + 4]] = regs[code[pc + 3]]
                        cost += arith
                        pc = code[pc + 2]
                    elif op == OP_ADD_QI:
                        regs[code[pc + 1]] = regs[code[pc + 2]] + code[pc + 3]
                        cost += arith
                        pc += 4
                    elif op == OP_MUL_QI:
                        regs[code[pc + 1]] = regs[code[pc + 2]] * code[pc + 3]
                        cost += arith
                        pc += 4
                    elif op == OP_LT_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] < code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_REM_QI:
                        lhs = regs[code[pc + 2]]
                        rhs = code[pc + 3]
                        quotient = abs(lhs) // abs(rhs)
                        if (lhs < 0) != (rhs < 0):
                            quotient = -quotient
                        regs[code[pc + 1]] = lhs - quotient * rhs
                        cost += arith
                        pc += 5
                    elif op == OP_JUMP_PHI:
                        cost += branch_cost
                        ic += 1
                        if ic > max_instructions:
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        t = code[pc + 1]
                        k = code[t + 1]
                        base = t + 3
                        if k == 1:
                            regs[code[base + 1]] = regs[code[base]]
                        elif k == 2:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                        elif k == 3:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            v2 = regs[code[base + 4]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                            regs[code[base + 5]] = v2
                        else:
                            values = [regs[code[base + 2 * i]]
                                      for i in range(k)]
                            for i in range(k):
                                regs[code[base + 2 * i + 1]] = values[i]
                        ic += k - 1
                        cost += arith * k
                        pc = code[t + 2]
                    elif op == OP_ADD:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] + regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_GT_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] > code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_SUB:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] - regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_DIV_QI:
                        lhs = regs[code[pc + 2]]
                        rhs = code[pc + 3]
                        if isinstance(lhs, float):
                            result = lhs / rhs
                        else:
                            result = abs(lhs) // abs(rhs)
                            if (lhs < 0) != (rhs < 0):
                                result = -result
                        regs[code[pc + 1]] = result
                        cost += arith
                        pc += 5
                    elif op == OP_RSUB_QI:
                        regs[code[pc + 1]] = code[pc + 2] - regs[code[pc + 3]]
                        cost += arith
                        pc += 4
                    elif op == OP_LOAD_BIN:
                        regs[code[pc + 2]] = read_scalar(
                            int(regs[code[pc + 3]]), ty_objs[code[pc + 4]])
                        if code[pc + 5]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        ic += 1
                        if ic > max_instructions:
                            cost += load_cost
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        regs[code[pc + 6]] = bin_eval[code[pc + 1]](
                            regs[code[pc + 7]], regs[code[pc + 8]])
                        cost += load_arith
                        pc += 9
                    elif op == OP_BIN_STORE:
                        regs[code[pc + 2]] = value = bin_eval[code[pc + 1]](
                            regs[code[pc + 3]], regs[code[pc + 4]])
                        cost += arith
                        ic += 1
                        if ic > max_instructions:
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        addr = int(regs[code[pc + 5]])
                        write_scalar(addr, value, ty_objs[code[pc + 6]])
                        if code[pc + 7]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += store_cost
                        pc += 8
                    elif op == OP_LT_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] < regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_GT_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] > regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_MUL:
                        regs[code[pc + 1]] = (
                            regs[code[pc + 2]] * regs[code[pc + 3]])
                        cost += arith
                        pc += 4
                    elif op == OP_SUB_QI:
                        regs[code[pc + 1]] = regs[code[pc + 2]] - code[pc + 3]
                        cost += arith
                        pc += 4
                    elif op == OP_LT:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] < regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_LE_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] <= regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_GE_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] >= regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_EQ_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] == regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_NE_BR:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] != regs[code[pc + 3]]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_LE_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] <= code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_GE_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] >= code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_EQ_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] == code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_NE_BR_QI:
                        ic += 1
                        if ic > max_instructions:
                            cost += arith
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        cost += arith_branch
                        if regs[code[pc + 2]] != code[pc + 3]:
                            regs[code[pc + 1]] = 1
                            pc = code[pc + 4]
                        else:
                            regs[code[pc + 1]] = 0
                            pc = code[pc + 5]
                    elif op == OP_DIV:
                        lhs = regs[code[pc + 2]]
                        rhs = regs[code[pc + 3]]
                        if rhs == 0:
                            loc_index = code[pc + 4]
                            loc = (loc_table[loc_index]
                                   if loc_index >= 0 else None)
                            raise TrapError(f"division by zero at {loc}")
                        if isinstance(lhs, float) or isinstance(rhs, float):
                            result = lhs / rhs
                        else:
                            result = abs(lhs) // abs(rhs)
                            if (lhs < 0) != (rhs < 0):
                                result = -result
                        regs[code[pc + 1]] = result
                        cost += arith
                        pc += 5
                    elif op == OP_LE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] <= regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_GT:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] > regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_GE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] >= regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_EQ:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] == regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_NE:
                        regs[code[pc + 1]] = (
                            1 if regs[code[pc + 2]] != regs[code[pc + 3]]
                            else 0)
                        cost += arith
                        pc += 4
                    elif op == OP_REM:
                        lhs = regs[code[pc + 2]]
                        rhs = regs[code[pc + 3]]
                        if rhs == 0:
                            loc_index = code[pc + 4]
                            loc = (loc_table[loc_index]
                                   if loc_index >= 0 else None)
                            raise TrapError(f"modulo by zero at {loc}")
                        quotient = abs(lhs) // abs(rhs)
                        if (lhs < 0) != (rhs < 0):
                            quotient = -quotient
                        regs[code[pc + 1]] = lhs - quotient * rhs
                        cost += arith
                        pc += 5
                    elif op == OP_PROBE_LOAD:
                        addr = int(regs[code[pc + 2]])
                        count_slot = code[pc + 5]
                        count = (1 if count_slot < 0
                                 else int(regs[count_slot]))
                        var_index = code[pc + 4]
                        loc_index = code[pc + 7]
                        site_id = code[pc + 8]
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_probe_access(
                            kind_objs[code[pc + 1]], addr, code[pc + 3],
                            var_table[var_index] if var_index >= 0 else None,
                            count, code[pc + 6],
                            loc_table[loc_index] if loc_index >= 0 else None,
                            cs, site_id if site_id >= 0 else None,
                        )
                        ic += 1
                        if ic > max_instructions:
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        addr = int(regs[code[pc + 10]])
                        regs[code[pc + 9]] = read_scalar(
                            addr, ty_objs[code[pc + 11]])
                        if code[pc + 12]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += load_cost
                        pc += 13
                    elif op == OP_PROBE_STORE:
                        addr = int(regs[code[pc + 2]])
                        count_slot = code[pc + 5]
                        count = (1 if count_slot < 0
                                 else int(regs[count_slot]))
                        var_index = code[pc + 4]
                        loc_index = code[pc + 7]
                        site_id = code[pc + 8]
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_probe_access(
                            kind_objs[code[pc + 1]], addr, code[pc + 3],
                            var_table[var_index] if var_index >= 0 else None,
                            count, code[pc + 6],
                            loc_table[loc_index] if loc_index >= 0 else None,
                            cs, site_id if site_id >= 0 else None,
                        )
                        ic += 1
                        if ic > max_instructions:
                            raise BudgetExceeded(
                                "instruction budget exceeded")
                        addr = int(regs[code[pc + 10]])
                        write_scalar(addr, regs[code[pc + 9]],
                                     ty_objs[code[pc + 11]])
                        if code[pc + 12]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += store_cost
                        pc += 13
                    elif op == OP_CALL_IND_QF:
                        callee = quick_targets[code[pc + 1]]
                        argc = code[pc + 5]
                        base = pc + 6
                        args = [regs[code[base + i]] for i in range(argc)]
                        cost += call_cost
                        if code[pc + 3] and hooks.wants_pin():
                            self.instructions = ic
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                        if max_depth and len(frames) + 1 >= max_depth:
                            raise BudgetExceeded(
                                f"recursion depth budget exceeded "
                                f"({max_depth} frames) calling "
                                f"{callee.name!r}"
                            )
                        frames.append((fn, regs, base + argc, code[pc + 2],
                                       stack_objects, cs))
                        fn = callee
                        if not fn.xquick:
                            self._quicken(fn)
                        code = fn.xcode
                        new_regs = fn.proto.copy()
                        arg_base = fn.arg_base
                        n_args = fn.n_args
                        for i in range(argc if argc < n_args else n_args):
                            new_regs[arg_base + i] = args[i]
                        regs = new_regs
                        stack_objects = []
                        pc = fn.entry_pc
                        call_stack.append(fn.name)
                        cs = cs + (fn.name,)
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_call_enter(fn.name, fn.instrumented)
                    elif op == OP_CALL_IND_QB:
                        name, impl, base_cost = quick_targets[code[pc + 1]]
                        argc = code[pc + 5]
                        base = pc + 6
                        args = [regs[code[base + i]] for i in range(argc)]
                        cost += call_cost
                        loc_index = code[pc + 4]
                        self._alloc_loc = (loc_table[loc_index]
                                           if loc_index >= 0 else None)
                        memory.clock = ic
                        self.instructions = ic
                        if code[pc + 3] and hooks.wants_pin():
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                            self._pin_active = True
                        self.cost = cost
                        try:
                            result = impl(self, args)
                        finally:
                            self._pin_active = False
                            cost = self.cost
                        cost += base_cost
                        dst = code[pc + 2]
                        if dst >= 0:
                            regs[dst] = result
                        pc = base + argc
                    else:
                        handler = (cold_table[op]
                                   if 0 <= op < n_cold else None)
                        if handler is None:
                            raise VMError(
                                f"unknown opcode {op} at {fn.name}+{pc}")
                        self.instructions = ic
                        self.cost = cost
                        try:
                            pc = handler(pc, code, regs, stack_objects, cs)
                        finally:
                            cost = self.cost
                elif op <= OP_PHI:
                    if op == OP_LOAD:
                        addr = int(regs[code[pc + 2]])
                        regs[code[pc + 1]] = read_scalar(
                            addr, ty_objs[code[pc + 3]])
                        if code[pc + 4]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += load_cost
                        pc += 5
                    elif op == OP_JUMP:
                        pc = code[pc + 1]
                        cost += branch_cost
                    elif op == OP_STORE:
                        addr = int(regs[code[pc + 2]])
                        write_scalar(addr, regs[code[pc + 1]],
                                     ty_objs[code[pc + 3]])
                        if code[pc + 4]:
                            var_accesses += 1
                        else:
                            mem_accesses += 1
                        cost += store_cost
                        pc += 5
                    elif op == OP_BR:
                        pc = code[pc + 2] if regs[code[pc + 1]] != 0 \
                            else code[pc + 3]
                        cost += branch_cost
                    elif op == OP_PHI:
                        # Per-edge trampoline: read every incoming against
                        # the predecessor's values, then write all results
                        # (the tree-walk's atomic phi run), then enter the
                        # successor body.
                        k = code[pc + 1]
                        base = pc + 3
                        if k == 1:
                            regs[code[base + 1]] = regs[code[base]]
                        elif k == 2:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                        elif k == 3:
                            v0 = regs[code[base]]
                            v1 = regs[code[base + 2]]
                            v2 = regs[code[base + 4]]
                            regs[code[base + 1]] = v0
                            regs[code[base + 3]] = v1
                            regs[code[base + 5]] = v2
                        else:
                            values = [regs[code[base + 2 * i]]
                                      for i in range(k)]
                            for i in range(k):
                                regs[code[base + 2 * i + 1]] = values[i]
                        ic += k - 1
                        cost += arith * k
                        pc = code[pc + 2]
                    elif op == OP_ADDR:
                        regs[code[pc + 1]] = (
                            int(regs[code[pc + 2]])
                            + int(regs[code[pc + 3]]) * code[pc + 4]
                            + code[pc + 5]
                        )
                        cost += addr_cost
                        pc += 6
                    else:
                        raise VMError(f"unknown opcode {op} at {fn.name}+{pc}")
                elif op == OP_CALL:
                    callee = linked_fns[code[pc + 1]]
                    argc = code[pc + 4]
                    base = pc + 5
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    if code[pc + 3] and hooks.wants_pin():
                        # A conservatively-gated call toggles the Pintool
                        # even though the target turns out to be
                        # instrumented code (§4.4.6).
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_pin_attach()
                    if max_depth and len(frames) + 1 >= max_depth:
                        raise BudgetExceeded(
                            f"recursion depth budget exceeded "
                            f"({max_depth} frames) calling {callee.name!r}"
                        )
                    frames.append((fn, regs, base + argc, code[pc + 2],
                                   stack_objects, cs))
                    fn = callee
                    if not fn.xquick:
                        self._quicken(fn)
                    code = fn.xcode
                    new_regs = fn.proto.copy()
                    arg_base = fn.arg_base
                    n_args = fn.n_args
                    for i in range(argc if argc < n_args else n_args):
                        new_regs[arg_base + i] = args[i]
                    regs = new_regs
                    stack_objects = []
                    pc = fn.entry_pc
                    call_stack.append(fn.name)
                    cs = cs + (fn.name,)
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_call_enter(fn.name, fn.instrumented)
                elif op == OP_RET:
                    memory.clock = ic
                    value_slot = code[pc + 1]
                    value = regs[value_slot] if value_slot >= 0 else None
                    for obj in stack_objects:
                        memory.release_stack_object(obj)
                    call_stack.pop()
                    cost += ret_cost
                    if frames:
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_call_exit(fn.name)
                        fn, regs, pc, dst, stack_objects, cs = frames.pop()
                        code = fn.xcode
                        if dst >= 0:
                            regs[dst] = value
                    else:
                        self._return_value = value
                        return
                elif op == OP_CALL_BUILTIN:
                    name, impl, base_cost = linked_builtins[code[pc + 1]]
                    argc = code[pc + 5]
                    base = pc + 6
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    loc_index = code[pc + 4]
                    self._alloc_loc = (loc_table[loc_index]
                                       if loc_index >= 0 else None)
                    memory.clock = ic
                    self.instructions = ic
                    if code[pc + 3] and hooks.wants_pin():
                        self.cost = cost
                        cost += hooks.on_pin_attach()
                        self._pin_active = True
                    self.cost = cost
                    try:
                        result = impl(self, args)
                    finally:
                        self._pin_active = False
                        cost = self.cost
                    cost += base_cost
                    dst = code[pc + 2]
                    if dst >= 0:
                        regs[dst] = result
                    pc = base + argc
                elif op == OP_CAST:
                    value = regs[code[pc + 2]]
                    to = code[pc + 3]
                    if to == TY_FLOAT:
                        regs[code[pc + 1]] = float(value)
                    elif to == TY_CHAR:
                        regs[code[pc + 1]] = int(value) & 0xFF
                    else:
                        regs[code[pc + 1]] = int(value)
                    cost += cast_cost
                    pc += 4
                elif op == OP_CALL_IND:
                    addr = int(regs[code[pc + 1]])
                    target = addr_targets.get(addr)
                    if target is None:
                        raise TrapError(
                            f"call through bad function pointer {addr:#x}")
                    argc = code[pc + 5]
                    base = pc + 6
                    args = [regs[code[base + i]] for i in range(argc)]
                    cost += call_cost
                    is_builtin, payload = target
                    if is_builtin:
                        name, impl, base_cost = payload
                        loc_index = code[pc + 4]
                        self._alloc_loc = (loc_table[loc_index]
                                           if loc_index >= 0 else None)
                        memory.clock = ic
                        self.instructions = ic
                        if code[pc + 3] and hooks.wants_pin():
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                            self._pin_active = True
                        self.cost = cost
                        try:
                            result = impl(self, args)
                        finally:
                            self._pin_active = False
                            cost = self.cost
                        cost += base_cost
                        dst = code[pc + 2]
                        if dst >= 0:
                            regs[dst] = result
                        pc = base + argc
                    else:
                        callee = payload
                        if code[pc + 3] and hooks.wants_pin():
                            self.instructions = ic
                            self.cost = cost
                            cost += hooks.on_pin_attach()
                        if max_depth and len(frames) + 1 >= max_depth:
                            raise BudgetExceeded(
                                f"recursion depth budget exceeded "
                                f"({max_depth} frames) calling "
                                f"{callee.name!r}"
                            )
                        frames.append((fn, regs, base + argc, code[pc + 2],
                                       stack_objects, cs))
                        fn = callee
                        if not fn.xquick:
                            self._quicken(fn)
                        code = fn.xcode
                        new_regs = fn.proto.copy()
                        arg_base = fn.arg_base
                        n_args = fn.n_args
                        for i in range(argc if argc < n_args else n_args):
                            new_regs[arg_base + i] = args[i]
                        regs = new_regs
                        stack_objects = []
                        pc = fn.entry_pc
                        call_stack.append(fn.name)
                        cs = cs + (fn.name,)
                        self.instructions = ic
                        self.cost = cost
                        cost += hooks.on_call_enter(fn.name, fn.instrumented)
                elif op == OP_PROBE_ACCESS:
                    addr = int(regs[code[pc + 2]])
                    count_slot = code[pc + 5]
                    count = 1 if count_slot < 0 else int(regs[count_slot])
                    var_index = code[pc + 4]
                    loc_index = code[pc + 7]
                    site_id = code[pc + 8]
                    self.instructions = ic
                    self.cost = cost
                    cost += hooks.on_probe_access(
                        kind_objs[code[pc + 1]], addr, code[pc + 3],
                        var_table[var_index] if var_index >= 0 else None,
                        count, code[pc + 6],
                        loc_table[loc_index] if loc_index >= 0 else None,
                        cs, site_id if site_id >= 0 else None,
                    )
                    pc += 9
                else:
                    handler = cold_table[op] if 0 <= op < n_cold else None
                    if handler is None:
                        raise VMError(
                            f"unknown opcode {op} at {fn.name}+{pc}")
                    self.instructions = ic
                    self.cost = cost
                    try:
                        pc = handler(pc, code, regs, stack_objects, cs)
                    finally:
                        cost = self.cost
        finally:
            self.instructions = ic
            self.cost = cost
            self.access_counts["var"] += var_accesses
            self.access_counts["mem"] += mem_accesses
