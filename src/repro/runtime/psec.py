"""PSEC: the per-ROI characterization built by the runtime (§3.1).

A :class:`Psec` holds, for one ROI:

- the four **Sets** (Input/Output/Cloneable/Transfer), as the terminal FSA
  state of each PSE plus any compile-time-forced letters (opt 3);
- **Use-callstacks**: the distinct (source location, callstack) contexts in
  which each PSE was used inside the ROI;
- the **Reachability Graph** of pointer escapes between PSEs.

PSE keys
--------
``("var", obj_id)``
    a source variable (local/param/global), one FSA for the whole slot;
``("mem", obj_id, offset, size)``
    one element-granule of a memory object — the per-element granularity
    that lets PSEC report "only ``a[1]`` carries the RAW dependence" where
    dependence-graph tools must give up (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import RuntimeToolError
from repro.ir.instructions import SourceLoc, VarInfo
from repro.runtime import fsa
from repro.runtime.reachability import ReachabilityGraph

PseKey = Tuple  # ("var", obj_id) | ("mem", obj_id, offset, size)

SET_NAMES = ("input", "output", "cloneable", "transfer")
_LETTER_BY_SET = {"input": "I", "output": "O", "cloneable": "C", "transfer": "T"}


class PsecEntry:
    """Per-PSE record inside one ROI's PSEC.

    The FSA state is held as a dense integer code (index into
    :data:`fsa.STATES`) so the hot recording path is a flat-table lookup;
    the :attr:`state` property preserves the enum-valued view.
    """

    __slots__ = (
        "key", "var", "state_code", "forced", "last_invocation",
        "first_time", "last_time", "uses", "write_seen", "access_count",
        "last_epoch",
    )

    def __init__(
        self,
        key: PseKey,
        var: Optional[VarInfo] = None,
        state: fsa.State = fsa.State.EPS,
        forced: str = "",
    ) -> None:
        self.key = key
        self.var = var
        self.state_code: int = fsa.STATE_CODES[state]
        self.forced = forced
        self.last_invocation = -1
        self.first_time: Optional[int] = None
        self.last_time: Optional[int] = None
        self.uses: Set[Tuple[str, Tuple[str, ...]]] = set()
        self.write_seen = False
        self.access_count = 0
        self.last_epoch = 0

    @property
    def state(self) -> fsa.State:
        return fsa.STATES[self.state_code]

    @state.setter
    def state(self, value: fsa.State) -> None:
        self.state_code = fsa.STATE_CODES[value]

    @property
    def letters(self) -> FrozenSet[str]:
        return fsa.force_states(self.state, self.forced).sets

    def record(self, is_write: bool, invocation: int, time: int,
               epoch: int = 0) -> None:
        if epoch != self.last_epoch:
            # New loop execution: commit the previous epoch's letters (set
            # union with the C/T rule of §4.2) and restart the FSA.
            self.forced = "".join(
                sorted(fsa.force_states(self.state, self.forced).sets)
            )
            self.state_code = 0  # fsa.State.EPS
            self.last_invocation = -1
            self.last_epoch = epoch
        fresh = invocation != self.last_invocation
        if is_write:
            event = fsa.WF if fresh else fsa.WN
            self.write_seen = True
        else:
            event = fsa.RF if fresh else fsa.RN
        self.state_code = fsa.step_code(self.state_code, event)
        self.access_count += 1
        self.last_invocation = invocation
        if self.first_time is None:
            self.first_time = time
        self.last_time = time


class MemoryBudgetExceeded(RuntimeToolError):
    """The profiler's bookkeeping outgrew its memory budget.

    The naive configuration hits this on use-callstack-heavy workloads; the
    paper marks such runs with "*" in Figure 7/10/11.
    """


@dataclass
class Psec:
    """The PSEC of one ROI."""

    roi_id: int
    roi_name: str = ""
    abstraction: Optional[str] = None
    invocations: int = 0
    entries: Dict[PseKey, PsecEntry] = field(default_factory=dict)
    reachability: ReachabilityGraph = field(default_factory=ReachabilityGraph)
    #: obj_ids allocated while this ROI was active.
    allocated_in_roi: Set[int] = field(default_factory=set)
    use_records: int = 0
    total_accesses: int = 0
    #: Set when the run needed fail-soft intervention for this ROI (budget
    #: trip, worker crash, dropped/shed batch).  A degraded PSEC's Sets are
    #: conservative supersets — a PSE may move to Transfer instead of
    #: Cloneable, or gain Input/Output letters, but is never silently
    #: dropped; Use-callstacks may be incomplete (see
    #: ``use_callstacks_complete``).
    degraded: bool = False
    #: Machine-readable reasons (record kinds) behind ``degraded``.
    degradation_reasons: List[str] = field(default_factory=list)
    #: False when degradation lost use-callstack context for this ROI.
    use_callstacks_complete: bool = True
    #: False when the Sets are conservative supersets rather than exact.
    sets_exact: bool = True

    def entry(self, key: PseKey, var: Optional[VarInfo] = None) -> PsecEntry:
        existing = self.entries.get(key)
        if existing is None:
            existing = PsecEntry(key=key, var=var)
            self.entries[key] = existing
        elif var is not None and existing.var is None:
            existing.var = var
        return existing

    def record_access(
        self,
        key: PseKey,
        var: Optional[VarInfo],
        is_write: bool,
        invocation: int,
        time: int,
        loc: Optional[SourceLoc],
        callstack: Tuple[str, ...],
        track_uses: bool,
        max_use_records: int = 0,
        epoch: int = 0,
    ) -> None:
        entry = self.entry(key, var)
        entry.record(is_write, invocation, time, epoch)
        self.total_accesses += 1
        if track_uses:
            record = (str(loc) if loc else "?", callstack)
            if record not in entry.uses:
                entry.uses.add(record)
                self.use_records += 1
                if max_use_records and self.use_records > max_use_records:
                    raise MemoryBudgetExceeded(
                        f"ROI {self.roi_id}: more than {max_use_records} "
                        "use-callstack records"
                    )

    def force_classification(self, key: PseKey, var: Optional[VarInfo],
                             letters: str, time: int) -> None:
        entry = self.entry(key, var)
        entry.forced = "".join(sorted(set(entry.forced) | set(letters)))
        if entry.first_time is None:
            entry.first_time = time
        # Max, not last-assignment: packed run merging replays a merged
        # row's repeats out of original event order, so a later fold step
        # may carry an earlier timestamp.  VM times are monotone, so for
        # unmerged streams this is the same value as before.
        if entry.last_time is None or time > entry.last_time:
            entry.last_time = time

    # -- classification output ----------------------------------------------

    def sets(self) -> Dict[str, List[PseKey]]:
        """The four Sets of §3.1, as sorted PSE-key lists."""
        result: Dict[str, List[PseKey]] = {name: [] for name in SET_NAMES}
        for key, entry in self.entries.items():
            letters = entry.letters
            for name in SET_NAMES:
                if _LETTER_BY_SET[name] in letters:
                    result[name].append(key)
        for name in SET_NAMES:
            result[name].sort(key=_key_sort)
        return result

    def classification_of(self, key: PseKey) -> FrozenSet[str]:
        entry = self.entries.get(key)
        if entry is None:
            return frozenset()
        return entry.letters

    def check_invariants(self) -> None:
        """C∩T=∅ must hold for every PSE (§4.1)."""
        for key, entry in self.entries.items():
            letters = entry.letters
            if "C" in letters and "T" in letters:
                raise RuntimeToolError(
                    f"PSE {key}: Cloneable and Transfer are mutually exclusive"
                )


def merge_psecs(first: Psec, second: Psec) -> Psec:
    """Combine PSECs of the same ROI from different runs (§4.2).

    Set union per PSE, except Cloneable ⊔ Transfer → Transfer (the
    conservative rule: if any run observed a cross-invocation RAW, the PSE
    must be treated as Transfer).
    """
    if first.roi_id != second.roi_id:
        raise RuntimeToolError(
            f"cannot merge PSECs of different ROIs "
            f"({first.roi_id} vs {second.roi_id})"
        )
    merged = Psec(first.roi_id, first.roi_name, first.abstraction)
    merged.invocations = first.invocations + second.invocations
    for source in (first, second):
        for key, entry in source.entries.items():
            target = merged.entry(key, entry.var)
            letters = set(target.forced) | set(entry.letters)
            if "T" in letters:
                letters.discard("C")
            target.forced = "".join(sorted(letters))
            target.uses |= entry.uses
            if entry.first_time is not None:
                target.first_time = (
                    entry.first_time
                    if target.first_time is None
                    else min(target.first_time, entry.first_time)
                )
        merged.allocated_in_roi |= source.allocated_in_roi
        for edge in source.reachability.edges():
            merged.reachability.add_edge(
                edge.src, edge.dst, edge.src_offset, edge.time, edge.loc
            )
    return merged


def _key_sort(key: PseKey):
    return tuple(str(part) for part in key)
