"""The Active State Member Table (ASMT, §4.6).

The ASMT captures metadata about active PSEs: where and in which callstack
context they were allocated, their size, and their kind.  The abstraction
generators use it to report allocation sites for cloning advice and to name
heap PSEs in human-readable recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.instructions import SourceLoc, VarInfo


@dataclass(slots=True)
class AsmtEntry:
    """Metadata for one PSE allocation."""

    obj_id: int
    size: int
    kind: str  # "global" | "stack" | "heap"
    var: Optional[VarInfo]
    alloc_loc: Optional[SourceLoc]
    alloc_callstack: Tuple[str, ...]
    alloc_time: int
    freed: bool = False
    free_time: Optional[int] = None

    @property
    def display_name(self) -> str:
        if self.var is not None:
            return self.var.name
        site = str(self.alloc_loc) if self.alloc_loc else "?"
        return f"heap@{site}"


class Asmt:
    """obj_id-keyed table of active (and historical) PSE allocations."""

    def __init__(self) -> None:
        self._entries: Dict[int, AsmtEntry] = {}

    def register(self, entry: AsmtEntry) -> None:
        self._entries[entry.obj_id] = entry

    def mark_freed(self, obj_id: int, time: int) -> None:
        entry = self._entries.get(obj_id)
        if entry is not None:
            entry.freed = True
            entry.free_time = time

    def get(self, obj_id: int) -> Optional[AsmtEntry]:
        return self._entries.get(obj_id)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[int, AsmtEntry]:
        return dict(self._entries)
