"""The PSE classification Finite State Automaton (Figure 3).

Each (PSE, ROI) pair owns one FSA instance.  Events are the first read or
write of the PSE in a *new* dynamic ROI invocation (``Rf``/``Wf``) or a
subsequent access within the same invocation (``Rn``/``Wn``).  The terminal
state's letters name the Sets the PSE belongs to: I(nput), O(utput),
C(loneable), T(ransfer).  ``C`` and ``T`` are mutually exclusive — a
cross-invocation read of previously-written data permanently revokes
Cloneable (the CO→TO and CIO→TIO edges).

The conservative Output assumption of §4.1 is visible in the table: any
write puts ``O`` in the state, because CARMOT does not profile code outside
ROIs and must assume ROI-written data is read afterwards.
"""

from __future__ import annotations

import enum
from array import array
from typing import Dict, FrozenSet, Tuple

from repro.errors import RuntimeToolError


class State(enum.Enum):
    """FSA states; the value string lists set membership letters."""

    EPS = ""
    I = "I"
    O = "O"
    IO = "IO"
    CO = "CO"
    TO = "TO"
    CIO = "CIO"
    TIO = "TIO"

    @property
    def sets(self) -> FrozenSet[str]:
        return frozenset(self.value)


class Event(enum.Enum):
    RF = "Rf"  # first read in a new dynamic invocation
    WF = "Wf"  # first write in a new dynamic invocation
    RN = "Rn"  # subsequent read, same invocation
    WN = "Wn"  # subsequent write, same invocation


#: The transition table of Figure 3.
TRANSITIONS: Dict[Tuple[State, Event], State] = {
    (State.EPS, Event.RF): State.I,
    (State.EPS, Event.WF): State.O,
    (State.I, Event.RN): State.I,
    (State.I, Event.WN): State.IO,
    (State.I, Event.RF): State.I,
    (State.I, Event.WF): State.IO,
    (State.O, Event.RN): State.O,
    (State.O, Event.WN): State.O,
    (State.O, Event.RF): State.TO,
    (State.O, Event.WF): State.CO,
    (State.IO, Event.RN): State.IO,
    (State.IO, Event.WN): State.IO,
    (State.IO, Event.RF): State.TIO,
    (State.IO, Event.WF): State.CIO,
    (State.CO, Event.RN): State.CO,
    (State.CO, Event.WN): State.CO,
    (State.CO, Event.RF): State.TO,
    (State.CO, Event.WF): State.CO,
    (State.CIO, Event.RN): State.CIO,
    (State.CIO, Event.WN): State.CIO,
    (State.CIO, Event.RF): State.TIO,
    (State.CIO, Event.WF): State.CIO,
    (State.TO, Event.RF): State.TO,
    (State.TO, Event.WF): State.TO,
    (State.TO, Event.RN): State.TO,
    (State.TO, Event.WN): State.TO,
    (State.TIO, Event.RF): State.TIO,
    (State.TIO, Event.WF): State.TIO,
    (State.TIO, Event.RN): State.TIO,
    (State.TIO, Event.WN): State.TIO,
}


#: Dense integer codes for the flat transition table.  The state order is
#: fixed (golden PSEC output sorts by letters elsewhere, never by code) and
#: the event codes are chosen so hot-path callers can compute them without
#: branching on enum members: ``(0 if fresh else 2) + (1 if write else 0)``.
STATES: Tuple[State, ...] = (
    State.EPS, State.I, State.O, State.IO,
    State.CO, State.TO, State.CIO, State.TIO,
)
STATE_CODES: Dict[State, int] = {s: i for i, s in enumerate(STATES)}

N_EVENTS = 4
RF, WF, RN, WN = 0, 1, 2, 3
EVENT_CODES: Dict[Event, int] = {
    Event.RF: RF, Event.WF: WF, Event.RN: RN, Event.WN: WN,
}

#: ``FLAT_TRANSITIONS[state_code * N_EVENTS + event_code]`` → next state
#: code, or -1 for the impossible ε+Rn/Wn combinations.  Built from
#: :data:`TRANSITIONS` so the two representations cannot drift.
FLAT_TRANSITIONS = array("b", [-1] * (len(STATES) * N_EVENTS))
for (_s, _e), _t in TRANSITIONS.items():
    FLAT_TRANSITIONS[STATE_CODES[_s] * N_EVENTS + EVENT_CODES[_e]] = STATE_CODES[_t]
del _s, _e, _t


def step_code(state_code: int, event_code: int) -> int:
    """Flat-table counterpart of :func:`step` on integer codes."""
    nxt = FLAT_TRANSITIONS[state_code * N_EVENTS + event_code]
    if nxt < 0:
        raise RuntimeToolError(
            f"invalid FSA transition: {STATES[state_code].name} has no "
            f"edge for event code {event_code} (a PSE's first access "
            f"must be Rf/Wf)"
        )
    return nxt


def step(state: State, event: Event) -> State:
    """One FSA transition; raises on the impossible ε+Rn/Wn combinations."""
    key = (state, event)
    if key not in TRANSITIONS:
        raise RuntimeToolError(
            f"invalid FSA transition: {event.value} from state "
            f"{state.name} (a PSE's first access must be Rf/Wf)"
        )
    return TRANSITIONS[key]


def classify(state: State) -> FrozenSet[str]:
    """Set membership letters of a (terminal) state."""
    return state.sets


def force_states(state: State, letters: str) -> State:
    """Merge compile-time-proven set letters (opt 3) into a state.

    ``ProbeClassify`` asserts membership directly; combining it with the
    dynamic state is a monotone join on the letter sets, respecting C∩T=∅
    (T wins, matching the cross-run merge rule of §4.2).
    """
    combined = set(state.sets) | set(letters)
    if "T" in combined:
        combined.discard("C")
    return _state_for_letters(frozenset(combined))


def _state_for_letters(letters: FrozenSet[str]) -> State:
    for state in State:
        if state.sets == letters:
            return state
    # Letter combinations that have no named state normalize to the nearest
    # legal superset state: a write implies O in every reachable state.
    if letters == frozenset("I"):
        return State.I
    if letters <= frozenset("IO"):
        return State.IO if "I" in letters else State.O
    if "T" in letters:
        return State.TIO if "I" in letters else State.TO
    if "C" in letters:
        return State.CIO if "I" in letters else State.CO
    raise RuntimeToolError(f"no FSA state for letters {sorted(letters)}")
