"""CARMOT runtime: FSA, PSEC, ASMT, reachability graph, batch pipeline."""

from repro.runtime.asmt import Asmt, AsmtEntry
from repro.runtime.config import (
    FULL_POLICY,
    POLICIES,
    InstrumentationPolicy,
    RuntimeConfig,
    naive_policy_for,
    policy_for,
)
from repro.runtime.engine import CarmotHooks, CarmotRuntime, RuntimeStats
from repro.runtime.fsa import Event, State, classify, step
from repro.runtime.pipeline import Batch, BatchingPipeline
from repro.resilience import (
    DegradationRecord,
    DegradationReport,
    ExecutionBudgets,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    parse_budget_spec,
)
from repro.runtime.psec import (
    MemoryBudgetExceeded,
    Psec,
    PsecEntry,
    PseKey,
    merge_psecs,
)
from repro.runtime.reachability import CycleReport, ReachabilityGraph

__all__ = [
    "Asmt", "AsmtEntry", "FULL_POLICY", "POLICIES", "InstrumentationPolicy",
    "RuntimeConfig", "policy_for", "naive_policy_for", "CarmotHooks", "CarmotRuntime",
    "RuntimeStats", "Event", "State", "classify", "step", "Batch",
    "BatchingPipeline", "MemoryBudgetExceeded", "Psec", "PsecEntry",
    "PseKey", "merge_psecs", "CycleReport", "ReachabilityGraph",
    "DegradationRecord", "DegradationReport", "ExecutionBudgets",
    "FaultInjector", "FaultKind", "FaultPlan", "FaultSpec",
    "ResiliencePolicy", "parse_budget_spec",
]
