"""The batching pipeline of §4.6, hardened for fail-soft operation.

Instrumentation pushes events into the current batch; full batches enter an
ordered queue.  *Processing* (worker stage: per-event resolution work) may
run on parallel worker threads; *postprocessing* (applying FSA transitions
and attaching metadata to PSECs) is order-sensitive and therefore always
applied in batch sequence order, exactly like the paper's second ordered
queue feeding the final processing stage.

Two modes:

- deterministic (default): batches are processed synchronously when they
  fill — bit-identical PSECs, used by tests and experiments;
- threaded: worker threads drain the filled-batch queue concurrently and a
  reorder buffer restores sequence order before postprocessing, mirroring
  the Master/Shadow + Worker structure of Figure 5.

Resilience (all off by default; defaults reproduce the pre-hardening
behaviour bit for bit):

- **prompt error propagation** — a worker failure re-raises on the *next*
  ``push()``/``flush()``, not only at ``close()``; the stored error is
  retained, so repeated ``close()`` calls keep reporting it;
- **backpressure** — ``max_queue_batches`` bounds the filled-batch queue;
  the producer either blocks (``queue_policy="block"``) or sheds the batch
  into degraded mode (``"shed"``);
- **bounded retry** — a failed batch is retried up to ``max_retries``
  times with exponential backoff charged to a deterministic *virtual*
  clock (``virtual_backoff``), never to the profiled program's critical
  path;
- **degraded mode** — with ``degrade=True`` an unrecoverable batch is
  handed to ``on_degraded(batch, (kind, detail))`` in sequence order
  instead of raising, so the runtime can fall back to conservative
  classification;
- **fault injection** — an optional :class:`repro.resilience.FaultInjector`
  fires deterministic, seed-driven crashes/drops/slowdowns keyed by batch
  sequence number (identical fault streams in both pipeline modes).
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import RuntimeToolError
from repro.resilience.faultinject import FaultInjector

#: A batch failure classification: (kind, human-readable detail).
Failure = Tuple[str, str]


@dataclass
class Batch:
    seq: int
    events: List[object] = field(default_factory=list)


class BatchingPipeline:
    """Order-preserving two-stage batch pipeline.

    ``process`` runs per batch (parallelizable stage); ``postprocess`` runs
    per batch in sequence order (FSA application).  Exceptions raised in
    the threaded workers are re-raised on the next producer call
    (``push``/``flush``/``close``).
    """

    def __init__(
        self,
        batch_size: int,
        process: Callable[[Batch], Batch],
        postprocess: Callable[[Batch], None],
        threaded: bool = False,
        worker_count: int = 2,
        max_queue_batches: int = 0,
        queue_policy: str = "block",
        max_retries: int = 0,
        retry_backoff: int = 100,
        degrade: bool = False,
        on_degraded: Optional[Callable[[Batch, Failure], None]] = None,
        on_retry: Optional[
            Callable[[Batch, int, BaseException], None]] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if batch_size < 1:
            raise RuntimeToolError("batch_size must be >= 1")
        if queue_policy not in ("block", "shed"):
            raise RuntimeToolError(
                f"unknown queue policy {queue_policy!r}"
            )
        if queue_policy == "shed" and not degrade:
            raise RuntimeToolError(
                "queue policy 'shed' requires degrade=True"
            )
        self._batch_size = batch_size
        self._process = process
        self._postprocess = postprocess
        self._threaded = threaded
        self._queue_policy = queue_policy
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._degrade = degrade
        self._on_degraded = on_degraded
        self._on_retry = on_retry
        self._injector = injector
        self._seq = 0
        self._current = Batch(seq=0)
        self._closed = False
        self.batches_processed = 0
        self.batches_degraded = 0
        self.batches_shed = 0
        self.events_seen = 0
        self.retries = 0
        #: Deterministic shadow-clock charges: retry backoff and injected
        #: slow-batch latency.  Never charged to the program's cost.
        self.virtual_backoff = 0
        self.virtual_delay = 0
        #: (seq, delay) pairs of injected slow batches, for reporting.
        self.slow_batches: List[Tuple[int, int]] = []
        self._error: Optional[BaseException] = None
        if threaded:
            self._queue: "queue.Queue[Optional[Batch]]" = queue.Queue(
                maxsize=max_queue_batches
            )
            self._done_lock = threading.Lock()
            self._reorder: List = []
            self._next_post = 0
            self._workers = [
                threading.Thread(target=self._worker_loop, daemon=True)
                for _ in range(max(1, worker_count))
            ]
            for worker in self._workers:
                worker.start()

    # -- producer side -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def push(self, event: object) -> None:
        if self._closed:
            raise RuntimeToolError("push() on a closed pipeline")
        if self._error is not None:
            self._raise_pending()
        self.events_seen += 1
        self._current.events.append(event)
        if len(self._current.events) >= self._batch_size:
            self.flush()

    def push_block(self, block) -> None:
        """Ship one packed column block as a whole batch.

        Each row counts as one event, and the block takes the batch
        sequence number the same rows would have received through
        per-event :meth:`push` — fault plans keyed on batch seq therefore
        hit identical event ranges in both encodings.  ``block`` becomes
        the batch's ``events`` payload (it supports ``len()``).
        """
        if self._closed:
            raise RuntimeToolError("push_block() on a closed pipeline")
        if self._error is not None:
            self._raise_pending()
        if not len(block):
            return
        self.events_seen += len(block)
        batch = Batch(seq=self._current.seq, events=block)
        self._seq += 1
        self._current = Batch(seq=self._seq)
        self._dispatch(batch)

    def flush(self) -> None:
        if self._closed:
            raise RuntimeToolError("flush() on a closed pipeline")
        self._raise_pending()
        self._flush_current()

    def _flush_current(self) -> None:
        if not self._current.events:
            return
        batch = self._current
        self._seq += 1
        self._current = Batch(seq=self._seq)
        self._dispatch(batch)

    def _dispatch(self, batch: Batch) -> None:
        if self._threaded:
            self._enqueue(batch)
        else:
            processed, failure = self._process_guarded(batch)
            if failure is None:
                self._postprocess(processed)
                self.batches_processed += 1
            else:
                self._degrade_batch(batch, failure)

    def close(self) -> None:
        """Flush the partial batch and drain all workers.

        Idempotent: a second ``close()`` neither re-drains nor swallows a
        pending worker error — the error re-raises on every call until the
        pipeline is discarded.
        """
        if self._closed:
            self._raise_pending()
            return
        self._closed = True
        try:
            self._flush_current()
        finally:
            if self._threaded:
                for _ in self._workers:
                    self._queue.put(None)
                for worker in self._workers:
                    worker.join()
                self._drain_reorder(final=True)
        self._raise_pending()

    # -- failure handling -----------------------------------------------------

    def _process_guarded(
        self, batch: Batch
    ) -> Tuple[Batch, Optional[Failure]]:
        """Process one batch under the fault injector and retry policy.

        Returns ``(processed, None)`` on success or ``(original, failure)``
        when the batch must enter degraded mode.  Raises when the batch is
        unrecoverable and degraded mode is off.
        """
        injector = self._injector
        if injector is not None:
            kind = injector.drop_kind(batch.seq)
            if kind is not None:
                failure = (kind.value,
                           f"injected {kind.value} at batch {batch.seq}")
                if not self._degrade:
                    raise RuntimeToolError(
                        f"batch {batch.seq} lost to injected {kind.value} "
                        "(enable degrade to fall back)"
                    )
                return batch, failure
            delay = injector.delay_for(batch.seq)
            if delay:
                self.virtual_delay += delay
                self.slow_batches.append((batch.seq, delay))
        attempt = 0
        while True:
            try:
                if injector is not None:
                    injector.fire(batch.seq, attempt)
                return self._process(batch), None
            except BaseException as exc:
                if attempt >= self._max_retries:
                    if self._degrade:
                        return batch, (
                            "worker_crash",
                            f"{type(exc).__name__}: {exc}",
                        )
                    raise
                attempt += 1
                self.retries += 1
                # Exponential backoff in deterministic virtual time: the
                # total depends only on which batches retried how often,
                # not on scheduling.
                self.virtual_backoff += self._retry_backoff * (
                    1 << (attempt - 1)
                )
                if self._on_retry is not None:
                    self._on_retry(batch, attempt, exc)

    def _degrade_batch(self, batch: Batch, failure: Failure) -> None:
        self.batches_degraded += 1
        if self._on_degraded is not None:
            self._on_degraded(batch, failure)

    # -- threaded internals -----------------------------------------------------

    def _enqueue(self, batch: Batch) -> None:
        if self._queue_policy == "shed" and self._queue.maxsize > 0:
            try:
                self._queue.put_nowait(batch)
            except queue.Full:
                self.batches_shed += 1
                self._fail_ordered(batch, (
                    "shed", f"batch {batch.seq} shed: queue full"
                ))
            return
        # "block" policy: a bounded queue makes this call apply
        # backpressure to the producer until a worker frees a slot.
        self._queue.put(batch)

    def _fail_ordered(self, batch: Batch, failure: Failure) -> None:
        """Route a failed batch through the reorder buffer so degraded
        fallback still runs in sequence order with postprocessing."""
        with self._done_lock:
            heapq.heappush(
                self._reorder, (batch.seq, id(batch), batch, failure)
            )
            self._drain_reorder_locked()

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is None:
                return
            if self._error is not None:
                # Poisoned pipeline: keep draining so a producer blocked
                # on a bounded queue wakes up and sees the error.
                continue
            try:
                processed, failure = self._process_guarded(batch)
            except BaseException as exc:  # surfaced on next producer call
                with self._done_lock:
                    if self._error is None:
                        self._error = exc
                continue
            with self._done_lock:
                heapq.heappush(
                    self._reorder,
                    (batch.seq, id(batch), processed, failure),
                )
                self._drain_reorder_locked()

    def _drain_reorder(self, final: bool = False) -> None:
        with self._done_lock:
            self._drain_reorder_locked()
            if final and self._reorder and self._error is None:
                # Sequence gap with no pending batches: a worker died.
                self._error = RuntimeToolError(
                    "pipeline closed with unprocessed batches"
                )

    def _drain_reorder_locked(self) -> None:
        while self._reorder and self._reorder[0][0] == self._next_post:
            _, _, batch, failure = heapq.heappop(self._reorder)
            self._next_post += 1
            if failure is None:
                try:
                    self._postprocess(batch)
                except BaseException as exc:
                    if self._error is None:
                        self._error = exc
                    return
                self.batches_processed += 1
            else:
                try:
                    self._degrade_batch(batch, failure)
                except BaseException as exc:
                    if self._error is None:
                        self._error = exc
                    return

    def _raise_pending(self) -> None:
        if self._error is not None:
            raise self._error
