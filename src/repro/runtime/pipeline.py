"""The batching pipeline of §4.6.

Instrumentation pushes events into the current batch; full batches enter an
ordered queue.  *Processing* (worker stage: per-event resolution work) may
run on parallel worker threads; *postprocessing* (applying FSA transitions
and attaching metadata to PSECs) is order-sensitive and therefore always
applied in batch sequence order, exactly like the paper's second ordered
queue feeding the final processing stage.

Two modes:

- deterministic (default): batches are processed synchronously when they
  fill — bit-identical PSECs, used by tests and experiments;
- threaded: worker threads drain the filled-batch queue concurrently and a
  reorder buffer restores sequence order before postprocessing, mirroring
  the Master/Shadow + Worker structure of Figure 5.
"""

from __future__ import annotations

import heapq
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import RuntimeToolError


@dataclass
class Batch:
    seq: int
    events: List[object] = field(default_factory=list)


class BatchingPipeline:
    """Order-preserving two-stage batch pipeline.

    ``process`` runs per batch (parallelizable stage); ``postprocess`` runs
    per batch in sequence order (FSA application).  Exceptions raised in the
    threaded workers are re-raised on ``close()``.
    """

    def __init__(
        self,
        batch_size: int,
        process: Callable[[Batch], Batch],
        postprocess: Callable[[Batch], None],
        threaded: bool = False,
        worker_count: int = 2,
    ) -> None:
        if batch_size < 1:
            raise RuntimeToolError("batch_size must be >= 1")
        self._batch_size = batch_size
        self._process = process
        self._postprocess = postprocess
        self._threaded = threaded
        self._seq = 0
        self._current = Batch(seq=0)
        self.batches_processed = 0
        self.events_seen = 0
        self._error: Optional[BaseException] = None
        if threaded:
            self._queue: "queue.Queue[Optional[Batch]]" = queue.Queue()
            self._done_lock = threading.Lock()
            self._reorder: List = []
            self._next_post = 0
            self._workers = [
                threading.Thread(target=self._worker_loop, daemon=True)
                for _ in range(max(1, worker_count))
            ]
            for worker in self._workers:
                worker.start()

    # -- producer side -------------------------------------------------------

    def push(self, event: object) -> None:
        self.events_seen += 1
        self._current.events.append(event)
        if len(self._current.events) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._current.events:
            return
        batch = self._current
        self._seq += 1
        self._current = Batch(seq=self._seq)
        if self._threaded:
            self._raise_pending()
            self._queue.put(batch)
        else:
            self._postprocess(self._process(batch))
            self.batches_processed += 1

    def close(self) -> None:
        """Flush the partial batch and drain all workers."""
        self.flush()
        if self._threaded:
            for _ in self._workers:
                self._queue.put(None)
            for worker in self._workers:
                worker.join()
            self._drain_reorder(final=True)
            self._raise_pending()

    # -- threaded internals -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is None:
                return
            try:
                processed = self._process(batch)
            except BaseException as exc:  # surfaced on close()
                with self._done_lock:
                    if self._error is None:
                        self._error = exc
                return
            with self._done_lock:
                heapq.heappush(self._reorder, (processed.seq, id(processed),
                                               processed))
                self._drain_reorder_locked()

    def _drain_reorder(self, final: bool = False) -> None:
        with self._done_lock:
            self._drain_reorder_locked()
            if final and self._reorder and self._error is None:
                # Sequence gap with no pending batches: a worker died.
                self._error = RuntimeToolError(
                    "pipeline closed with unprocessed batches"
                )

    def _drain_reorder_locked(self) -> None:
        while self._reorder and self._reorder[0][0] == self._next_post:
            _, _, batch = heapq.heappop(self._reorder)
            try:
                self._postprocess(batch)
            except BaseException as exc:
                if self._error is None:
                    self._error = exc
                return
            self.batches_processed += 1
            self._next_post += 1

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error
