"""Versioned JSON schema for profiling results (PSECs + ASMT + more).

One profiling run produces more than the four Sets: per-PSE FSA state and
use-callstacks, the Reachability Graph, the ASMT allocation metadata, the
degradation report, and the VM run result.  :func:`serialize_profile`
captures all of it as canonical JSON so characterization results are
cacheable and diffable run-to-run; :func:`deserialize_profile` rebuilds a
:class:`Profile` that duck-types :class:`~repro.runtime.engine.CarmotRuntime`
closely enough that ``recommend()``, ``describe_pse()``, and the CLI's
PSEC rendering produce byte-identical output from a cached profile.

Determinism notes:

- every set (``entry.uses``, ``allocated_in_roi``, reachability edges) is
  emitted sorted;
- ``Psec.entries`` keeps insertion order (the order the runtime first saw
  each PSE), so downstream renderings that iterate entries match a live
  run exactly;
- the document is key-sorted compact JSON, so equal profiles are equal
  byte strings and :func:`profile_digest` is a meaningful identity.

The format carries ``PROFILE_SCHEMA_VERSION``; bump it on any shape
change (cache keys include it — see :mod:`repro.session.keys`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro._version import PROFILE_SCHEMA_VERSION
from repro.errors import ReproError
from repro.ir.instructions import VarInfo
from repro.ir.serialize import _dec_loc, _dec_type, _enc_loc, _enc_type
from repro.resilience.degradation import DegradationRecord, DegradationReport
from repro.runtime.asmt import Asmt, AsmtEntry
from repro.runtime.psec import Psec, PsecEntry
from repro.runtime.reachability import ReachabilityGraph
from repro.vm.interpreter import RunResult

FORMAT_NAME = "repro-profile"


class ProfileSerializeError(ReproError):
    """Malformed or incompatible serialized profile."""


class Profile:
    """A deserialized profiling run.

    Duck-types the slice of ``CarmotRuntime`` the read-side consumers use:
    ``module``, ``psecs``, ``asmt``, ``degradation``, ``degraded``.
    """

    def __init__(
        self,
        module,
        psecs: Dict[int, Psec],
        asmt: Asmt,
        degradation: DegradationReport,
        result: RunResult,
    ) -> None:
        self.module = module
        self.psecs = psecs
        self.asmt = asmt
        self.degradation = degradation
        self.result = result

    @property
    def degraded(self) -> bool:
        return self.degradation.degraded


# ---------------------------------------------------------------------------
# serialize
# ---------------------------------------------------------------------------


class _VarTable:
    """uid-keyed VarInfo table shared by PSEC entries and the ASMT."""

    def __init__(self) -> None:
        self.vars: Dict[int, VarInfo] = {}
        self.structs: Dict[str, object] = {}

    def ref(self, var: Optional[VarInfo]) -> Optional[int]:
        if var is None:
            return None
        self.vars.setdefault(var.uid, var)
        return var.uid

    def doc(self) -> List[Dict]:
        return [
            {
                "uid": var.uid, "name": var.name, "storage": var.storage,
                "ty": _enc_type(var.ty, self.structs),
                "decl_loc": _enc_loc(var.decl_loc),
            }
            for _, var in sorted(self.vars.items())
        ]

    def structs_doc(self) -> List[Dict]:
        return [
            {
                "name": name,
                "fields": [
                    [fname, _enc_type(ftype, self.structs)]
                    for fname, ftype in self.structs[name].fields
                ],
            }
            for name in sorted(self.structs)
        ]


def _enc_entry(entry: PsecEntry, vars_table: _VarTable) -> Dict:
    return {
        "key": list(entry.key),
        "var": vars_table.ref(entry.var),
        "state_code": entry.state_code,
        "forced": entry.forced,
        "last_invocation": entry.last_invocation,
        "first_time": entry.first_time,
        "last_time": entry.last_time,
        "uses": sorted([loc, list(stack)] for loc, stack in entry.uses),
        "write_seen": entry.write_seen,
        "access_count": entry.access_count,
        "last_epoch": entry.last_epoch,
    }


def _enc_reachability(graph: ReachabilityGraph) -> Dict:
    nodes = [
        {
            "obj_id": node.obj_id,
            "allocated_in_roi": node.allocated_in_roi,
            "alloc_time": node.alloc_time,
            "first_access_time": node.first_access_time,
        }
        for _, node in sorted(graph._nodes.items())
    ]
    edges = sorted(
        (
            [edge.src, edge.dst, edge.src_offset, edge.time, edge.loc]
            for edge in graph.edges()
        ),
    )
    return {"nodes": nodes, "edges": edges}


def _enc_psec(psec: Psec, vars_table: _VarTable) -> Dict:
    return {
        "roi_id": psec.roi_id,
        "roi_name": psec.roi_name,
        "abstraction": psec.abstraction,
        "invocations": psec.invocations,
        # Sorted by (first_time, key), not insertion order: the
        # single-threaded drain inserts entries in exactly this order
        # anyway, but the sharded fold builds ``entries`` from several
        # worker threads, whose dict-insertion interleaving is not
        # deterministic.  Sorting makes the artifact canonical for both.
        "entries": [
            _enc_entry(entry, vars_table)
            for entry in sorted(
                psec.entries.values(),
                key=lambda e: (e.first_time, e.key[0], e.key[1:]),
            )
        ],
        "reachability": _enc_reachability(psec.reachability),
        "allocated_in_roi": sorted(psec.allocated_in_roi),
        "use_records": psec.use_records,
        "total_accesses": psec.total_accesses,
        "degraded": psec.degraded,
        "degradation_reasons": list(psec.degradation_reasons),
        "use_callstacks_complete": psec.use_callstacks_complete,
        "sets_exact": psec.sets_exact,
    }


def serialize_profile(runtime, result: RunResult) -> str:
    """Canonical JSON for a finished profiling run.

    ``runtime`` is a ``CarmotRuntime`` (or a :class:`Profile` — the
    round-trip is closed).
    """
    vars_table = _VarTable()
    psecs = [
        _enc_psec(psec, vars_table)
        for _, psec in sorted(runtime.psecs.items())
    ]
    asmt = [
        {
            "obj_id": entry.obj_id, "size": entry.size, "kind": entry.kind,
            "var": vars_table.ref(entry.var),
            "alloc_loc": _enc_loc(entry.alloc_loc),
            "alloc_callstack": list(entry.alloc_callstack),
            "alloc_time": entry.alloc_time,
            "freed": entry.freed, "free_time": entry.free_time,
        }
        for _, entry in sorted(runtime.asmt.entries().items())
    ]
    degradation = [
        {
            "batch_seq": record.batch_seq, "kind": record.kind,
            "rois": list(record.rois), "events": record.events,
            "action": record.action, "sets_complete": record.sets_complete,
            "use_callstacks_complete": record.use_callstacks_complete,
            "detail": record.detail,
        }
        for record in runtime.degradation.records()
    ]
    result_doc = {
        "return_value": result.return_value,
        "cost": result.cost,
        "baseline_cost": result.baseline_cost,
        "instructions": result.instructions,
        "output": list(result.output),
        "access_counts": dict(result.access_counts),
        "leaked_bytes": result.leaked_bytes,
    }
    doc = {
        "format": FORMAT_NAME,
        "version": PROFILE_SCHEMA_VERSION,
        "structs": vars_table.structs_doc(),
        "vars": vars_table.doc(),
        "psecs": psecs,
        "asmt": asmt,
        "degradation": degradation,
        "result": result_doc,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def profile_digest(text: str) -> str:
    """SHA-256 of a serialized profile (its cache identity)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def psec_sets_doc(psecs: Dict[int, Psec]) -> Dict:
    """Canonical JSON view of just the four Sets per ROI (the
    :func:`psec_sets_digest` material; also what ``psec --json`` prints
    so CI can byte-diff hybrid vs dynamic runs)."""
    return {
        str(roi_id): {
            name: [list(map(str, key)) for key in keys]
            for name, keys in psec.sets().items()
        }
        for roi_id, psec in sorted(psecs.items())
    }


def psec_sets_digest(psecs: Dict[int, Psec]) -> str:
    """Digest of just the four Sets per ROI — the byte-identity gate used
    by bench warm/cold comparisons and the differential cache tests."""
    payload = json.dumps(psec_sets_doc(psecs), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# deserialize
# ---------------------------------------------------------------------------


def _tuple_key(doc: List):
    return tuple(doc)


def deserialize_profile(text: str, module=None) -> Profile:
    """Rebuild a :class:`Profile` from :func:`serialize_profile` output.

    ``module`` (optional) attaches the IR module the consumers expect on a
    runtime-like object; cached profiles are only meaningful next to the
    module they were profiled from, which the session layer guarantees by
    keying the profile artifact on the module digest.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProfileSerializeError(f"malformed profile artifact: {error}")
    if not isinstance(doc, dict) or doc.get("format") != FORMAT_NAME:
        raise ProfileSerializeError("not a serialized profile")
    if doc.get("version") != PROFILE_SCHEMA_VERSION:
        raise ProfileSerializeError(
            f"profile artifact version {doc.get('version')!r} does not "
            f"match this toolchain's {PROFILE_SCHEMA_VERSION}"
        )
    from repro.lang import types as ct

    structs: Dict[str, ct.StructType] = {}
    for struct_doc in doc["structs"]:
        structs[struct_doc["name"]] = ct.StructType(struct_doc["name"])
    for struct_doc in doc["structs"]:
        structs[struct_doc["name"]].set_body([
            (fname, _dec_type(ftype, structs))
            for fname, ftype in struct_doc["fields"]
        ])
    vars_table: Dict[int, VarInfo] = {}
    for var_doc in doc["vars"]:
        vars_table[var_doc["uid"]] = VarInfo(
            uid=var_doc["uid"], name=var_doc["name"],
            storage=var_doc["storage"],
            ty=_dec_type(var_doc["ty"], structs),
            decl_loc=_dec_loc(var_doc["decl_loc"]),
        )

    def var_of(uid: Optional[int]) -> Optional[VarInfo]:
        return None if uid is None else vars_table[uid]

    psecs: Dict[int, Psec] = {}
    for pdoc in doc["psecs"]:
        psec = Psec(
            roi_id=pdoc["roi_id"], roi_name=pdoc["roi_name"],
            abstraction=pdoc["abstraction"],
        )
        psec.invocations = pdoc["invocations"]
        for edoc in pdoc["entries"]:
            entry = PsecEntry(
                key=_tuple_key(edoc["key"]), var=var_of(edoc["var"]),
            )
            entry.state_code = edoc["state_code"]
            entry.forced = edoc["forced"]
            entry.last_invocation = edoc["last_invocation"]
            entry.first_time = edoc["first_time"]
            entry.last_time = edoc["last_time"]
            entry.uses = {
                (loc, tuple(stack)) for loc, stack in edoc["uses"]
            }
            entry.write_seen = edoc["write_seen"]
            entry.access_count = edoc["access_count"]
            entry.last_epoch = edoc["last_epoch"]
            psec.entries[entry.key] = entry
        rdoc = pdoc["reachability"]
        for ndoc in rdoc["nodes"]:
            psec.reachability.add_node(
                ndoc["obj_id"], ndoc["allocated_in_roi"],
                ndoc["alloc_time"], ndoc["first_access_time"],
            )
        for src, dst, src_offset, time, loc in rdoc["edges"]:
            psec.reachability.add_edge(src, dst, src_offset, time, loc)
        psec.allocated_in_roi = set(pdoc["allocated_in_roi"])
        psec.use_records = pdoc["use_records"]
        psec.total_accesses = pdoc["total_accesses"]
        psec.degraded = pdoc["degraded"]
        psec.degradation_reasons = list(pdoc["degradation_reasons"])
        psec.use_callstacks_complete = pdoc["use_callstacks_complete"]
        psec.sets_exact = pdoc["sets_exact"]
        psecs[psec.roi_id] = psec
    asmt = Asmt()
    for adoc in doc["asmt"]:
        asmt.register(AsmtEntry(
            obj_id=adoc["obj_id"], size=adoc["size"], kind=adoc["kind"],
            var=var_of(adoc["var"]), alloc_loc=_dec_loc(adoc["alloc_loc"]),
            alloc_callstack=tuple(adoc["alloc_callstack"]),
            alloc_time=adoc["alloc_time"], freed=adoc["freed"],
            free_time=adoc["free_time"],
        ))
    degradation = DegradationReport()
    for ddoc in doc["degradation"]:
        degradation.add(DegradationRecord(
            batch_seq=ddoc["batch_seq"], kind=ddoc["kind"],
            rois=tuple(ddoc["rois"]), events=ddoc["events"],
            action=ddoc["action"], sets_complete=ddoc["sets_complete"],
            use_callstacks_complete=ddoc["use_callstacks_complete"],
            detail=ddoc["detail"],
        ))
    rdoc = doc["result"]
    result = RunResult(
        return_value=rdoc["return_value"], cost=rdoc["cost"],
        baseline_cost=rdoc["baseline_cost"],
        instructions=rdoc["instructions"], output=list(rdoc["output"]),
        access_counts=dict(rdoc["access_counts"]),
        leaked_bytes=rdoc["leaked_bytes"],
    )
    return Profile(module, psecs, asmt, degradation, result)
