"""Packed struct-of-arrays event blocks (the hot-path encoding).

Instead of one event dataclass per access, the packed encoding appends each
event as one fixed-width *row* of plain ints into a preallocated
``array('q')``.  Everything non-integer — variables, source locations,
callstacks, active-ROI snapshots, classify letter strings — is interned
once into dense-id tables owned by the runtime, so the per-access work on
the program's critical path is a single C-level ``array.extend`` of a row
tuple.  A full block ships through the
:class:`repro.runtime.pipeline.BatchingPipeline` as the payload of an
ordinary :class:`Batch` (one row = one event for batch-seq accounting, so
fault plans keyed on batch sequence hit the same event ranges in both
encodings), and the drain side folds it in a single tight loop over the
flat FSA transition table (:data:`repro.runtime.fsa.FLAT_TRANSITIONS`).

Row layout (``ROW_STRIDE`` ints per row; unused fields are 0):

====================  =====================================================
kind code             fields used
====================  =====================================================
``KIND_READ/WRITE``   obj, offset, size, count, stride, site (interned
                      (var, loc) id), cs (callstack id), active (snapshot
                      id), time; ``aux`` = run-merge repeat count, ``last``
                      = time of the latest merged repeat
``KIND_CLASSIFY``     obj, offset, size, count, stride, site, active,
                      time; ``aux`` = letters-string id
``KIND_ALLOC``        obj, size, active, time; ``aux`` = index into
                      ``side`` holding ``(kind, var, loc, callstack)``
``KIND_ESCAPE``       obj (=src obj), offset (=src offset), site
                      (loc-only site), active, time; ``aux`` = dst obj
``KIND_FREE``         obj, active, time
====================  =====================================================

**Run merging.**  An access identical to an *anchor* row already in the
block — the nine head fields ``kind..active`` all equal, i.e. a loop body
re-executing the same access in the same ROI invocation — does not append
a new row: capture bumps the anchor's ``aux`` repeat count and ``last``
timestamp instead.  The fold replays a merged row exactly: repeats use the
row's non-fresh FSA event code (one extra step reaches the transition
fixpoint), counters add the repeat count, and ``last_time`` folds as a
maximum.  ``PackedBlock.events`` counts *events* (rows + merged repeats),
which is what batch-seq accounting uses, so fault plans keyed on batch
sequence hit the same event ranges in both encodings.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

#: Row kind codes.  READ/WRITE are 0/1 so the access fast path can use the
#: kind directly as the FSA write bit (event code = kind + 2*not-fresh).
KIND_READ = 0
KIND_WRITE = 1
KIND_CLASSIFY = 2
KIND_ALLOC = 3
KIND_ESCAPE = 4
KIND_FREE = 5

#: Field offsets within one row.
(F_KIND, F_OBJ, F_OFFSET, F_SIZE, F_COUNT, F_STRIDE, F_SITE, F_CS,
 F_ACTIVE, F_TIME, F_AUX, F_LAST) = range(12)
ROW_STRIDE = 12


class PackedBlock:
    """One batch worth of events as interleaved fixed-width integer rows."""

    __slots__ = ("data", "side", "events")

    def __init__(self) -> None:
        self.data = array("q")
        #: Non-integer payloads (alloc rows): (kind, var, loc, callstack).
        self.side: List[Tuple] = []
        #: Event count including run-merged repeats (set at flush time);
        #: ``len(block)`` reports this so batch-seq accounting matches the
        #: object encoding event for event.
        self.events = 0

    def __len__(self) -> int:
        return self.events

    def rows(self) -> int:
        return len(self.data) // ROW_STRIDE

    def row(self, index: int) -> Tuple[int, ...]:
        base = index * ROW_STRIDE
        return tuple(self.data[base:base + ROW_STRIDE])


def partition_rows(data: array, n_shards: int) -> Tuple[List[array], List[int]]:
    """Split a block's rows into per-shard payloads plus master-only rows.

    Access and classify rows (``kind <= KIND_CLASSIFY``) partition by
    ``obj_id % n_shards`` — every PSE key contains the object id, so the
    per-shard row sets touch disjoint PSE entries and fold without locks.
    Alloc/escape/free rows mutate the master-side ASMT/reachability tables
    and are returned as a list of row base offsets into ``data`` for the
    master to fold in order.

    Used by both drains: the thread pool folds the shard arrays in-process,
    the process drain ships them over shared memory (``array('q')`` payloads
    are ``tobytes``-able without pickling rows).
    """
    shards = [array("q") for _ in range(n_shards)]
    other: List[int] = []
    for base in range(0, len(data), ROW_STRIDE):
        if data[base] <= KIND_CLASSIFY:
            shards[data[base + F_OBJ] % n_shards].extend(
                data[base:base + ROW_STRIDE]
            )
        else:
            other.append(base)
    return shards, other


class InternTable:
    """Value → dense id, with the reverse list exposed for O(1) decode."""

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: Dict = {}
        self.values: List = []

    def intern(self, value) -> int:
        ident = self.ids.get(value)
        if ident is None:
            ident = len(self.values)
            self.ids[value] = ident
            self.values.append(value)
        return ident

    def __len__(self) -> int:
        return len(self.values)
