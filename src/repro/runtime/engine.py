"""The CARMOT runtime engine and its VM hook adapter.

:class:`CarmotRuntime` owns the per-ROI PSECs, the ASMT, and the batching
pipeline; :class:`CarmotHooks` is the :class:`repro.vm.hooks.ExecutionHooks`
implementation that instrumented modules run with.  The hooks charge
main-thread costs (event pushes, callstack captures, Pin tracing) per the
cost model; FSA processing happens in the pipeline and is not charged to
the program's critical path, modelling the shadow-profiling design of §4.6.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DegradedResult, RuntimeToolError
from repro.ir.instructions import AccessKind, SourceLoc, VarInfo
from repro.ir.module import Module
from repro.resilience.degradation import (
    ACTION_CLASSIFY_ONLY,
    ACTION_CONSERVATIVE,
    ACTION_DELAYED,
    ACTION_FALLBACK,
    ACTION_RETRIED,
    CONSERVATIVE_READ,
    CONSERVATIVE_WRITE,
    DegradationRecord,
    DegradationReport,
)
from repro.parallel.procdrain import (
    E_COUNT,
    E_FIRST,
    E_FORCED,
    E_LAST,
    E_LEPOCH,
    E_LINV,
    E_STATE,
    E_USES,
    E_VARSITE,
    E_WSEEN,
    ProcDrain,
)
from repro.parallel.shards import ShardPool
from repro.resilience.faultinject import FaultInjector
from repro.runtime import fsa
from repro.runtime.asmt import Asmt, AsmtEntry
from repro.runtime.config import RuntimeConfig
from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ClassifyEvent,
    EscapeEvent,
    FreeEvent,
)
from repro.runtime.packed import (
    F_ACTIVE,
    F_AUX,
    F_COUNT,
    F_CS,
    F_LAST,
    F_OBJ,
    F_OFFSET,
    F_SITE,
    F_SIZE,
    F_STRIDE,
    F_TIME,
    KIND_ALLOC,
    KIND_CLASSIFY,
    KIND_ESCAPE,
    KIND_FREE,
    KIND_WRITE,
    ROW_STRIDE,
    InternTable,
    PackedBlock,
    partition_rows,
)
from repro.runtime.pipeline import Batch, BatchingPipeline, Failure
from repro.runtime.psec import MemoryBudgetExceeded, Psec, PseKey, PsecEntry
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.hooks import ExecutionHooks
from repro.vm.memory import MemoryObject

#: Conservative set letters applied when an access event is lost or its
#: ROI is over budget (the PSE lands in a conservative superset of its
#: true Sets, never nowhere).  Canonical values live in
#: :mod:`repro.resilience.degradation`, shared with the process-drain
#: workers, which must degrade byte-identically.
_CONSERVATIVE_READ = CONSERVATIVE_READ
_CONSERVATIVE_WRITE = CONSERVATIVE_WRITE


@dataclass
class RuntimeStats:
    """Counters used by tests and the experiment harnesses."""

    access_events: int = 0
    aggregated_events: int = 0
    classify_events: int = 0
    #: ``probe.static`` executions (prescreen facts): synchronous
    #: bookkeeping, never an event in the pipeline.
    static_probe_events: int = 0
    alloc_events: int = 0
    escape_events: int = 0
    pin_accesses: int = 0
    pin_attaches: int = 0
    callstack_captures: int = 0
    events_ignored_outside_roi: int = 0
    #: Intern-table sizes, filled in by :meth:`CarmotRuntime.finish`.  The
    #: packed encoding's dense-id tables; ``pse_keys_interned`` and
    #: ``source_locs_interned`` are maintained in both encodings.
    pse_keys_interned: int = 0
    callsites_interned: int = 0
    callstacks_interned: int = 0
    active_sets_interned: int = 0
    source_locs_interned: int = 0


class CarmotRuntime:
    """Builds one PSEC per ROI from the event stream."""

    def __init__(self, module: Module, config: Optional[RuntimeConfig] = None):
        self.module = module
        self.config = config or RuntimeConfig()
        self.asmt = Asmt()
        self.stats = RuntimeStats()
        self.psecs: Dict[int, Psec] = {}
        for roi_id, info in module.rois.items():
            self.psecs[roi_id] = Psec(
                roi_id=roi_id, roi_name=info.name, abstraction=info.abstraction
            )
        self._active: List[Tuple[int, int, int]] = []  # (roi, inv, epoch)
        self._invocations: Dict[int, int] = {roi_id: 0 for roi_id in module.rois}
        self._epochs: Dict[int, int] = {roi_id: 0 for roi_id in module.rois}
        resilience = self.config.resilience
        self._resilience = resilience
        self.degradation = DegradationReport()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None else None
        )
        #: Per-ROI event budget state (only consulted when a budget is set,
        #: keeping the default hot path untouched).
        self._event_budget = resilience.max_events_per_roi > 0
        self._roi_event_counts: Dict[int, int] = {
            roi_id: 0 for roi_id in module.rois
        }
        self._budget_tripped: Set[int] = set()
        self.pipeline = BatchingPipeline(
            batch_size=self.config.batch_size,
            process=self._process_batch,
            postprocess=self._postprocess_batch,
            threaded=self.config.threaded,
            worker_count=self.config.worker_count,
            max_queue_batches=resilience.max_queue_batches,
            queue_policy=resilience.queue_policy,
            max_retries=resilience.max_retries,
            retry_backoff=resilience.retry_backoff,
            degrade=resilience.degrade,
            on_degraded=self._apply_degraded_batch,
            on_retry=self._note_retry,
            injector=self.injector,
        )
        #: PSE-key interning (both encodings): one shared tuple instance
        #: per key, even when the key appears in several ROIs' PSECs.
        self._pse_keys: Dict[PseKey, PseKey] = {}
        self._var_keys: Dict[int, PseKey] = {}
        #: Prescreen sidecar: compile-time Set verdicts, resolved into
        #: the PSECs at :meth:`finish`.  ``_static_notes`` accumulates
        #: per-(fact, object) observations: [first_time, base_offset,
        #: var, {epoch: invocation count}].
        self.static_facts = getattr(module, "static_facts", None)
        self._static_notes: Dict[Tuple[int, int], List] = {}
        #: Packed-encoding state (None/unused for the object encoding).
        self._packed = self.config.event_encoding == "packed"
        self._shard_pool: Optional[ShardPool] = None
        self._proc_drain: Optional[ProcDrain] = None
        #: Robustness trajectory of this run's drain, surfaced in bench
        #: leg metadata: respawned workers, replayed batches, in-process
        #: fallbacks ("inproc"/"threads"/"procs" resolved from ``drain``).
        self.drain_stats: Dict[str, object] = {
            "mode": "inproc", "workers": 0, "replays": 0,
            "worker_respawns": 0, "fallbacks": 0,
        }
        if self._packed:
            self._block = PackedBlock()
            self._block_limit = self.config.batch_size
            self._block_events = 0
            #: Run-merge anchors: nine-field row head → base offset of the
            #: anchor row in the current block (reset at every flush).
            self._anchors: Dict[Tuple, int] = {}
            self._cs = InternTable()
            self._actives = InternTable()
            self._letters = InternTable()
            #: site id → (var, loc, str(loc)); ids 0..n-1 match the
            #: compile-time ``module.site_table`` so probes can carry them.
            self._site_values: List[Tuple] = []
            self._site_ids: Dict[Tuple[int, int], int] = {}
            for var, loc in getattr(module, "site_table", ()) or ():
                self._register_site(var, loc)
            self._active_tuple: Tuple = ()
            self._active_id = self._actives.intern(())
            drain = self.config.drain
            if drain == "auto":
                drain = ("threads" if self.config.pipeline_shards > 1
                         else "inproc")
            if drain == "threads":
                shards = max(2, self.config.pipeline_shards)
                self._shard_pool = ShardPool(shards)
                self.drain_stats["mode"] = "threads"
                self.drain_stats["workers"] = shards
            elif drain == "procs":
                self._start_proc_drain()

    # -- multi-process drain supervision -------------------------------------

    def _start_proc_drain(self) -> None:
        """Spawn the supervised worker-process pool (``--drain procs``).

        An unspawnable pool is not fatal: the run falls back to the
        in-process flat fold and records a canonical DegradationRecord
        (exact result, visible intervention) — the same contract as a
        pool lost mid-run.
        """
        shards = self.config.pipeline_shards
        if shards <= 1:
            shards = max(2, min(4, os.cpu_count() or 2))
        exit_specs = (self.injector.exit_specs()
                      if self.injector is not None else {})
        try:
            self._proc_drain = ProcDrain(
                n_workers=shards,
                site_values=self._site_values,
                cs_values=self._cs.values,
                active_values=self._actives.values,
                letters_values=self._letters.values,
                track_uses=self.config.policy.track_use_callstacks,
                exit_specs=exit_specs,
                max_respawns=self._resilience.max_retries,
                heartbeat_ms=self._resilience.heartbeat_ms,
                deadline_ms=self._resilience.worker_deadline_ms,
                ring_capacity=max(
                    1 << 20, 4 * self.config.batch_size * ROW_STRIDE * 8
                ),
                on_counters=self._apply_shard_counters,
                on_respawn=self._note_worker_respawn,
                on_fallback=self._note_worker_lost,
            )
        except Exception as exc:
            self.drain_stats["mode"] = "inproc"
            self.drain_stats["fallbacks"] = (
                int(self.drain_stats["fallbacks"]) + 1
            )
            self.degradation.add(DegradationRecord(
                batch_seq=-1, kind="worker_pool", rois=(), events=0,
                action=ACTION_FALLBACK, sets_complete=True,
                use_callstacks_complete=True,
                detail=(f"worker pool unspawnable "
                        f"({type(exc).__name__}: {exc}); "
                        "using the in-process flat fold"),
            ))
            return
        self.drain_stats["mode"] = "procs"
        self.drain_stats["workers"] = shards

    def _apply_shard_counters(self, counters: Dict[int, List[int]]) -> None:
        """Apply one ack's per-ROI (accesses, new use records) delta.

        The use-record budget is checked at ack granularity — the procs
        drain can overrun by the batches in flight, the same batch-level
        deviation the threaded shard fold documents.
        """
        max_use = self.config.max_use_records
        for roi_id, (accesses, new_uses) in counters.items():
            psec = self.psecs[roi_id]
            psec.total_accesses += accesses
            psec.use_records += new_uses
            if max_use and psec.use_records > max_use:
                raise MemoryBudgetExceeded(
                    f"ROI {psec.roi_id}: more than {max_use} "
                    "use-callstack records"
                )

    def _note_worker_respawn(self, index: int, attempt: int,
                             replayed: int) -> None:
        """A worker died and was respawned: the replay recovers exactly,
        so no DegradationRecord — but the retry is charged to the same
        deterministic virtual-backoff clock as pipeline retries, and the
        counters expose it."""
        self.drain_stats["worker_respawns"] = (
            int(self.drain_stats["worker_respawns"]) + 1
        )
        self.drain_stats["replays"] = (
            int(self.drain_stats["replays"]) + replayed
        )
        self.pipeline.virtual_backoff += (
            self._resilience.retry_backoff * (1 << (attempt - 1))
        )

    def _note_worker_lost(self, index: int, first_seq: int,
                          detail: str) -> None:
        """A shard exceeded its respawn budget (or could not respawn) and
        was absorbed into the in-process fold.  The fold stays exact —
        ``sets_complete=True`` — but the intervention is on record."""
        self.drain_stats["fallbacks"] = (
            int(self.drain_stats["fallbacks"]) + 1
        )
        self.degradation.add(DegradationRecord(
            batch_seq=first_seq, kind="worker_lost", rois=(), events=0,
            action=ACTION_FALLBACK, sets_complete=True,
            use_callstacks_complete=True, detail=detail,
        ))

    def _merge_proc_states(self, states: Dict[int, Dict]) -> None:
        """Fold the workers' canonical end states into the PSECs.

        Shard disjointness (every PSE key contains its obj_id, rows shard
        by obj_id) makes this a pure insert; the defensive merge branch
        combines conservatively if that invariant is ever violated.
        Per-ROI counters were already applied per ack — only the entries
        themselves move here.
        """
        intern_key = self._pse_keys.setdefault
        var_keys = self._var_keys
        site_values = self._site_values
        for index in sorted(states):
            for (roi_id, key), worker_entry in states[index].items():
                psec = self.psecs[roi_id]
                if key[0] == "var":
                    interned = var_keys.get(key[1])
                    if interned is None:
                        interned = intern_key(key, key)
                        var_keys[key[1]] = interned
                else:
                    interned = intern_key(key, key)
                varsite = worker_entry[E_VARSITE]
                var = site_values[varsite][0] if varsite >= 0 else None
                entry = psec.entries.get(interned)
                if entry is None:
                    entry = PsecEntry(interned, var)
                    entry.state_code = worker_entry[E_STATE]
                    entry.forced = worker_entry[E_FORCED]
                    entry.last_invocation = worker_entry[E_LINV]
                    entry.last_epoch = worker_entry[E_LEPOCH]
                    entry.first_time = worker_entry[E_FIRST]
                    entry.last_time = worker_entry[E_LAST]
                    entry.write_seen = bool(worker_entry[E_WSEEN])
                    entry.access_count = worker_entry[E_COUNT]
                    entry.uses = worker_entry[E_USES]
                    psec.entries[interned] = entry
                    continue
                if var is not None and entry.var is None:
                    entry.var = var
                letters = set(entry.forced) | set(fsa.force_states(
                    fsa.STATES[worker_entry[E_STATE]],
                    worker_entry[E_FORCED],
                ).sets)
                if "T" in letters:
                    letters.discard("C")
                entry.forced = "".join(sorted(letters))
                entry.access_count += worker_entry[E_COUNT]
                entry.write_seen = (entry.write_seen
                                    or bool(worker_entry[E_WSEEN]))
                if worker_entry[E_FIRST] is not None:
                    entry.first_time = (
                        worker_entry[E_FIRST] if entry.first_time is None
                        else min(entry.first_time, worker_entry[E_FIRST])
                    )
                if worker_entry[E_LAST] is not None:
                    entry.last_time = (
                        worker_entry[E_LAST] if entry.last_time is None
                        else max(entry.last_time, worker_entry[E_LAST])
                    )
                entry.uses |= worker_entry[E_USES]

    # -- ROI lifecycle ------------------------------------------------------

    def roi_begin(self, roi_id: int) -> None:
        self._invocations[roi_id] += 1
        self._active.append(
            (roi_id, self._invocations[roi_id], self._epochs[roi_id])
        )
        self.psecs[roi_id].invocations += 1
        if self._packed:
            self._active_tuple = tuple(self._active)
            self._active_id = self._actives.intern(self._active_tuple)

    def roi_reset(self, roi_id: int) -> None:
        """A new epoch: the ROI's loop is being entered afresh (§4.2)."""
        self._epochs[roi_id] += 1

    def roi_end(self, roi_id: int) -> None:
        for index in range(len(self._active) - 1, -1, -1):
            if self._active[index][0] == roi_id:
                del self._active[index]
                if self._packed:
                    self._active_tuple = tuple(self._active)
                    self._active_id = self._actives.intern(self._active_tuple)
                return

    @property
    def any_roi_active(self) -> bool:
        return bool(self._active)

    def active_snapshot(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._active)

    def static_note(self, fact_index: int, obj_id: int, base_offset: int,
                    var, roi_id: int, time: int) -> None:
        """Record one ``probe.static`` execution (one ROI invocation).

        Only counts are kept per epoch; the letters resolve at
        :meth:`finish`, after all dynamic folds, exactly like the FSA's
        epoch-commit rule: ``once`` letters for single-invocation
        epochs, ``steady`` letters otherwise, unioned across epochs."""
        self.stats.static_probe_events += 1
        epoch = self._epochs[roi_id]
        note = self._static_notes.get((fact_index, obj_id))
        if note is None:
            self._static_notes[(fact_index, obj_id)] = [
                time, base_offset, var, {epoch: 1}
            ]
        else:
            counts = note[3]
            counts[epoch] = counts.get(epoch, 0) + 1

    def _resolve_static_facts(self) -> None:
        """Merge the prescreen verdicts into the PSECs (§4.2 rules)."""
        if not self._static_notes:
            return
        if self.static_facts is None:
            raise RuntimeToolError(
                "probe.static executed but the module carries no "
                "prescreen static facts sidecar"
            )
        facts = self.static_facts.facts
        intern_key = self._pse_keys.setdefault
        for fact_index, obj_id in sorted(self._static_notes):
            first_time, base_offset, var, epoch_counts = (
                self._static_notes[(fact_index, obj_id)]
            )
            fact = facts[fact_index]
            psec = self.psecs.get(fact.roi_id)
            if psec is None:
                continue
            letters: Set[str] = set()
            for count in epoch_counts.values():
                letters |= set(fact.once_letters if count == 1
                               else fact.steady_letters)
            if "T" in letters:
                letters.discard("C")
            text = "".join(sorted(letters))
            if fact.kind == "slot":
                key = self._var_keys.get(obj_id)
                if key is None:
                    key = intern_key(
                        ("var", obj_id), ("var", obj_id)
                    )
                    self._var_keys[obj_id] = key
                psec.force_classification(key, var, text, first_time)
            else:
                for index in range(fact.count):
                    offset = base_offset + fact.start + index * fact.stride
                    key = ("mem", obj_id, offset, fact.size)
                    psec.force_classification(
                        intern_key(key, key), None, text, first_time
                    )

    def finish(self) -> None:
        try:
            if self._packed:
                self._flush_block()
            self.pipeline.close()
            if self._proc_drain is not None:
                states = self._proc_drain.close()
                self._proc_drain = None
                self._merge_proc_states(states)
            self._resolve_static_facts()
        finally:
            if self._proc_drain is not None:
                # Close failed part-way: kill the pool and release its
                # shared memory rather than leak worker processes.
                self._proc_drain.abort()
                self._proc_drain = None
            if self._shard_pool is not None:
                self._shard_pool.close()
                self._shard_pool = None
            self.stats.pse_keys_interned = len(self._pse_keys)
            self.stats.source_locs_interned = SourceLoc.interned_count()
            if self._packed:
                self.stats.callsites_interned = len(self._site_values)
                self.stats.callstacks_interned = len(self._cs)
                self.stats.active_sets_interned = len(self._actives)
        for seq, delay in self.pipeline.slow_batches:
            self.degradation.add(DegradationRecord(
                batch_seq=seq, kind="slow", rois=(), events=0,
                action=ACTION_DELAYED, sets_complete=True,
                use_callstacks_complete=True,
                detail=f"injected {delay} virtual time units of latency",
            ))
        for roi_id in self.degradation.degraded_rois():
            psec = self.psecs.get(roi_id)
            if psec is None:
                continue
            psec.degraded = True
            psec.degradation_reasons = self.degradation.reasons_for(roi_id)
            psec.sets_exact = self.degradation.sets_complete_for(roi_id)
            psec.use_callstacks_complete = (
                self.degradation.use_callstacks_complete_for(roi_id)
            )
        for psec in self.psecs.values():
            psec.check_invariants()

    @property
    def degraded(self) -> bool:
        return self.degradation.degraded

    def require_complete(self) -> None:
        """Raise :class:`DegradedResult` if the run needed fail-soft
        intervention (callers that demand exact PSECs)."""
        if self.degradation.degraded:
            raise DegradedResult(
                "profiling run completed in degraded mode: "
                + self.degradation.summary(),
                report=self.degradation,
            )

    # -- event submission ----------------------------------------------------

    def submit(self, event) -> None:
        """Route one event into the pipeline, honouring per-ROI budgets."""
        if self._event_budget:
            event = self._filter_event(event)
            if event is None:
                return
        self.pipeline.push(event)

    def _filter_event(self, event):
        """Per-ROI event budget: past the limit an ROI stops full FSA/
        use-callstack tracking and records conservative letters instead.

        Returns the (possibly narrowed) event to push, or None if every
        active ROI is over budget and the event was fully converted.
        """
        active = getattr(event, "active", ())
        if not active:
            return event
        over, under = self._budget_note(active)
        if not over or type(event) is not AccessEvent:
            # Non-access events (alloc/escape/free/classify) are rare and
            # keep the ASMT and reachability graph complete: forward them
            # unchanged even past the budget.
            return event
        letters = _CONSERVATIVE_WRITE if event.is_write else _CONSERVATIVE_READ
        self.pipeline.push(ClassifyEvent(
            states=letters, obj_id=event.obj_id, offset=event.offset,
            size=event.size, count=event.count, stride=event.stride,
            var=event.var, loc=event.loc, active=tuple(over),
            time=event.time,
        ))
        if not under:
            return None
        return replace(event, active=tuple(under))

    def _budget_note(self, active):
        """Per-ROI budget bookkeeping shared by both encodings: count the
        event against every active ROI and split the snapshot into
        (over-budget, under-budget) entries."""
        limit = self._resilience.max_events_per_roi
        over: List[Tuple[int, int, int]] = []
        under: List[Tuple[int, int, int]] = []
        for entry in active:
            roi_id = entry[0]
            count = self._roi_event_counts.get(roi_id, 0) + 1
            self._roi_event_counts[roi_id] = count
            if count > limit:
                over.append(entry)
                if roi_id not in self._budget_tripped:
                    self._budget_tripped.add(roi_id)
                    self.degradation.add(DegradationRecord(
                        batch_seq=-1, kind="event-budget", rois=(roi_id,),
                        events=0, action=ACTION_CLASSIFY_ONLY,
                        sets_complete=False, use_callstacks_complete=False,
                        detail=(f"ROI {roi_id} exceeded {limit} events; "
                                "switched to conservative classification"),
                    ))
            else:
                under.append(entry)
        return over, under

    # -- packed-encoding sink ------------------------------------------------

    def _register_site(self, var, loc) -> int:
        site_id = len(self._site_values)
        self._site_values.append((var, loc, str(loc) if loc else "?"))
        self._site_ids[(id(var), id(loc))] = site_id
        return site_id

    def _site_for(self, var, loc) -> int:
        """Runtime fallback for probes without a compile-time site id
        (direct ``instrument_module`` use, Pin accesses, escapes)."""
        site_id = self._site_ids.get((id(var), id(loc)))
        if site_id is None:
            site_id = self._register_site(var, loc)
        return site_id

    def _flush_block(self) -> None:
        block = self._block
        if block.data:
            block.events = self._block_events
            self._block = PackedBlock()
            self._block_events = 0
            self._anchors.clear()
            self.pipeline.push_block(block)

    def packed_access(self, is_write, obj_id, offset, size, count, stride,
                      var, loc, site_id, callstack, time) -> None:
        """Append one access row — or run-merge it into an identical one.

        The packed twin of submitting an :class:`AccessEvent` (budget
        narrowing included).  An access whose nine head fields match an
        anchor row already in the block (a loop body re-executing the same
        access in the same ROI invocation) bumps the anchor's repeat count
        and last-time instead of appending; the fold replays repeats
        exactly (see :mod:`repro.runtime.packed`).  Event budgets disable
        merging so per-event narrowing keeps its row-per-event shape.
        """
        if site_id is None:
            site_id = self._site_for(var, loc)
        # Inlined InternTable.intern: one dict probe on the hit path.
        cs = self._cs
        cs_id = cs.ids.get(callstack)
        if cs_id is None:
            cs_id = cs.intern(callstack)
        stride = stride or 0
        block = self._block
        if self._event_budget:
            over, under = self._budget_note(self._active_tuple)
            if over:
                letters = (_CONSERVATIVE_WRITE if is_write
                           else _CONSERVATIVE_READ)
                block.data.extend((
                    KIND_CLASSIFY, obj_id, offset, size, count, stride,
                    site_id, 0, self._actives.intern(tuple(over)), time,
                    self._letters.intern(letters), time,
                ))
                self._block_events += 1
                if self._block_events >= self._block_limit:
                    self._flush_block()
                if not under:
                    return
                self._block.data.extend((
                    is_write, obj_id, offset, size, count, stride,
                    site_id, cs_id, self._actives.intern(tuple(under)),
                    time, 0, time,
                ))
                self._block_events += 1
                if self._block_events >= self._block_limit:
                    self._flush_block()
                return
            block.data.extend((
                is_write, obj_id, offset, size, count, stride,
                site_id, cs_id, self._active_id, time, 0, time,
            ))
            self._block_events += 1
            if self._block_events >= self._block_limit:
                self._flush_block()
            return
        head = (is_write, obj_id, offset, size, count, stride,
                site_id, cs_id, self._active_id)
        anchors = self._anchors
        base = anchors.get(head)
        data = block.data
        if base is None:
            anchors[head] = len(data)
            data.extend(head)
            data.extend((time, 0, time))
        else:
            data[base + F_AUX] += 1
            data[base + F_LAST] = time
        events = self._block_events + 1
        self._block_events = events
        if events >= self._block_limit:
            self._flush_block()

    def packed_classify(self, states, obj_id, offset, size, count, stride,
                        var, loc, site_id, active, time) -> None:
        """``active=None`` stamps the current snapshot; an explicit tuple
        is the hoisted-probe case (``roi_id`` binding)."""
        if site_id is None:
            site_id = self._site_for(var, loc)
        if active is None:
            active_tuple, active_id = self._active_tuple, self._active_id
        else:
            active_tuple, active_id = active, self._actives.intern(active)
        if self._event_budget and active_tuple:
            self._budget_note(active_tuple)
        block = self._block
        block.data.extend((
            KIND_CLASSIFY, obj_id, offset, size, count, stride or 0,
            site_id, 0, active_id, time, self._letters.intern(states), time,
        ))
        self._block_events += 1
        if self._block_events >= self._block_limit:
            self._flush_block()

    def packed_alloc(self, obj: MemoryObject, time: int) -> None:
        if self._event_budget and self._active_tuple:
            self._budget_note(self._active_tuple)
        block = self._block
        aux = len(block.side)
        block.side.append(
            (obj.kind, obj.var, obj.alloc_loc, obj.alloc_callstack)
        )
        block.data.extend((
            KIND_ALLOC, obj.obj_id, 0, obj.size, 0, 0, 0, 0,
            self._active_id, time, aux, time,
        ))
        self._block_events += 1
        if self._block_events >= self._block_limit:
            self._flush_block()

    def packed_escape(self, src_obj, src_offset, dst_obj, loc, time) -> None:
        if self._event_budget and self._active_tuple:
            self._budget_note(self._active_tuple)
        site_id = self._site_for(None, loc)
        block = self._block
        block.data.extend((
            KIND_ESCAPE, src_obj, src_offset, 0, 0, 0, site_id, 0,
            self._active_id, time, dst_obj, time,
        ))
        self._block_events += 1
        if self._block_events >= self._block_limit:
            self._flush_block()

    def packed_free(self, obj_id: int, time: int) -> None:
        if self._event_budget and self._active_tuple:
            self._budget_note(self._active_tuple)
        block = self._block
        block.data.extend((
            KIND_FREE, obj_id, 0, 0, 0, 0, 0, 0, self._active_id, time, 0,
            time,
        ))
        self._block_events += 1
        if self._block_events >= self._block_limit:
            self._flush_block()

    # -- degraded-mode fallback ----------------------------------------------

    def _note_retry(self, batch: Batch, attempt: int,
                    exc: BaseException) -> None:
        """A batch failed and is being retried (recoverable): nothing is
        lost, but the run needed intervention — record it."""
        rois: Set[int] = set()
        events = batch.events
        if type(events) is PackedBlock:
            active_values = self._actives.values
            data = events.data
            for base in range(F_ACTIVE, len(data), ROW_STRIDE):
                for entry in active_values[data[base]]:
                    rois.add(entry[0])
        else:
            for event in events:
                for entry in getattr(event, "active", ()):
                    rois.add(entry[0])
        self.degradation.add(DegradationRecord(
            batch_seq=batch.seq, kind="worker_crash",
            rois=tuple(sorted(rois)), events=len(batch.events),
            action=ACTION_RETRIED, sets_complete=True,
            use_callstacks_complete=True,
            detail=f"attempt {attempt}: {type(exc).__name__}: {exc}",
        ))

    def _apply_degraded_batch(self, batch: Batch, failure: Failure) -> None:
        """A batch is unrecoverable (retries exhausted, dropped, or shed):
        apply conservative classification instead of the full FSA.

        Reads force Input, writes force Output+Transfer; allocations,
        escapes, and frees still apply exactly (they are order-insensitive
        here), so the ASMT and reachability graph never lose nodes.  Runs
        in batch sequence order via the pipeline's reorder buffer.
        """
        kind, detail = failure
        if type(batch.events) is PackedBlock:
            if self._proc_drain is not None:
                rois = self._degrade_block_procs(batch.events, batch.seq)
            else:
                rois = self._degrade_block(batch.events)
            self.degradation.add(DegradationRecord(
                batch_seq=batch.seq, kind=kind, rois=tuple(sorted(rois)),
                events=len(batch.events), action=ACTION_CONSERVATIVE,
                sets_complete=False, use_callstacks_complete=False,
                detail=detail,
            ))
            return
        rois: Set[int] = set()
        for event in batch.events:
            etype = type(event)
            if etype is AccessEvent:
                letters = (_CONSERVATIVE_WRITE if event.is_write
                           else _CONSERVATIVE_READ)
                for key, var in self._keys_for(event):
                    for roi_id, _, _ in event.active:
                        self.psecs[roi_id].force_classification(
                            key, var, letters, event.time
                        )
                        rois.add(roi_id)
            elif etype is ClassifyEvent:
                self._apply_classify(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is AllocEvent:
                self._apply_alloc(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is EscapeEvent:
                self._apply_escape(event)
                rois.update(entry[0] for entry in event.active)
            elif etype is FreeEvent:
                self._apply_free(event)
        self.degradation.add(DegradationRecord(
            batch_seq=batch.seq, kind=kind, rois=tuple(sorted(rois)),
            events=len(batch.events), action=ACTION_CONSERVATIVE,
            sets_complete=False, use_callstacks_complete=False,
            detail=detail,
        ))

    # -- batch stages --------------------------------------------------------

    def _process_batch(self, batch: Batch) -> Batch:
        """Worker stage: order-insensitive per-event work.

        Everything order-sensitive (the FSA) lives in postprocess; this
        stage exists to model the parallelizable portion of Figure 5 and to
        keep the threaded mode honest (it must not touch shared state).
        """
        return batch

    def _postprocess_batch(self, batch: Batch) -> None:
        events = batch.events
        if type(events) is PackedBlock:
            if self._proc_drain is not None:
                shards, other = partition_rows(events.data,
                                               self._proc_drain.n)
                self._proc_drain.dispatch(batch.seq, shards)
                self._fold_rows(events, other, None)
            elif self._shard_pool is not None:
                self._fold_sharded(events)
            else:
                self._fold_rows(
                    events, range(0, len(events.data), ROW_STRIDE), None
                )
            return
        for event in events:
            kind = type(event)
            if kind is AccessEvent:
                self._apply_access(event)
            elif kind is ClassifyEvent:
                self._apply_classify(event)
            elif kind is AllocEvent:
                self._apply_alloc(event)
            elif kind is EscapeEvent:
                self._apply_escape(event)
            elif kind is FreeEvent:
                self._apply_free(event)

    # -- packed fold (the flat-table FSA kernel) ------------------------------

    def _fold_rows(self, block: PackedBlock, bases, counters) -> None:
        """Fold packed rows into the PSECs in one tight loop.

        ``bases`` are row start offsets into ``block.data`` (ascending =
        event order).  With ``counters=None`` (deterministic drain) the
        per-ROI ``total_accesses``/``use_records`` counters and the
        use-record budget are applied per event, byte-identical to the
        object encoding.  A shard fold passes its private ``counters``
        dict ({roi_id: [accesses, new_use_records]}) instead, merged on
        the drain thread after the join — shards then never write shared
        counters (entries are already shard-private: a PSE key contains
        its obj_id, and rows are sharded by obj_id).
        """
        data = block.data
        site_values = self._site_values
        cs_values = self._cs.values
        active_values = self._actives.values
        letters_values = self._letters.values
        psecs = self.psecs
        flat = fsa.FLAT_TRANSITIONS
        track_uses = self.config.policy.track_use_callstacks
        max_use = self.config.max_use_records if counters is None else 0
        var_keys = self._var_keys
        intern_key = self._pse_keys.setdefault
        use = None
        #: Per-site row-identity cache: an access row identical to the last
        #: row seen for its site (all nine head fields — same kind, PSE,
        #: callstack, and active snapshot) repeats a loop-body access the
        #: full path already resolved: its (entry, sink) cells are known,
        #: its use record is already present, its invocation and epoch are
        #: already committed (same active id), so only the FSA step and the
        #: counters remain.  The head comparison is one C-level array
        #: compare of the sliced row.
        site_cache: Dict[int, Tuple] = {}
        cache_get = site_cache.get
        for base in bases:
            kind = data[base]
            if kind <= KIND_WRITE:
                head = data[base:base + F_TIME]
                site = data[base + F_SITE]
                cached = cache_get(site)
                if cached is not None and cached[0] == head:
                    # One non-fresh step covers any repeat count: the flat
                    # table is idempotent on non-fresh events (fixpoint
                    # property, asserted in tests), so merged repeats only
                    # add to the counters and the max last-time.
                    t_last = data[base + F_LAST]
                    n = data[base + F_AUX] + 1
                    event_code = kind + 2
                    if counters is None:
                        for entry, psec in cached[1]:
                            state_code = flat[entry.state_code * 4
                                              + event_code]
                            if state_code < 0:
                                fsa.step_code(entry.state_code, event_code)
                            entry.state_code = state_code
                            entry.access_count += n
                            if t_last > entry.last_time:
                                entry.last_time = t_last
                            psec.total_accesses += n
                    else:
                        for entry, counter in cached[1]:
                            state_code = flat[entry.state_code * 4
                                              + event_code]
                            if state_code < 0:
                                fsa.step_code(entry.state_code, event_code)
                            entry.state_code = state_code
                            entry.access_count += n
                            if t_last > entry.last_time:
                                entry.last_time = t_last
                            counter[0] += n
                    continue
                obj = data[base + F_OBJ]
                var, _, loc_str = site_values[site]
                count = data[base + F_COUNT]
                time = data[base + F_TIME]
                t_last = data[base + F_LAST]
                reps = data[base + F_AUX]
                n = reps + 1
                active = active_values[data[base + F_ACTIVE]]
                if var is not None and count == 1:
                    key = var_keys.get(obj)
                    if key is None:
                        key = intern_key(("var", obj), ("var", obj))
                        var_keys[obj] = key
                    keys = (key,)
                else:
                    size = data[base + F_SIZE]
                    stride = data[base + F_STRIDE] or size
                    offset = data[base + F_OFFSET]
                    keys = tuple(
                        intern_key(k, k) for k in (
                            ("mem", obj, offset + j * stride, size)
                            for j in range(count)
                        )
                    )
                if track_uses:
                    use = (loc_str, cs_values[data[base + F_CS]])
                cells = []
                for key in keys:
                    for roi_id, invocation, epoch in active:
                        psec = psecs[roi_id]
                        entries = psec.entries
                        entry = entries.get(key)
                        if entry is None:
                            entry = PsecEntry(key, var)
                            entries[key] = entry
                        elif var is not None and entry.var is None:
                            entry.var = var
                        if epoch != entry.last_epoch:
                            entry.forced = "".join(sorted(fsa.force_states(
                                fsa.STATES[entry.state_code], entry.forced
                            ).sets))
                            entry.state_code = 0
                            entry.last_invocation = -1
                            entry.last_epoch = epoch
                        event_code = (
                            kind if invocation != entry.last_invocation
                            else kind + 2
                        )
                        state_code = flat[entry.state_code * 4 + event_code]
                        if state_code < 0:
                            fsa.step_code(entry.state_code, event_code)
                        if reps:
                            # Merged repeats are non-fresh by construction
                            # (same active id ⇒ same invocation); one step
                            # reaches the table's non-fresh fixpoint.
                            prev = state_code
                            state_code = flat[prev * 4 + kind + 2]
                            if state_code < 0:
                                fsa.step_code(prev, kind + 2)
                        entry.state_code = state_code
                        if kind:
                            entry.write_seen = True
                        entry.access_count += n
                        entry.last_invocation = invocation
                        if entry.first_time is None:
                            entry.first_time = time
                        if entry.last_time is None or t_last > entry.last_time:
                            entry.last_time = t_last
                        if counters is None:
                            psec.total_accesses += n
                            cells.append((entry, psec))
                            if track_uses and use not in entry.uses:
                                entry.uses.add(use)
                                psec.use_records += 1
                                if max_use and psec.use_records > max_use:
                                    raise MemoryBudgetExceeded(
                                        f"ROI {psec.roi_id}: more than "
                                        f"{max_use} use-callstack records"
                                    )
                        else:
                            counter = counters.get(roi_id)
                            if counter is None:
                                counter = [0, 0]
                                counters[roi_id] = counter
                            counter[0] += n
                            cells.append((entry, counter))
                            if track_uses and use not in entry.uses:
                                entry.uses.add(use)
                                counter[1] += 1
                site_cache[site] = (head, cells)
            elif kind == KIND_CLASSIFY:
                obj = data[base + F_OBJ]
                var, _, _ = site_values[data[base + F_SITE]]
                letters = letters_values[data[base + F_AUX]]
                time = data[base + F_TIME]
                if var is not None and data[base + F_COUNT] == 1:
                    keys = (intern_key(("var", obj), ("var", obj)),)
                else:
                    size = data[base + F_SIZE]
                    stride = data[base + F_STRIDE] or size
                    offset = data[base + F_OFFSET]
                    keys = tuple(
                        intern_key(k, k) for k in (
                            ("mem", obj, offset + j * stride, size)
                            for j in range(data[base + F_COUNT])
                        )
                    )
                for key in keys:
                    for roi_id, _, _ in active_values[data[base + F_ACTIVE]]:
                        psecs[roi_id].force_classification(
                            key, var, letters, time
                        )
            elif kind == KIND_ALLOC:
                akind, var, loc, callstack = block.side[data[base + F_AUX]]
                obj = data[base + F_OBJ]
                time = data[base + F_TIME]
                self.asmt.register(AsmtEntry(
                    obj_id=obj, size=data[base + F_SIZE], kind=akind,
                    var=var, alloc_loc=loc, alloc_callstack=callstack,
                    alloc_time=time,
                ))
                if self.config.policy.track_reachability:
                    for roi_id, _, _ in active_values[data[base + F_ACTIVE]]:
                        psec = psecs[roi_id]
                        psec.allocated_in_roi.add(obj)
                        psec.reachability.add_node(obj, True, time)
            elif kind == KIND_ESCAPE:
                _, loc, _ = site_values[data[base + F_SITE]]
                loc_repr = str(loc) if loc else None
                for roi_id, _, _ in active_values[data[base + F_ACTIVE]]:
                    psecs[roi_id].reachability.add_edge(
                        data[base + F_OBJ], data[base + F_AUX],
                        data[base + F_OFFSET], data[base + F_TIME], loc_repr,
                    )
            else:  # KIND_FREE
                self.asmt.mark_freed(data[base + F_OBJ], data[base + F_TIME])

    def _fold_sharded(self, block: PackedBlock) -> None:
        """Partition access/classify rows by ``obj_id % n_shards`` and fold
        the shards concurrently; everything touching shared structures
        (ASMT, reachability, per-ROI counters, the use-record budget)
        stays on — or is merged back on — the drain thread."""
        n = self._shard_pool.n
        data = block.data
        shard_bases: List[List[int]] = [[] for _ in range(n)]
        other: List[int] = []
        for base in range(0, len(data), ROW_STRIDE):
            if data[base] <= KIND_CLASSIFY:
                shard_bases[data[base + F_OBJ] % n].append(base)
            else:
                other.append(base)
        counters: List[Dict[int, List[int]]] = [{} for _ in range(n)]
        self._shard_pool.run([
            (lambda bases=bases, counter=counter:
             self._fold_rows(block, bases, counter))
            for bases, counter in zip(shard_bases, counters)
        ])
        for counter in counters:
            for roi_id, (accesses, new_uses) in counter.items():
                psec = self.psecs[roi_id]
                psec.total_accesses += accesses
                psec.use_records += new_uses
        max_use = self.config.max_use_records
        if max_use:
            # Batch-granularity budget check (the sharded fold can overrun
            # by at most one batch relative to the per-event check).
            for psec in self.psecs.values():
                if psec.use_records > max_use:
                    raise MemoryBudgetExceeded(
                        f"ROI {psec.roi_id}: more than {max_use} "
                        "use-callstack records"
                    )
        self._fold_rows(block, other, None)

    def _degrade_block(self, block: PackedBlock) -> Set[int]:
        """Packed twin of the object-encoding degraded fallback: force
        conservative letters for access rows, apply everything else."""
        data = block.data
        site_values = self._site_values
        active_values = self._actives.values
        intern_key = self._pse_keys.setdefault
        rois: Set[int] = set()
        for base in range(0, len(data), ROW_STRIDE):
            kind = data[base]
            if kind <= KIND_WRITE:
                obj = data[base + F_OBJ]
                var, _, _ = site_values[data[base + F_SITE]]
                letters = _CONSERVATIVE_WRITE if kind else _CONSERVATIVE_READ
                time = data[base + F_TIME]
                reps = data[base + F_AUX]
                if var is not None and data[base + F_COUNT] == 1:
                    keys = (intern_key(("var", obj), ("var", obj)),)
                else:
                    size = data[base + F_SIZE]
                    stride = data[base + F_STRIDE] or size
                    offset = data[base + F_OFFSET]
                    keys = tuple(
                        intern_key(k, k) for k in (
                            ("mem", obj, offset + j * stride, size)
                            for j in range(data[base + F_COUNT])
                        )
                    )
                for key in keys:
                    for roi_id, _, _ in active_values[data[base + F_ACTIVE]]:
                        psec = self.psecs[roi_id]
                        psec.force_classification(key, var, letters, time)
                        if reps:
                            # Replay run-merged repeats: the forced letters
                            # idempote; only the max last-time advances.
                            psec.force_classification(
                                key, var, letters, data[base + F_LAST]
                            )
                        rois.add(roi_id)
            elif kind == KIND_FREE:
                self.asmt.mark_freed(data[base + F_OBJ], data[base + F_TIME])
            else:
                # Classify/alloc/escape rows apply exactly (order-
                # insensitive here), so the ASMT and reachability graph
                # never lose nodes — same rule as the object encoding.
                self._fold_rows(block, (base,), None)
                for entry in active_values[data[base + F_ACTIVE]]:
                    rois.add(entry[0])
        return rois

    def _degrade_block_procs(self, block: PackedBlock, seq: int) -> Set[int]:
        """Degraded twin of the procs dispatch: ship the block's access/
        classify shards with the degraded flag (workers force the same
        conservative letters in sequence, keeping worker state canonical),
        apply the master-side rows like :meth:`_degrade_block` does."""
        data = block.data
        active_values = self._actives.values
        rois: Set[int] = set()
        for base in range(0, len(data), ROW_STRIDE):
            if data[base] != KIND_FREE:
                for entry in active_values[data[base + F_ACTIVE]]:
                    rois.add(entry[0])
        shards, other = partition_rows(data, self._proc_drain.n)
        self._proc_drain.dispatch(seq, shards, degraded=True)
        for base in other:
            if data[base] == KIND_FREE:
                self.asmt.mark_freed(data[base + F_OBJ],
                                     data[base + F_TIME])
            else:
                # Alloc/escape rows apply exactly, same as _degrade_block.
                self._fold_rows(block, (base,), None)
        return rois

    # -- event application ------------------------------------------------------

    def _keys_for(self, event) -> List[Tuple[PseKey, Optional[VarInfo]]]:
        intern_key = self._pse_keys.setdefault
        if event.var is not None and event.count == 1:
            key = self._var_keys.get(event.obj_id)
            if key is None:
                key = intern_key(
                    ("var", event.obj_id), ("var", event.obj_id)
                )
                self._var_keys[event.obj_id] = key
            return [(key, event.var)]
        keys = []
        for index in range(event.count):
            offset = event.offset + index * (event.stride or event.size)
            key = ("mem", event.obj_id, offset, event.size)
            keys.append((intern_key(key, key), event.var))
        return keys

    def _apply_access(self, event: AccessEvent) -> None:
        track_uses = self.config.policy.track_use_callstacks
        for key, var in self._keys_for(event):
            for roi_id, invocation, epoch in event.active:
                self.psecs[roi_id].record_access(
                    key, var, event.is_write, invocation, event.time,
                    event.loc, event.callstack, track_uses,
                    self.config.max_use_records, epoch,
                )

    def _apply_classify(self, event: ClassifyEvent) -> None:
        for key, var in self._keys_for(event):
            for roi_id, _, _ in event.active:
                self.psecs[roi_id].force_classification(
                    key, var, event.states, event.time
                )

    def _apply_alloc(self, event: AllocEvent) -> None:
        self.asmt.register(
            AsmtEntry(
                obj_id=event.obj_id,
                size=event.size,
                kind=event.kind,
                var=event.var,
                alloc_loc=event.loc,
                alloc_callstack=event.callstack,
                alloc_time=event.time,
            )
        )
        if self.config.policy.track_reachability:
            for roi_id, _, _ in event.active:
                psec = self.psecs[roi_id]
                psec.allocated_in_roi.add(event.obj_id)
                psec.reachability.add_node(event.obj_id, True, event.time)

    def _apply_escape(self, event: EscapeEvent) -> None:
        for roi_id, _, _ in event.active:
            self.psecs[roi_id].reachability.add_edge(
                event.src_obj, event.dst_obj, event.src_offset, event.time,
                str(event.loc) if event.loc else None,
            )

    def _apply_free(self, event: FreeEvent) -> None:
        self.asmt.mark_freed(event.obj_id, event.time)


class CarmotHooks(ExecutionHooks):
    """VM hook adapter: records events, charges main-thread costs.

    Both execution engines — the IR tree-walk and the register-bytecode
    dispatch loop — drive this same adapter, and the contract is shared:
    before any hook fires, the engine must have spilled its live
    instruction/cost counters into ``self.vm`` (this adapter reads
    ``vm.cost``, and helpers read ``vm.memory`` / ``vm.call_stack``),
    and hooks may mutate ``vm.cost``, which the engine reloads after the
    call.  Identical hook sequences with identical arguments are what
    make the two engines' profiles byte-for-byte equal.
    """

    def __init__(
        self,
        runtime: CarmotRuntime,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.runtime = runtime
        self.cm = cost_model
        self.vm = None  # set by the Interpreter
        #: Per-frame flags for callstack clustering (opt 7): has the current
        #: function invocation already captured its callstack?
        self._frame_captured: List[bool] = [False]

    # -- helpers ---------------------------------------------------------------

    def _object_for(self, addr: int) -> Optional[MemoryObject]:
        obj = self.vm.memory.try_object_at(addr)
        if obj is not None and obj.obj_id not in self.runtime.asmt:
            # Globals (and anything else allocated before hooks attach)
            # enter the ASMT lazily on first observation.
            self.runtime.asmt.register(
                AsmtEntry(
                    obj_id=obj.obj_id,
                    size=obj.size,
                    kind=obj.kind,
                    var=obj.var,
                    alloc_loc=obj.alloc_loc,
                    alloc_callstack=obj.alloc_callstack,
                    alloc_time=obj.alloc_time,
                )
            )
        return obj

    def _callstack_cost(self, depth: int) -> int:
        return (self.cm.callstack_capture_base
                + self.cm.callstack_capture_per_frame * depth)

    # -- ROI markers ----------------------------------------------------------

    def on_roi_begin(self, roi_id: int) -> int:
        self.runtime.roi_begin(roi_id)
        return self.cm.probe_push

    def on_roi_end(self, roi_id: int) -> int:
        self.runtime.roi_end(roi_id)
        return self.cm.probe_push

    def on_roi_reset(self, roi_id: int) -> int:
        self.runtime.roi_reset(roi_id)
        return self.cm.probe_push

    # -- access probes -----------------------------------------------------------

    def on_probe_access(self, kind, addr, size, var, count, stride, loc,
                        callstack, site_id=None) -> int:
        runtime = self.runtime
        cost = self.cm.aggregate_probe if count > 1 else self.cm.probe_push
        if not runtime.any_roi_active:
            runtime.stats.events_ignored_outside_roi += 1
            return cost
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.stats.access_events += 1
                if count > 1:
                    runtime.stats.aggregated_events += 1
                if runtime.config.policy.track_use_callstacks:
                    cost += (self.cm.use_callstack_shadow
                             if runtime.config.shadow_callstacks
                             else self.cm.use_callstack_walk)
                if runtime.config.inline_processing:
                    cost += self.cm.inline_process * max(1, count)
                if runtime._packed:
                    runtime.packed_access(
                        kind is AccessKind.WRITE, obj.obj_id,
                        addr - obj.base, size, count, stride, var, loc,
                        site_id, callstack, self.vm.instructions,
                    )
                else:
                    runtime.submit(
                        AccessEvent(
                            is_write=kind is AccessKind.WRITE,
                            obj_id=obj.obj_id,
                            offset=addr - obj.base,
                            size=size,
                            count=count,
                            stride=stride,
                            var=var,
                            loc=loc,
                            callstack=callstack,
                            active=runtime.active_snapshot(),
                            time=self.vm.instructions,
                        )
                    )
        return cost

    def on_probe_classify(self, states, addr, size, var, count, stride,
                          loc, roi_id=None, site_id=None) -> int:
        runtime = self.runtime
        if roi_id is not None:
            active = ((roi_id, 0, 0),)
        elif runtime.any_roi_active:
            active = None if runtime._packed else runtime.active_snapshot()
        else:
            return self.cm.classify_probe
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.stats.classify_events += 1
                if runtime._packed:
                    runtime.packed_classify(
                        states, obj.obj_id, addr - obj.base, size, count,
                        stride, var, loc, site_id, active,
                        self.vm.instructions,
                    )
                else:
                    runtime.submit(
                        ClassifyEvent(
                            states=states,
                            obj_id=obj.obj_id,
                            offset=addr - obj.base,
                            size=size,
                            count=count,
                            stride=stride,
                            var=var,
                            loc=loc,
                            active=active,
                            time=self.vm.instructions,
                        )
                    )
                if runtime.config.inline_processing:
                    return (self.cm.classify_probe
                            + self.cm.inline_process * max(1, count))
        return self.cm.classify_probe

    def on_probe_static(self, fact_index: int, addr: int,
                        roi_id: int) -> int:
        """Prescreen fact bookkeeping: resolve the object once per ROI
        invocation, emit **no** event (the verdict was proven at compile
        time; only invocation counts per epoch are needed)."""
        runtime = self.runtime
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                runtime.static_note(
                    fact_index, obj.obj_id, addr - obj.base, obj.var,
                    roi_id, self.vm.instructions,
                )
        return self.cm.probe_push

    def on_probe_escape(self, value_addr, dest_addr, loc) -> int:
        runtime = self.runtime
        if not runtime.any_roi_active:
            return self.cm.escape_event
        if runtime.config.policy.track_reachability and value_addr != 0:
            dst = self._object_for(value_addr)
            src = self._object_for(dest_addr)
            if dst is not None and src is not None and src is not dst:
                runtime.stats.escape_events += 1
                if runtime._packed:
                    runtime.packed_escape(
                        src.obj_id, dest_addr - src.base, dst.obj_id, loc,
                        self.vm.instructions,
                    )
                else:
                    runtime.submit(
                        EscapeEvent(
                            src_obj=src.obj_id,
                            src_offset=dest_addr - src.base,
                            dst_obj=dst.obj_id,
                            loc=loc,
                            active=runtime.active_snapshot(),
                            time=self.vm.instructions,
                        )
                    )
                if runtime.config.inline_processing:
                    return self.cm.escape_event + self.cm.inline_process
        return self.cm.escape_event

    # -- allocations ---------------------------------------------------------------

    def on_alloc(self, obj: MemoryObject) -> int:
        runtime = self.runtime
        cost = self.cm.alloc_event
        if runtime.config.callstack_clustering:
            # Opt 7: one capture per function invocation, shared by all of
            # its allocations.
            if not self._frame_captured[-1]:
                self._frame_captured[-1] = True
                cost += self._callstack_cost(len(obj.alloc_callstack))
                runtime.stats.callstack_captures += 1
        else:
            cost += self._callstack_cost(len(obj.alloc_callstack))
            runtime.stats.callstack_captures += 1
        runtime.stats.alloc_events += 1
        if runtime._packed:
            runtime.packed_alloc(obj, self.vm.instructions)
        else:
            runtime.submit(
                AllocEvent(
                    obj_id=obj.obj_id,
                    size=obj.size,
                    kind=obj.kind,
                    var=obj.var,
                    loc=obj.alloc_loc,
                    callstack=obj.alloc_callstack,
                    active=runtime.active_snapshot(),
                    time=self.vm.instructions,
                )
            )
        if runtime.config.inline_processing:
            cost += self.cm.inline_process
        return cost

    def on_free(self, obj: MemoryObject) -> int:
        if self.runtime._packed:
            self.runtime.packed_free(obj.obj_id, self.vm.instructions)
        else:
            self.runtime.submit(
                FreeEvent(obj.obj_id, self.runtime.active_snapshot(),
                          self.vm.instructions)
            )
        return self.cm.alloc_event

    def on_call_enter(self, function_name: str, instrumented: bool) -> int:
        self._frame_captured.append(False)
        config = self.runtime.config
        if (config.shadow_callstacks
                and config.policy.track_use_callstacks
                and instrumented):
            return self.cm.shadow_stack_maintain
        return 0

    def on_call_exit(self, function_name: str) -> int:
        if len(self._frame_captured) > 1:
            self._frame_captured.pop()
        config = self.runtime.config
        if config.shadow_callstacks and config.policy.track_use_callstacks:
            return self.cm.shadow_stack_maintain
        return 0

    # -- Pin (§4.5) ---------------------------------------------------------------------

    def wants_pin(self) -> bool:
        return (self.runtime.config.policy.needs_pin
                and self.runtime.any_roi_active)

    def on_pin_attach(self) -> int:
        self.runtime.stats.pin_attaches += 1
        return self.cm.pin_attach

    def on_pin_access(self, kind, addr, size) -> int:
        runtime = self.runtime
        granules = max(1, math.ceil(size / 8))
        runtime.stats.pin_accesses += granules
        if runtime.config.policy.track_sets:
            obj = self._object_for(addr)
            if obj is not None:
                if runtime._packed:
                    runtime.packed_access(
                        kind is AccessKind.WRITE, obj.obj_id,
                        addr - obj.base, min(size, 8), granules, 8,
                        None, None, None, tuple(self.vm.call_stack),
                        self.vm.instructions,
                    )
                else:
                    runtime.submit(
                        AccessEvent(
                            is_write=kind is AccessKind.WRITE,
                            obj_id=obj.obj_id,
                            offset=addr - obj.base,
                            size=min(size, 8),
                            count=granules,
                            stride=8,
                            var=None,
                            loc=None,
                            callstack=tuple(self.vm.call_stack),
                            active=runtime.active_snapshot(),
                            time=self.vm.instructions,
                        )
                    )
        cost = self.cm.pin_per_access * granules
        if runtime.config.inline_processing:
            cost += self.cm.inline_process * granules
        return cost

    def finish(self) -> None:
        self.runtime.finish()
